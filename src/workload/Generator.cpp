//===- workload/Generator.cpp - Synthetic workload generation ----------------===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//

#include "workload/Generator.h"

#include "asmkit/Assembler.h"
#include "support/Rng.h"

#include <cassert>
#include <memory>

using namespace eel;

namespace {

/// Virtual registers the generator uses; each emitter maps them to real
/// registers. ACC carries the routine's running value (also the argument
/// and result); T0-T3 are scratch; SAVED survives calls (main only).
enum VReg { ACC, T0, T1, T2, T3, SAVED };

/// Comparison conditions for conditional branches.
enum class CondKind { Eq, Ne, Gt, Le };

/// Target-specific assembly emission. The generator drives this interface,
/// so the same program structure exists on both architectures.
class Emitter {
public:
  explicit Emitter(bool SunStyleAnnul) : AllowAnnul(SunStyleAnnul) {}
  virtual ~Emitter() = default;

  std::string take() { return std::move(Text); }
  void raw(const std::string &Line) { Text += Line + "\n"; }
  void label(const std::string &Name) { Text += Name + ":\n"; }

  virtual void loadImm(VReg D, int32_t Value) = 0;
  virtual void arith(const char *Op, VReg D, VReg A, int32_t Imm) = 0;
  virtual void arithReg(const char *Op, VReg D, VReg A, VReg B) = 0;
  virtual void move(VReg D, VReg S) = 0;
  /// Compare reg with an immediate and branch; Annul only affects SRISC.
  virtual void branchImm(CondKind Kind, VReg R, int32_t Imm,
                         const std::string &Target, bool Annul) = 0;
  virtual void jump(const std::string &Target) = 0;
  virtual void call(const std::string &Target) = 0;
  virtual void prologue(bool SavesLink, int Frame = 96) = 0;
  virtual void epilogueRet(bool SavesLink, int Frame = 96) = 0;
  virtual void loadGlobal(VReg D, const std::string &Sym, int Off) = 0;
  virtual void storeGlobal(VReg S, const std::string &Sym, int Off) = 0;
  /// Switch through a dispatch table: masks ACC to [0, N), bounds-checks,
  /// loads table[idx], jumps. Case labels are <Prefix>_0.. plus
  /// <Prefix>_def.
  virtual void switchJump(const std::string &TableSym, unsigned N,
                          const std::string &Prefix) = 0;
  /// Frame-popping tail call through a function-pointer cell.
  virtual void tailCallViaCell(const std::string &CellSym, bool SavesLink,
                               int Frame = 96) = 0;
  /// switchJump, except the table base is loaded from \p BaseCellSym (a
  /// data word holding the table's address) rather than materialized.
  virtual void switchJumpViaCell(const std::string &BaseCellSym, unsigned N,
                                 const std::string &Prefix) = 0;
  /// Split compare/branch pair, so other code can sit in the compare's
  /// shadow (on SRISC the condition codes stay live across it).
  virtual void compareImm(VReg R, int32_t Imm) = 0;
  virtual void branchAfterCompare(CondKind Kind, const std::string &Target) = 0;
  /// Indirect call through a function-pointer cell.
  virtual void callViaCell(const std::string &CellSym) = 0;
  virtual void exitWithZero() = 0;
  /// Moves ACC into the conventional result register before returning.
  virtual void retResult() {}
  /// Moves the conventional result register back into ACC after a call.
  virtual void useResult() {}
  /// The `.word`/data section syntax is shared; only code differs.

protected:
  std::string Text;
  bool AllowAnnul;
};

/// SRISC (SPARC-like) emitter. ACC=%o0, T0-T3=%o3,%o4,%o5,%g3, SAVED=%l0.
class SriscEmitter : public Emitter {
public:
  using Emitter::Emitter;

  const char *reg(VReg R) const {
    switch (R) {
    case ACC: return "%o0";
    case T0: return "%o3";
    case T1: return "%o4";
    case T2: return "%o5";
    case T3: return "%g3";
    case SAVED: return "%l0";
    }
    return "%g0";
  }

  void loadImm(VReg D, int32_t Value) override {
    if (Value >= -4096 && Value <= 4095)
      raw(std::string("  mov ") + std::to_string(Value) + ", " + reg(D));
    else
      raw(std::string("  set ") + std::to_string(Value) + ", " + reg(D));
  }
  void arith(const char *Op, VReg D, VReg A, int32_t Imm) override {
    raw(std::string("  ") + Op + " " + reg(A) + ", " + std::to_string(Imm) +
        ", " + reg(D));
  }
  void arithReg(const char *Op, VReg D, VReg A, VReg B) override {
    raw(std::string("  ") + Op + " " + reg(A) + ", " + reg(B) + ", " +
        reg(D));
  }
  void move(VReg D, VReg S) override {
    raw(std::string("  mov ") + reg(S) + ", " + reg(D));
  }
  void branchImm(CondKind Kind, VReg R, int32_t Imm,
                 const std::string &Target, bool Annul) override {
    raw(std::string("  cmp ") + reg(R) + ", " + std::to_string(Imm));
    const char *Mnemonic = "bn";
    switch (Kind) {
    case CondKind::Eq: Mnemonic = "be"; break;
    case CondKind::Ne: Mnemonic = "bne"; break;
    case CondKind::Gt: Mnemonic = "bg"; break;
    case CondKind::Le: Mnemonic = "ble"; break;
    }
    bool UseAnnul = Annul && AllowAnnul;
    raw(std::string("  ") + Mnemonic + (UseAnnul ? ",a " : " ") + Target);
    if (!UseAnnul)
      raw("  nop");
    // Annulled branches get their delay filled by the caller's next
    // emitted instruction only in handwritten code; here we keep a nop so
    // the structure stays simple but the annul bit is still exercised.
    else
      raw("  nop");
  }
  void compareImm(VReg R, int32_t Imm) override {
    raw(std::string("  cmp ") + reg(R) + ", " + std::to_string(Imm));
  }
  void branchAfterCompare(CondKind Kind, const std::string &Target) override {
    const char *Mnemonic = "bn";
    switch (Kind) {
    case CondKind::Eq: Mnemonic = "be"; break;
    case CondKind::Ne: Mnemonic = "bne"; break;
    case CondKind::Gt: Mnemonic = "bg"; break;
    case CondKind::Le: Mnemonic = "ble"; break;
    }
    raw(std::string("  ") + Mnemonic + " " + Target);
    raw("  nop");
  }
  void jump(const std::string &Target) override {
    raw("  ba " + Target);
    raw("  nop");
  }
  void call(const std::string &Target) override {
    raw("  call " + Target);
    raw("  nop");
  }
  void prologue(bool SavesLink, int Frame) override {
    raw("  add %sp, -" + std::to_string(Frame) + ", %sp");
    if (SavesLink)
      raw("  st %o7, [%sp + 4]");
  }
  void epilogueRet(bool SavesLink, int Frame) override {
    if (SavesLink)
      raw("  ld [%sp + 4], %o7");
    raw("  add %sp, " + std::to_string(Frame) + ", %sp");
    raw("  ret");
    raw("  nop");
  }
  void loadGlobal(VReg D, const std::string &Sym, int Off) override {
    raw(std::string("  sethi %hi(") + Sym + "), " + reg(T3));
    raw(std::string("  ld [") + reg(T3) + " + %lo(" + Sym + ")], " + reg(D));
    (void)Off; // offsets folded into distinct symbols by the generator
  }
  void storeGlobal(VReg S, const std::string &Sym, int Off) override {
    raw(std::string("  sethi %hi(") + Sym + "), " + reg(T3));
    raw(std::string("  st ") + reg(S) + ", [" + reg(T3) + " + %lo(" + Sym +
        ")]");
    (void)Off;
  }
  void switchJump(const std::string &TableSym, unsigned N,
                  const std::string &Prefix) override {
    assert((N & (N - 1)) == 0 && "switch arity must be a power of two");
    raw(std::string("  and ") + reg(ACC) + ", " + std::to_string(N - 1) +
        ", " + reg(T0));
    raw(std::string("  cmp ") + reg(T0) + ", " + std::to_string(N - 1));
    raw("  bgu " + Prefix + "_def");
    raw("  nop");
    raw(std::string("  sll ") + reg(T0) + ", 2, " + reg(T1));
    raw(std::string("  sethi %hi(") + TableSym + "), " + reg(T2));
    raw(std::string("  or ") + reg(T2) + ", %lo(" + TableSym + "), " +
        reg(T2));
    raw(std::string("  ld [") + reg(T2) + " + " + reg(T1) + "], " + reg(T3));
    raw(std::string("  jmpl ") + reg(T3) + " + 0, %g0");
    raw("  nop");
  }
  void tailCallViaCell(const std::string &CellSym, bool SavesLink,
                       int Frame) override {
    if (SavesLink)
      raw("  ld [%sp + 4], %o7");
    raw("  add %sp, " + std::to_string(Frame) + ", %sp"); // pop frame
    raw(std::string("  set ") + CellSym + ", " + reg(T0));
    raw(std::string("  ld [") + reg(T0) + " + 0], " + reg(T1));
    raw(std::string("  jmpl ") + reg(T1) + " + 0, %g0");
    raw("  nop");
  }
  void callViaCell(const std::string &CellSym) override {
    raw(std::string("  set ") + CellSym + ", " + reg(T0));
    raw(std::string("  ld [") + reg(T0) + " + 0], " + reg(T1));
    raw(std::string("  jmpl ") + reg(T1) + " + 0, %o7");
    raw("  nop");
  }
  void switchJumpViaCell(const std::string &BaseCellSym, unsigned N,
                         const std::string &Prefix) override {
    assert((N & (N - 1)) == 0 && "switch arity must be a power of two");
    raw(std::string("  and ") + reg(ACC) + ", " + std::to_string(N - 1) +
        ", " + reg(T0));
    raw(std::string("  cmp ") + reg(T0) + ", " + std::to_string(N - 1));
    raw("  bgu " + Prefix + "_def");
    raw("  nop");
    raw(std::string("  sll ") + reg(T0) + ", 2, " + reg(T1));
    raw(std::string("  set ") + BaseCellSym + ", " + reg(T2));
    raw(std::string("  ld [") + reg(T2) + " + 0], " + reg(T2));
    raw(std::string("  ld [") + reg(T2) + " + " + reg(T1) + "], " + reg(T3));
    raw(std::string("  jmpl ") + reg(T3) + " + 0, %g0");
    raw("  nop");
  }
  void exitWithZero() override {
    raw("  mov 0, %o0");
    raw("  sys 0");
  }
};

/// MRISC (MIPS-like) emitter. ACC=$a0, T0-T3=$t0..$t3, SAVED=$s0.
class MriscEmitter : public Emitter {
public:
  using Emitter::Emitter;

  const char *reg(VReg R) const {
    switch (R) {
    case ACC: return "$a0";
    case T0: return "$t0";
    case T1: return "$t1";
    case T2: return "$t2";
    case T3: return "$t3";
    case SAVED: return "$s0";
    }
    return "$zero";
  }

  void loadImm(VReg D, int32_t Value) override {
    raw(std::string("  li ") + reg(D) + ", " + std::to_string(Value));
  }
  void arith(const char *Op, VReg D, VReg A, int32_t Imm) override {
    // Map the generator's generic ops to MRISC forms.
    std::string Mnemonic = Op;
    if (Mnemonic == "add" || Mnemonic == "sub") {
      int32_t V = Mnemonic == "sub" ? -Imm : Imm;
      raw(std::string("  addi ") + reg(D) + ", " + reg(A) + ", " +
          std::to_string(V));
      return;
    }
    if (Mnemonic == "and" || Mnemonic == "or" || Mnemonic == "xor") {
      raw("  " + Mnemonic + "i " + reg(D) + ", " + reg(A) + ", " +
          std::to_string(Imm));
      return;
    }
    if (Mnemonic == "sll" || Mnemonic == "srl") {
      raw("  " + Mnemonic + " " + reg(D) + ", " + reg(A) + ", " +
          std::to_string(Imm));
      return;
    }
    if (Mnemonic == "smul") {
      raw(std::string("  li $at, ") + std::to_string(Imm));
      raw(std::string("  mul ") + reg(D) + ", " + reg(A) + ", $at");
      return;
    }
    assert(false && "unknown generic op");
  }
  void arithReg(const char *Op, VReg D, VReg A, VReg B) override {
    std::string Mnemonic = Op;
    if (Mnemonic == "smul")
      Mnemonic = "mul";
    raw("  " + Mnemonic + " " + reg(D) + ", " + reg(A) + ", " + reg(B));
  }
  void move(VReg D, VReg S) override {
    raw(std::string("  move ") + reg(D) + ", " + reg(S));
  }
  void branchImm(CondKind Kind, VReg R, int32_t Imm,
                 const std::string &Target, bool) override {
    switch (Kind) {
    case CondKind::Eq:
      raw(std::string("  li $at, ") + std::to_string(Imm));
      raw(std::string("  beq ") + reg(R) + ", $at, " + Target);
      break;
    case CondKind::Ne:
      raw(std::string("  li $at, ") + std::to_string(Imm));
      raw(std::string("  bne ") + reg(R) + ", $at, " + Target);
      break;
    case CondKind::Gt:
      // R > Imm  <=>  R - Imm > 0.
      raw(std::string("  addi $at, ") + reg(R) + ", " +
          std::to_string(-Imm));
      raw("  bgtz $at, " + Target);
      break;
    case CondKind::Le:
      raw(std::string("  addi $at, ") + reg(R) + ", " +
          std::to_string(-Imm));
      raw("  blez $at, " + Target);
      break;
    }
    raw("  nop");
  }
  void compareImm(VReg R, int32_t Imm) override {
    raw(std::string("  addi $at, ") + reg(R) + ", " + std::to_string(-Imm));
  }
  void branchAfterCompare(CondKind Kind, const std::string &Target) override {
    switch (Kind) {
    case CondKind::Eq:
      raw("  beq $at, $zero, " + Target);
      break;
    case CondKind::Ne:
      raw("  bne $at, $zero, " + Target);
      break;
    case CondKind::Gt:
      raw("  bgtz $at, " + Target);
      break;
    case CondKind::Le:
      raw("  blez $at, " + Target);
      break;
    }
    raw("  nop");
  }
  void jump(const std::string &Target) override {
    raw("  j " + Target);
    raw("  nop");
  }
  void call(const std::string &Target) override {
    raw("  jal " + Target);
    raw("  nop");
  }
  void prologue(bool SavesLink, int Frame) override {
    raw("  addi $sp, $sp, -" + std::to_string(Frame));
    if (SavesLink)
      raw("  sw $ra, 4($sp)");
  }
  void epilogueRet(bool SavesLink, int Frame) override {
    if (SavesLink)
      raw("  lw $ra, 4($sp)");
    raw("  addi $sp, $sp, " + std::to_string(Frame));
    raw("  jr $ra");
    raw("  nop");
  }
  void loadGlobal(VReg D, const std::string &Sym, int Off) override {
    raw(std::string("  lui $t4, %hi(") + Sym + ")");
    raw(std::string("  ori $t4, $t4, %lo(") + Sym + ")");
    raw(std::string("  lw ") + reg(D) + ", 0($t4)");
    (void)Off;
  }
  void storeGlobal(VReg S, const std::string &Sym, int Off) override {
    raw(std::string("  lui $t4, %hi(") + Sym + ")");
    raw(std::string("  ori $t4, $t4, %lo(") + Sym + ")");
    raw(std::string("  sw ") + reg(S) + ", 0($t4)");
    (void)Off;
  }
  void switchJump(const std::string &TableSym, unsigned N,
                  const std::string &Prefix) override {
    raw(std::string("  andi ") + reg(T0) + ", " + reg(ACC) + ", " +
        std::to_string(N - 1));
    raw(std::string("  slti $at, ") + reg(T0) + ", " + std::to_string(N));
    raw("  beq $at, $zero, " + Prefix + "_def");
    raw("  nop");
    raw(std::string("  sll ") + reg(T1) + ", " + reg(T0) + ", 2");
    raw(std::string("  lui ") + reg(T2) + ", %hi(" + TableSym + ")");
    raw(std::string("  ori ") + reg(T2) + ", " + reg(T2) + ", %lo(" +
        TableSym + ")");
    raw(std::string("  add ") + reg(T2) + ", " + reg(T2) + ", " + reg(T1));
    raw(std::string("  lw ") + reg(T3) + ", 0(" + reg(T2) + ")");
    raw(std::string("  jr ") + reg(T3));
    raw("  nop");
  }
  void tailCallViaCell(const std::string &CellSym, bool SavesLink,
                       int Frame) override {
    if (SavesLink)
      raw("  lw $ra, 4($sp)");
    raw("  addi $sp, $sp, " + std::to_string(Frame));
    raw(std::string("  lui ") + reg(T0) + ", %hi(" + CellSym + ")");
    raw(std::string("  ori ") + reg(T0) + ", " + reg(T0) + ", %lo(" +
        CellSym + ")");
    raw(std::string("  lw ") + reg(T1) + ", 0(" + reg(T0) + ")");
    raw(std::string("  jr ") + reg(T1));
    raw("  nop");
  }
  void callViaCell(const std::string &CellSym) override {
    raw(std::string("  lui ") + reg(T0) + ", %hi(" + CellSym + ")");
    raw(std::string("  ori ") + reg(T0) + ", " + reg(T0) + ", %lo(" +
        CellSym + ")");
    raw(std::string("  lw ") + reg(T1) + ", 0(" + reg(T0) + ")");
    raw(std::string("  jalr ") + reg(T1));
    raw("  nop");
  }
  void switchJumpViaCell(const std::string &BaseCellSym, unsigned N,
                         const std::string &Prefix) override {
    raw(std::string("  andi ") + reg(T0) + ", " + reg(ACC) + ", " +
        std::to_string(N - 1));
    raw(std::string("  slti $at, ") + reg(T0) + ", " + std::to_string(N));
    raw("  beq $at, $zero, " + Prefix + "_def");
    raw("  nop");
    raw(std::string("  sll ") + reg(T1) + ", " + reg(T0) + ", 2");
    raw(std::string("  lui ") + reg(T2) + ", %hi(" + BaseCellSym + ")");
    raw(std::string("  ori ") + reg(T2) + ", " + reg(T2) + ", %lo(" +
        BaseCellSym + ")");
    raw(std::string("  lw ") + reg(T2) + ", 0(" + reg(T2) + ")");
    raw(std::string("  add ") + reg(T2) + ", " + reg(T2) + ", " + reg(T1));
    raw(std::string("  lw ") + reg(T3) + ", 0(" + reg(T2) + ")");
    raw(std::string("  jr ") + reg(T3));
    raw("  nop");
  }
  void exitWithZero() override {
    raw("  li $a0, 0");
    raw("  li $v0, 0");
    raw("  syscall");
  }
  void retResult() override { raw("  move $v0, $a0"); }
  void useResult() override { raw("  move $a0, $v0"); }
};

/// ARISC (Alpha-like) emitter. ACC=$a0, T0-T3=$t0..$t3, SAVED=$s0. No
/// delay slots, so transfers never trail a nop; conditionals are
/// compare-and-branch on two registers with $at as the assembler temp.
class AriscEmitter : public Emitter {
public:
  using Emitter::Emitter;

  const char *reg(VReg R) const {
    switch (R) {
    case ACC: return "$a0";
    case T0: return "$t0";
    case T1: return "$t1";
    case T2: return "$t2";
    case T3: return "$t3";
    case SAVED: return "$s0";
    }
    return "$zero";
  }

  void loadImm(VReg D, int32_t Value) override {
    raw(std::string("  li ") + reg(D) + ", " + std::to_string(Value));
  }
  void arith(const char *Op, VReg D, VReg A, int32_t Imm) override {
    std::string Mnemonic = Op;
    if (Mnemonic == "add" || Mnemonic == "sub") {
      int32_t V = Mnemonic == "sub" ? -Imm : Imm;
      raw(std::string("  addi ") + reg(D) + ", " + reg(A) + ", " +
          std::to_string(V));
      return;
    }
    if (Mnemonic == "and" || Mnemonic == "or" || Mnemonic == "xor") {
      raw("  " + Mnemonic + "i " + reg(D) + ", " + reg(A) + ", " +
          std::to_string(Imm));
      return;
    }
    if (Mnemonic == "sll" || Mnemonic == "srl") {
      raw("  " + Mnemonic + "i " + reg(D) + ", " + reg(A) + ", " +
          std::to_string(Imm));
      return;
    }
    if (Mnemonic == "smul") {
      raw(std::string("  li $at, ") + std::to_string(Imm));
      raw(std::string("  mul ") + reg(D) + ", " + reg(A) + ", $at");
      return;
    }
    assert(false && "unknown generic op");
  }
  void arithReg(const char *Op, VReg D, VReg A, VReg B) override {
    std::string Mnemonic = Op;
    if (Mnemonic == "smul")
      Mnemonic = "mul";
    raw("  " + Mnemonic + " " + reg(D) + ", " + reg(A) + ", " + reg(B));
  }
  void move(VReg D, VReg S) override {
    raw(std::string("  move ") + reg(D) + ", " + reg(S));
  }
  void branchImm(CondKind Kind, VReg R, int32_t Imm,
                 const std::string &Target, bool) override {
    raw(std::string("  li $at, ") + std::to_string(Imm));
    switch (Kind) {
    case CondKind::Eq:
      raw(std::string("  beq ") + reg(R) + ", $at, " + Target);
      break;
    case CondKind::Ne:
      raw(std::string("  bne ") + reg(R) + ", $at, " + Target);
      break;
    case CondKind::Gt: // R > Imm  <=>  Imm < R
      raw(std::string("  blt $at, ") + reg(R) + ", " + Target);
      break;
    case CondKind::Le:
      raw(std::string("  ble ") + reg(R) + ", $at, " + Target);
      break;
    }
  }
  void compareImm(VReg R, int32_t Imm) override {
    raw(std::string("  addi $at, ") + reg(R) + ", " + std::to_string(-Imm));
  }
  void branchAfterCompare(CondKind Kind, const std::string &Target) override {
    switch (Kind) {
    case CondKind::Eq:
      raw("  beq $at, $zero, " + Target);
      break;
    case CondKind::Ne:
      raw("  bne $at, $zero, " + Target);
      break;
    case CondKind::Gt:
      raw("  blt $zero, $at, " + Target);
      break;
    case CondKind::Le:
      raw("  ble $at, $zero, " + Target);
      break;
    }
  }
  void jump(const std::string &Target) override { raw("  br " + Target); }
  void call(const std::string &Target) override { raw("  bsr " + Target); }
  void prologue(bool SavesLink, int Frame) override {
    raw("  addi $sp, $sp, -" + std::to_string(Frame));
    if (SavesLink)
      raw("  stw $ra, 4($sp)");
  }
  void epilogueRet(bool SavesLink, int Frame) override {
    if (SavesLink)
      raw("  ldw $ra, 4($sp)");
    raw("  addi $sp, $sp, " + std::to_string(Frame));
    raw("  ret");
  }
  void loadGlobal(VReg D, const std::string &Sym, int Off) override {
    raw(std::string("  ldih $t4, %hi(") + Sym + ")");
    raw(std::string("  ori $t4, $t4, %lo(") + Sym + ")");
    raw(std::string("  ldw ") + reg(D) + ", 0($t4)");
    (void)Off;
  }
  void storeGlobal(VReg S, const std::string &Sym, int Off) override {
    raw(std::string("  ldih $t4, %hi(") + Sym + ")");
    raw(std::string("  ori $t4, $t4, %lo(") + Sym + ")");
    raw(std::string("  stw ") + reg(S) + ", 0($t4)");
    (void)Off;
  }
  void switchJump(const std::string &TableSym, unsigned N,
                  const std::string &Prefix) override {
    raw(std::string("  andi ") + reg(T0) + ", " + reg(ACC) + ", " +
        std::to_string(N - 1));
    raw(std::string("  cmplti $at, ") + reg(T0) + ", " + std::to_string(N));
    raw("  beq $at, $zero, " + Prefix + "_def");
    raw(std::string("  slli ") + reg(T1) + ", " + reg(T0) + ", 2");
    raw(std::string("  ldih ") + reg(T2) + ", %hi(" + TableSym + ")");
    raw(std::string("  ori ") + reg(T2) + ", " + reg(T2) + ", %lo(" +
        TableSym + ")");
    raw(std::string("  add ") + reg(T2) + ", " + reg(T2) + ", " + reg(T1));
    raw(std::string("  ldw ") + reg(T3) + ", 0(" + reg(T2) + ")");
    raw(std::string("  jmp (") + reg(T3) + ")");
  }
  void tailCallViaCell(const std::string &CellSym, bool SavesLink,
                       int Frame) override {
    if (SavesLink)
      raw("  ldw $ra, 4($sp)");
    raw("  addi $sp, $sp, " + std::to_string(Frame));
    raw(std::string("  ldih ") + reg(T0) + ", %hi(" + CellSym + ")");
    raw(std::string("  ori ") + reg(T0) + ", " + reg(T0) + ", %lo(" +
        CellSym + ")");
    raw(std::string("  ldw ") + reg(T1) + ", 0(" + reg(T0) + ")");
    raw(std::string("  jmp (") + reg(T1) + ")");
  }
  void callViaCell(const std::string &CellSym) override {
    raw(std::string("  ldih ") + reg(T0) + ", %hi(" + CellSym + ")");
    raw(std::string("  ori ") + reg(T0) + ", " + reg(T0) + ", %lo(" +
        CellSym + ")");
    raw(std::string("  ldw ") + reg(T1) + ", 0(" + reg(T0) + ")");
    raw(std::string("  jmp $ra, (") + reg(T1) + ")");
  }
  void switchJumpViaCell(const std::string &BaseCellSym, unsigned N,
                         const std::string &Prefix) override {
    raw(std::string("  andi ") + reg(T0) + ", " + reg(ACC) + ", " +
        std::to_string(N - 1));
    raw(std::string("  cmplti $at, ") + reg(T0) + ", " + std::to_string(N));
    raw("  beq $at, $zero, " + Prefix + "_def");
    raw(std::string("  slli ") + reg(T1) + ", " + reg(T0) + ", 2");
    raw(std::string("  ldih ") + reg(T2) + ", %hi(" + BaseCellSym + ")");
    raw(std::string("  ori ") + reg(T2) + ", " + reg(T2) + ", %lo(" +
        BaseCellSym + ")");
    raw(std::string("  ldw ") + reg(T2) + ", 0(" + reg(T2) + ")");
    raw(std::string("  add ") + reg(T2) + ", " + reg(T2) + ", " + reg(T1));
    raw(std::string("  ldw ") + reg(T3) + ", 0(" + reg(T2) + ")");
    raw(std::string("  jmp (") + reg(T3) + ")");
  }
  void exitWithZero() override {
    raw("  li $a0, 0");
    raw("  sys 0");
  }
  void retResult() override { raw("  move $v0, $a0"); }
  void useResult() override { raw("  move $a0, $v0"); }
};

/// Drives one emitter to build the whole program.
class ProgramBuilder {
public:
  ProgramBuilder(TargetArch Arch, const WorkloadOptions &Options)
      : Arch(Arch), Options(Options), R(Options.Seed),
        Annul(Options.AnnulledBranches && Arch == TargetArch::Srisc) {
    if (Arch == TargetArch::Srisc)
      E.reset(new SriscEmitter(Annul));
    else if (Arch == TargetArch::Mrisc)
      E.reset(new MriscEmitter(Annul));
    else
      E.reset(new AriscEmitter(Annul));
  }

  std::string build();

private:
  std::string uniqueLabel(const std::string &Stem) {
    return ".L" + Stem + "_" + std::to_string(LabelCounter++);
  }

  void emitSegment(unsigned RoutineIndex);
  void emitRoutine(unsigned Index);
  void emitMain();
  void emitPrintU32();

  TargetArch Arch;
  WorkloadOptions Options;
  Rng R;
  bool Annul;
  std::unique_ptr<Emitter> E;
  unsigned LabelCounter = 0;
  unsigned TableCounter = 0;
  unsigned CellCounter = 0;
  std::string DataSection;
  std::vector<std::string> HiddenRoutines; ///< Emitted at the end.
};

} // namespace

void ProgramBuilder::emitSegment(unsigned RoutineIndex) {
  static const char *Ops[] = {"add", "sub", "xor", "and", "or"};
  switch (R.below(7)) {
  case 0: { // arithmetic chain
    for (int I = 0, N = static_cast<int>(R.range(1, 4)); I < N; ++I)
      E->arith(Ops[R.below(5)], ACC, ACC,
               static_cast<int32_t>(R.range(1, 500)));
    break;
  }
  case 1: { // counted loop
    std::string Top = uniqueLabel("loop");
    E->loadImm(T0, static_cast<int32_t>(
                       R.range(2, static_cast<int64_t>(Options.LoopIterations))));
    E->label(Top);
    E->arith("add", ACC, ACC, static_cast<int32_t>(R.range(1, 9)));
    E->arith("sub", T0, T0, 1);
    E->branchImm(CondKind::Gt, T0, 0, Top, false);
    break;
  }
  case 2: { // if/else diamond (possibly with an annulled branch)
    std::string Else = uniqueLabel("else");
    std::string Join = uniqueLabel("join");
    bool UseAnnul = Annul && R.chance(50);
    E->branchImm(R.chance(50) ? CondKind::Eq : CondKind::Gt, ACC,
                 static_cast<int32_t>(R.range(0, 64)), Else, UseAnnul);
    E->arith("add", ACC, ACC, 3);
    E->jump(Join);
    E->label(Else);
    E->arith("xor", ACC, ACC, 21);
    E->label(Join);
    break;
  }
  case 3: { // global array read-modify-write
    unsigned Slot = static_cast<unsigned>(R.below(8));
    std::string Sym = "garr" + std::to_string(Slot);
    E->loadGlobal(T0, Sym, 0);
    E->arithReg("add", ACC, ACC, T0);
    E->storeGlobal(ACC, Sym, 0);
    break;
  }
  case 4: { // call a later routine (keeps the DAG acyclic)
    if (RoutineIndex + 1 < Options.Routines) {
      unsigned Callee = static_cast<unsigned>(
          R.range(RoutineIndex + 1, Options.Routines - 1));
      E->call("r" + std::to_string(Callee));
      E->useResult();
    } else {
      E->arith("add", ACC, ACC, 7);
    }
    break;
  }
  case 6: { // a load in the compare's shadow: on SRISC the condition
            // codes are live across the memory reference, so CC-clobbering
            // instrumentation there must save/restore them (§5 Blizzard-S)
    std::string Else = uniqueLabel("ccelse");
    std::string Join = uniqueLabel("ccjoin");
    unsigned Slot = static_cast<unsigned>(R.below(8));
    E->compareImm(ACC, static_cast<int32_t>(R.range(0, 64)));
    E->loadGlobal(T0, "garr" + std::to_string(Slot), 0);
    E->branchAfterCompare(CondKind::Gt, Else);
    E->arithReg("add", ACC, ACC, T0);
    E->jump(Join);
    E->label(Else);
    E->arithReg("xor", ACC, ACC, T0);
    E->label(Join);
    break;
  }
  case 5: { // switch through a dispatch table
    if (R.below(100) >= Options.SwitchPercent) {
      E->arith("xor", ACC, ACC, 9);
      break;
    }
    unsigned N = R.chance(50) ? 4 : 8;
    std::string Prefix = ".Lsw" + std::to_string(TableCounter);
    std::string Table = "table" + std::to_string(TableCounter++);
    if (Options.MangledTablePercent &&
        R.below(100) < Options.MangledTablePercent) {
      // "Hand-mangled" dispatch: the table base lives in a data cell, so
      // a backward slice sees only an opaque load — the site is
      // unanalyzable without constant-cell facts.
      std::string BaseCell = "mcell" + std::to_string(CellCounter++);
      DataSection += ".align 4\n" + BaseCell + ": .word " + Table + "\n";
      E->switchJumpViaCell(BaseCell, N, Prefix);
    } else {
      E->switchJump(Table, N, Prefix);
    }
    std::string Join = Prefix + "_join";
    DataSection += ".align 4\n" + Table + ":";
    for (unsigned C = 0; C < N; ++C)
      DataSection += std::string(C ? "," : " .word") +
                     (C ? " " : " ") + Prefix + "_" + std::to_string(C);
    DataSection += "\n";
    for (unsigned C = 0; C < N; ++C) {
      E->label(Prefix + "_" + std::to_string(C));
      E->arith("add", ACC, ACC, static_cast<int32_t>(C * 17 + 1));
      E->jump(Join);
    }
    E->label(Prefix + "_def");
    E->arith("xor", ACC, ACC, 5);
    E->label(Join);
    break;
  }
  }
}

void ProgramBuilder::emitRoutine(unsigned Index) {
  bool IsLast = Index + 1 >= Options.Routines;
  bool NonLeaf = !IsLast; // may contain calls
  std::string Name = "r" + std::to_string(Index);
  E->label(Name);
  E->prologue(NonLeaf);

  if (Options.SymbolPathologies && R.chance(30)) {
    // A forward-branch internal label that carries a symbol (stage 1 must
    // drop it) plus debug/temp labels.
    std::string Internal = "skip_" + Name;
    E->branchImm(CondKind::Eq, ACC, 0, Internal, false);
    E->arith("add", ACC, ACC, 2);
    E->label(Internal);
    E->raw(".debuglabel dbg_" + Name);
    E->raw(".templabel tmp_" + Name);
  }

  for (unsigned S = 0; S < Options.SegmentsPerRoutine; ++S) {
    emitSegment(Index);
    if (Options.DeadCodePercent && R.below(100) < Options.DeadCodePercent) {
      // A dead chain: scratch results never read (every segment writes
      // its scratch registers before reading them).
      E->arith("add", T1, ACC, static_cast<int32_t>(R.range(1, 99)));
      E->arith("xor", T2, T1, 33);
      if (R.chance(50))
        E->arithReg("smul", T1, T2, T2);
    }
  }

  if (Options.SymbolPathologies && NonLeaf && R.chance(25)) {
    // Call a hidden routine through a function-pointer cell (only in
    // routines that save their link register).
    std::string Hidden = "hfun" + std::to_string(CellCounter);
    std::string Cell = "hcell" + std::to_string(CellCounter++);
    E->callViaCell(Cell);
    E->useResult();
    DataSection += ".align 4\n" + Cell + ": .word " + Hidden + "\n";
    HiddenRoutines.push_back(Hidden);
  }

  // Ending: plain return or a frame-popping tail call (SunPro style).
  if (!IsLast && R.below(100) < Options.TailCallPercent) {
    unsigned Callee = static_cast<unsigned>(
        R.range(Index + 1, Options.Routines - 1));
    std::string Cell = "tcell" + std::to_string(CellCounter++);
    DataSection +=
        ".align 4\n" + Cell + ": .word r" + std::to_string(Callee) + "\n";
    E->tailCallViaCell(Cell, NonLeaf);
  } else {
    E->retResult();
    E->epilogueRet(NonLeaf);
  }

  if (Options.InterleavedDataPercent &&
      R.below(100) < Options.InterleavedDataPercent) {
    // A literal pool interleaved into the text segment after the routine's
    // final transfer: odd words that never execute and (on SRISC) do not
    // decode. Heuristic disassembly must not let junk decodings of these
    // words poison the analysis.
    E->raw(".align 4");
    std::string Blob = ".word";
    unsigned Words = static_cast<unsigned>(R.range(2, 5));
    for (unsigned W = 0; W < Words; ++W)
      Blob += (W ? ", " : " ") +
              std::to_string(static_cast<uint32_t>(R.range(1, 127)) * 2 + 1);
    E->raw(Blob);
  }
}

void ProgramBuilder::emitMain() {
  E->label("main");
  E->prologue(/*SavesLink=*/false);
  E->loadImm(SAVED, static_cast<int32_t>(R.range(1, 1000)));
  unsigned Calls = std::min<unsigned>(Options.Routines, 6);
  for (unsigned I = 0; I < Calls; ++I) {
    E->move(ACC, SAVED);
    E->call("r" + std::to_string(I));
    E->useResult();
    E->move(SAVED, ACC);
  }
  // Print the checksum masked positive, then exit 0.
  E->move(ACC, SAVED);
  E->arith("srl", ACC, ACC, 4);
  E->call("print_u32");
  E->exitWithZero();
  // Never reached (exit does not return), but gives the analyses a clean
  // routine end instead of control running off the extent.
  E->epilogueRet(/*SavesLink=*/false);
}

void ProgramBuilder::emitPrintU32() {
  // Decimal printer: digits written backwards before a trailing newline.
  if (Arch == TargetArch::Srisc) {
    E->raw(R"(print_u32:
  add %sp, -32, %sp
  set pbuf_end, %o2
  mov %o2, %o3
.Lpdigit:
  sdiv %o0, 10, %o4
  smul %o4, 10, %o5
  sub %o0, %o5, %o5
  add %o5, 48, %o5
  sub %o3, 1, %o3
  stb %o5, [%o3 + 0]
  cmp %o4, 0
  bne .Lpdigit
  mov %o4, %o0
  mov 1, %o0
  mov %o3, %o1
  set pbuf_end, %o2
  sub %o2, %o3, %o2
  add %o2, 1, %o2
  sys 1
  add %sp, 32, %sp
  ret
  nop)");
  } else if (Arch == TargetArch::Arisc) {
    E->raw(R"(print_u32:
  addi $sp, $sp, -32
  ldih $t5, %hi(pbuf_end)
  ori $t5, $t5, %lo(pbuf_end)
  move $t6, $t5
.Lpdigit:
  li $t7, 10
  div $t0, $a0, $t7
  mul $t1, $t0, $t7
  sub $t1, $a0, $t1
  addi $t1, $t1, 48
  addi $t6, $t6, -1
  stb $t1, 0($t6)
  move $a0, $t0
  blt $zero, $t0, .Lpdigit
  li $a0, 1
  move $a1, $t6
  sub $a2, $t5, $t6
  addi $a2, $a2, 1
  sys 1
  addi $sp, $sp, 32
  ret)");
  } else {
    E->raw(R"(print_u32:
  addi $sp, $sp, -32
  lui $t5, %hi(pbuf_end)
  ori $t5, $t5, %lo(pbuf_end)
  move $t6, $t5
.Lpdigit:
  li $t7, 10
  div $t0, $a0, $t7
  mul $t1, $t0, $t7
  sub $t1, $a0, $t1
  addi $t1, $t1, 48
  addi $t6, $t6, -1
  sb $t1, 0($t6)
  move $a0, $t0
  bgtz $t0, .Lpdigit
  nop
  li $a0, 1
  move $a1, $t6
  sub $a2, $t5, $t6
  addi $a2, $a2, 1
  li $v0, 1
  syscall
  addi $sp, $sp, 32
  jr $ra
  nop)");
  }
}

std::string ProgramBuilder::build() {
  E->raw(".text");
  E->raw(".global main");
  emitMain();
  for (unsigned I = 0; I < Options.Routines; ++I)
    emitRoutine(I);
  emitPrintU32();

  // Hidden helper routines (no symbols; reached only through cells).
  for (const std::string &Hidden : HiddenRoutines) {
    E->raw(".hidden");
    E->label(Hidden);
    E->prologue(/*SavesLink=*/false);
    E->arith("add", ACC, ACC, 13);
    E->retResult();
    E->epilogueRet(/*SavesLink=*/false);
  }

  if (Options.SymbolPathologies) {
    // A data table in the text segment with a routine-like symbol: the
    // words are deliberately invalid encodings on SRISC (small values
    // shifted into invalid opcode space).
    E->raw("text_table:");
    E->raw(".word 3, 5, 7, 11");
  }

  std::string Out = E->take();
  Out += ".data\n";
  for (unsigned Slot = 0; Slot < 8; ++Slot)
    Out += ".align 4\ngarr" + std::to_string(Slot) + ": .word " +
           std::to_string(Slot * 3 + 1) + "\n";
  Out += DataSection;
  Out += ".align 4\npbuf: .space 16\npbuf_end: .byte 10\n.align 4\n";
  return Out;
}

std::string eel::generateWorkloadAsm(TargetArch Arch,
                                     const WorkloadOptions &Options) {
  ProgramBuilder Builder(Arch, Options);
  return Builder.build();
}

SxfFile eel::generateWorkload(TargetArch Arch,
                              const WorkloadOptions &Options) {
  return assembleOrDie(Arch, generateWorkloadAsm(Arch, Options));
}
