//===- core/Instruction.h - Machine-independent instructions ----*- C++ -*-===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// EEL's machine-independent instruction abstraction (§3.4 of the paper).
/// Instructions divide into functional categories — memory references,
/// control transfers, computations, and invalid (data) — with inquiry
/// methods about their effect on program state, so tools analyze EEL
/// instructions in place of machine instructions.
///
/// Construction mirrors Figure 6: the target layer supplies the raw
/// category, and the three overloaded uses of an indirect jump (indirect
/// call, return, jump) are resolved here using the target's calling
/// conventions, exactly where the paper resolves SPARC's jmpl overloads.
///
/// As in EEL, only one instruction object exists per distinct machine word
/// (per pool); the paper reports this flyweight cuts allocations by ~4x,
/// which bench_sharing reproduces. PC-dependent inquiries therefore take
/// the address as a parameter.
///
//===----------------------------------------------------------------------===//

#ifndef EEL_CORE_INSTRUCTION_H
#define EEL_CORE_INSTRUCTION_H

#include "isa/Target.h"
#include "support/Arena.h"
#include "support/Casting.h"

#include <array>
#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

namespace eel {

/// Discriminator for the Instruction class hierarchy.
enum class InstKind : uint8_t {
  Invalid,
  Computation,
  Load,
  Store,
  LoadStore,
  Branch,       ///< Conditional PC-relative branch.
  Jump,         ///< Unconditional direct jump (including annul-skip).
  Call,         ///< Direct call.
  IndirectJump, ///< Register-target jump (not call/return by convention).
  IndirectCall, ///< Register-target transfer writing the link register.
  Return,       ///< Jump through link + return offset.
  SystemCall,
};

/// Base of the instruction hierarchy. Immutable and shared; never holds
/// address-specific state.
class Instruction {
public:
  virtual ~Instruction();

  InstKind kind() const { return Kind; }
  MachWord word() const { return Word; }
  const TargetInfo &target() const { return Target; }

  /// Registers read / written (condition codes included as RegIdCC).
  const RegSet &reads() const { return Reads; }
  const RegSet &writes() const { return Writes; }

  bool hasDelaySlot() const { return DelaySlot; }
  DelayBehavior delayBehavior() const { return Delay; }
  bool isConditional() const { return Conditional; }

  bool isControlTransfer() const {
    switch (Kind) {
    case InstKind::Branch:
    case InstKind::Jump:
    case InstKind::Call:
    case InstKind::IndirectJump:
    case InstKind::IndirectCall:
    case InstKind::Return:
      return true;
    default:
      return false;
    }
  }

  bool isMemoryReference() const {
    return Kind == InstKind::Load || Kind == InstKind::Store ||
           Kind == InstKind::LoadStore;
  }

  /// Static target of a direct transfer executed at \p PC.
  std::optional<Addr> directTarget(Addr PC) const {
    return Target.directTarget(Word, PC);
  }

  /// Dataflow shape for slicing (DataOpKind::None when inexpressible).
  DataOp dataOp() const { return Target.dataOp(Word); }

  std::string disassemble(Addr PC) const {
    return Target.disassemble(Word, PC);
  }

  /// Index of this instruction's (reads, writes) pair in its pool's
  /// interned-operand table (InstructionPool::operands()), or NoOpIndex
  /// for instructions built outside a pool. Analyses walking flat CFG rows
  /// resolve operands through the table instead of chasing this object.
  static constexpr uint32_t NoOpIndex = 0xFFFFFFFFu;
  uint32_t opIndex() const { return OpIdx; }

  static bool classof(const Instruction *) { return true; }

protected:
  Instruction(InstKind Kind, const TargetInfo &Target, MachWord Word);

private:
  friend class InstructionPool;
  InstKind Kind;
  MachWord Word;
  const TargetInfo &Target;
  RegSet Reads, Writes;
  bool DelaySlot = false;
  DelayBehavior Delay = DelayBehavior::None;
  bool Conditional = false;
  uint32_t OpIdx = NoOpIndex;
};

/// A word that does not decode: probably data (§3.1 stage 4 uses these to
/// find data tables masquerading as routines).
class InvalidInst : public Instruction {
public:
  InvalidInst(const TargetInfo &T, MachWord W)
      : Instruction(InstKind::Invalid, T, W) {}
  static bool classof(const Instruction *I) {
    return I->kind() == InstKind::Invalid;
  }
};

/// Ordinary computation.
class ComputationInst : public Instruction {
public:
  ComputationInst(const TargetInfo &T, MachWord W)
      : Instruction(InstKind::Computation, T, W) {}
  static bool classof(const Instruction *I) {
    return I->kind() == InstKind::Computation;
  }
};

/// Loads, stores, and combined accesses.
class MemoryInst : public Instruction {
public:
  MemoryInst(InstKind Kind, const TargetInfo &T, MachWord W)
      : Instruction(Kind, T, W), Mem(*T.memOp(W)) {}

  const MemOp &memOp() const { return Mem; }
  bool isLoad() const { return Mem.IsLoad; }
  bool isStore() const { return Mem.IsStore; }
  unsigned width() const { return Mem.Width; }

  static bool classof(const Instruction *I) {
    return I->kind() == InstKind::Load || I->kind() == InstKind::Store ||
           I->kind() == InstKind::LoadStore;
  }

private:
  MemOp Mem;
};

/// Common base of all control transfers.
class ControlInst : public Instruction {
public:
  using Instruction::Instruction;
  static bool classof(const Instruction *I) {
    return I->isControlTransfer();
  }
};

/// Conditional PC-relative branch.
class BranchInst : public ControlInst {
public:
  BranchInst(const TargetInfo &T, MachWord W)
      : ControlInst(InstKind::Branch, T, W) {}
  static bool classof(const Instruction *I) {
    return I->kind() == InstKind::Branch;
  }
};

/// Unconditional direct jump.
class JumpInst : public ControlInst {
public:
  JumpInst(const TargetInfo &T, MachWord W)
      : ControlInst(InstKind::Jump, T, W) {}
  static bool classof(const Instruction *I) {
    return I->kind() == InstKind::Jump;
  }
};

/// Direct call.
class CallInst : public ControlInst {
public:
  CallInst(const TargetInfo &T, MachWord W)
      : ControlInst(InstKind::Call, T, W) {}
  static bool classof(const Instruction *I) {
    return I->kind() == InstKind::Call;
  }
};

/// Base of register-target transfers; exposes the address computation.
class IndirectInst : public ControlInst {
public:
  IndirectInst(InstKind Kind, const TargetInfo &T, MachWord W)
      : ControlInst(Kind, T, W), Info(*T.indirectTarget(W)) {}

  const IndirectTargetInfo &targetInfo() const { return Info; }

  static bool classof(const Instruction *I) {
    return I->kind() == InstKind::IndirectJump ||
           I->kind() == InstKind::IndirectCall ||
           I->kind() == InstKind::Return;
  }

private:
  IndirectTargetInfo Info;
};

class IndirectJumpInst : public IndirectInst {
public:
  IndirectJumpInst(const TargetInfo &T, MachWord W)
      : IndirectInst(InstKind::IndirectJump, T, W) {}
  static bool classof(const Instruction *I) {
    return I->kind() == InstKind::IndirectJump;
  }
};

class IndirectCallInst : public IndirectInst {
public:
  IndirectCallInst(const TargetInfo &T, MachWord W)
      : IndirectInst(InstKind::IndirectCall, T, W) {}
  static bool classof(const Instruction *I) {
    return I->kind() == InstKind::IndirectCall;
  }
};

class ReturnInst : public IndirectInst {
public:
  ReturnInst(const TargetInfo &T, MachWord W)
      : IndirectInst(InstKind::Return, T, W) {}
  static bool classof(const Instruction *I) {
    return I->kind() == InstKind::Return;
  }
};

class SystemCallInst : public Instruction {
public:
  SystemCallInst(const TargetInfo &T, MachWord W)
      : Instruction(InstKind::SystemCall, T, W),
        Number(T.syscallNumber(W)) {}

  /// Trap number when it is an immediate field (as Figure 6 extracts the
  /// SPARC trap literal); nullopt when register-carried.
  std::optional<unsigned> number() const { return Number; }

  static bool classof(const Instruction *I) {
    return I->kind() == InstKind::SystemCall;
  }

private:
  std::optional<unsigned> Number;
};

/// Flyweight pool: one Instruction per distinct machine word. Statistics
/// "eel.inst.requested" / "eel.inst.allocated" feed bench_sharing.
///
/// Thread-safe: the word→instruction maps are split into shards folded
/// into a sharded bump arena — shard i's mutex guards both its map and the
/// arena chunk its instructions are placed in, so routine-analysis workers
/// decoding disjoint words rarely contend and never serialize on one
/// global lock. Instructions are immutable once constructed, so the
/// returned pointers can be shared freely across threads; holding the
/// shard lock through construction guarantees exactly one Instruction per
/// word (allocated() stays equal whatever the thread count — the flyweight
/// invariant bench_sharing measures). Pool instructions are arena-placed
/// and never individually destroyed (they own nothing); they die with the
/// pool.
///
/// On the decode hot path the per-word hash probe is replaced by a dense
/// per-address index: attachDecodeIndex() reserves one atomic slot per
/// text word, and getAt() resolves (addr - textBase) / 4 with a single
/// lock-free load after first decode.
class InstructionPool {
public:
  explicit InstructionPool(const TargetInfo &Target)
      : Target(Target), Arenas(ShardCount) {}

  /// Returns the shared instruction for \p Word (creating it on first use).
  const Instruction *get(MachWord Word);

  /// Reserves the dense decode index for text addresses
  /// [TextBase, TextBase + 4 * WordCount). Call before concurrent decoding
  /// (Executable's constructor does).
  void attachDecodeIndex(Addr TextBase, size_t WordCount);

  /// get(Word) for the word fetched from text address \p A: first decode
  /// of an address publishes the instruction into its index slot; every
  /// later decode is one acquire load, no lock, no hashing.
  const Instruction *getAt(Addr A, MachWord Word);

  const TargetInfo &target() const { return Target; }
  uint64_t requested() const {
    return Requested.load(std::memory_order_relaxed);
  }
  uint64_t allocated() const;

  /// Interned (reads, writes) register-mask pairs: Pair::First is the
  /// reads mask, Pair::Second the writes mask, indexed by
  /// Instruction::opIndex().
  const InternedPairTable &operands() const { return Ops; }

  /// Payload bytes bump-allocated for pool instructions.
  size_t arenaBytes() const { return Arenas.bytesAllocated(); }

private:
  static constexpr size_t ShardCount = 64; ///< Power of two.

  size_t shardIndexFor(MachWord Word) const {
    // Multiplicative hash: opcode bits cluster, so mix before masking.
    return (Word * 0x9E3779B9u >> 16) & (ShardCount - 1);
  }

  /// Shard-locked find-or-create, without the request accounting.
  const Instruction *lookup(MachWord Word);

  const TargetInfo &Target;
  ShardedBumpArena Arenas; ///< Shard i's mutex also guards Maps[i].
  std::array<std::unordered_map<MachWord, const Instruction *>, ShardCount>
      Maps;
  InternedPairTable Ops;
  std::atomic<uint64_t> Requested{0};

  Addr IndexBase = 0;
  size_t IndexWords = 0;
  std::unique_ptr<std::atomic<const Instruction *>[]> DecodeIndex;
};

/// Builds the right subclass for \p Word — the Figure 6 factory.
std::unique_ptr<Instruction> makeInstruction(const TargetInfo &Target,
                                             MachWord Word);

/// Arena-placing variant of the factory: the instruction lives until the
/// arena dies and is never destroyed (pool instructions own no resources).
Instruction *makeInstructionIn(BumpArena &Arena, const TargetInfo &Target,
                               MachWord Word);

} // namespace eel

#endif // EEL_CORE_INSTRUCTION_H
