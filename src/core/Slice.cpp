//===- core/Slice.cpp - Backward slicing for indirect jumps -----------------===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//

#include "core/Slice.h"

#include "core/Executable.h"
#include "core/Routine.h"
#include "support/Stats.h"
#include "support/Trace.h"

#include <set>

using namespace eel;

namespace {

/// Shared walk state: decoded instructions and join points of one routine.
class Slicer {
public:
  Slicer(Executable &Exec, Routine &R) : Exec(Exec), R(R) {
    // Branch/jump targets inside the routine are join points: walking a
    // definition past one would merge paths we know nothing about.
    for (Addr A = R.startAddr(); A + 4 <= R.endAddr(); A += 4) {
      const Instruction *I = instAt(A);
      if (!I)
        continue;
      if (I->kind() == InstKind::Branch || I->kind() == InstKind::Jump) {
        std::optional<Addr> T = I->directTarget(A);
        if (T && R.contains(*T))
          Joins.insert(*T);
      }
    }
    for (Addr E : R.entryPoints())
      Joins.insert(E);
  }

  const Instruction *instAt(Addr A) {
    if (!R.contains(A) || (A & 3))
      return nullptr;
    std::optional<MachWord> W = Exec.fetchWord(A);
    if (!W)
      return nullptr;
    return Exec.pool().getAt(A, *W);
  }

  /// Value of \p Reg immediately before the instruction at \p At.
  SymValue value(Addr At, unsigned Reg, unsigned Depth);

  /// True when any value() result in this slice was folded through an
  /// eel-infer constant cell.
  bool usedOracle() const { return !Folds.empty(); }

  /// The constant cells folded so far, in fold order.
  const std::vector<std::pair<Addr, uint32_t>> &folds() const {
    return Folds;
  }

private:
  /// The eel-infer oracle: a load from a cell proven constant collapses to
  /// the cell's initial contents. With no inference results installed
  /// (every symboled analysis) this never fires and slicing is unchanged.
  SymValue foldCell(SymValue V) {
    if (V.K != SymValue::Kind::CellLoad)
      return V;
    std::optional<uint32_t> Known = Exec.inferredCellValue(V.CellAddr);
    if (!Known)
      return V;
    Folds.push_back({V.CellAddr, *Known});
    SymValue Out;
    Out.K = SymValue::Kind::Const;
    Out.Const = *Known;
    return Out;
  }

  Executable &Exec;
  Routine &R;
  std::set<Addr> Joins;
  std::vector<std::pair<Addr, uint32_t>> Folds;

  static constexpr unsigned MaxWalk = 128;
  static constexpr unsigned MaxDepth = 16;
};

} // namespace

/// Combines two slice values under addition.
static SymValue addValues(const SymValue &A, const SymValue &B) {
  SymValue Out;
  if (A.K == SymValue::Kind::Const && B.K == SymValue::Kind::Const) {
    Out.K = SymValue::Kind::Const;
    Out.Const = A.Const + B.Const;
    return Out;
  }
  // Const + Scaled is a table-entry address: targets without reg+reg
  // addressing (MRISC) add the base and scaled index explicitly.
  const SymValue *C = nullptr, *S = nullptr;
  if (A.K == SymValue::Kind::Const && B.K == SymValue::Kind::Scaled) {
    C = &A;
    S = &B;
  } else if (B.K == SymValue::Kind::Const &&
             A.K == SymValue::Kind::Scaled) {
    C = &B;
    S = &A;
  }
  if (C) {
    Out.K = SymValue::Kind::TableAddr;
    Out.Base = C->Const;
    Out.OrigReg = S->OrigReg;
    Out.Shift = S->Shift;
  }
  return Out;
}

SymValue Slicer::value(Addr At, unsigned Reg, unsigned Depth) {
  SymValue Unknown;
  if (Depth > MaxDepth)
    return Unknown;
  if (Reg == 0) {
    // The hard-zero register always reads zero on both targets.
    SymValue Zero;
    Zero.K = SymValue::Kind::Const;
    Zero.Const = 0;
    return Zero;
  }

  unsigned Steps = 0;
  Addr A = At;
  while (A > R.startAddr() && Steps++ < MaxWalk) {
    // A join point (branch target or entry) at or below the current
    // position means control can enter here, bypassing any definition
    // above: the linear walk stops.
    if (Joins.count(A))
      return Unknown;
    A -= 4;
    const Instruction *I = instAt(A);
    if (!I)
      return Unknown;

    // A control transfer between the definition and the use means the use
    // site may be reached along a different path — unless this transfer
    // falls through (conditional branch or call), in which case the linear
    // walk is still one valid path; since slices feed conservative
    // *may-target* sets (and the table idiom sits in straight-line code),
    // we keep walking through fall-through transfers but stop at
    // unconditional ones.
    if (I->isControlTransfer()) {
      switch (I->kind()) {
      case InstKind::Branch:
      case InstKind::Call:
      case InstKind::IndirectCall:
        // Falls through. A call clobbers caller-saved registers though.
        if (I->kind() != InstKind::Branch) {
          const RegSet &Clobbered = Exec.target().conventions().CallerSaved;
          if (Clobbered.contains(Reg))
            return Unknown;
        }
        break;
      default:
        return Unknown; // jump/return: no fall-through path
      }
    }

    if (!I->writes().contains(Reg))
      continue; // the loop head stops at join points before going higher

    // Found the definition. Express it if possible.
    DataOp Op = I->dataOp();
    if (Op.Kind == DataOpKind::None) {
      // Perhaps a load: the table or cell idiom.
      if (const auto *Mem = dyn_cast<MemoryInst>(I)) {
        const MemOp &M = Mem->memOp();
        if (!M.IsLoad || M.Width != 4 || M.DataReg != Reg)
          return Unknown;
        SymValue BaseV = value(A, M.AddrBase, Depth + 1);
        SymValue Out;
        if (!M.HasIndex) {
          if (BaseV.K == SymValue::Kind::Const) {
            Out.K = SymValue::Kind::CellLoad;
            Out.CellAddr = BaseV.Const + static_cast<uint32_t>(M.Offset);
          } else if (BaseV.K == SymValue::Kind::TableAddr) {
            Out.K = SymValue::Kind::TableLoad;
            Out.Base = BaseV.Base + static_cast<uint32_t>(M.Offset);
            Out.OrigReg = BaseV.OrigReg;
            Out.Shift = BaseV.Shift;
          }
          return foldCell(Out);
        }
        SymValue IndexV = value(A, M.AddrIndex, Depth + 1);
        if (BaseV.K == SymValue::Kind::Const &&
            IndexV.K == SymValue::Kind::Scaled) {
          Out.K = SymValue::Kind::TableLoad;
          Out.Base = BaseV.Const;
          Out.OrigReg = IndexV.OrigReg;
          Out.Shift = IndexV.Shift;
        } else if (BaseV.K == SymValue::Kind::Scaled &&
                   IndexV.K == SymValue::Kind::Const) {
          Out.K = SymValue::Kind::TableLoad;
          Out.Base = IndexV.Const;
          Out.OrigReg = BaseV.OrigReg;
          Out.Shift = BaseV.Shift;
        } else if (BaseV.K == SymValue::Kind::Const &&
                   IndexV.K == SymValue::Kind::Const) {
          Out.K = SymValue::Kind::CellLoad;
          Out.CellAddr = BaseV.Const + IndexV.Const;
        }
        return foldCell(Out);
      }
      return Unknown;
    }

    switch (Op.Kind) {
    case DataOpKind::LoadImmHi: {
      SymValue Out;
      Out.K = SymValue::Kind::Const;
      Out.Const = static_cast<uint32_t>(Op.Imm);
      return Out;
    }
    case DataOpKind::Or:
    case DataOpKind::Add: {
      SymValue L = value(A, Op.Rs1, Depth + 1);
      SymValue RV;
      if (Op.HasImm) {
        RV.K = SymValue::Kind::Const;
        RV.Const = static_cast<uint32_t>(Op.Imm);
      } else {
        RV = value(A, Op.Rs2, Depth + 1);
      }
      if (Op.Kind == DataOpKind::Or) {
        // The sethi/or and lui/ori idioms: disjoint bit patterns behave
        // like addition.
        if (L.K == SymValue::Kind::Const && RV.K == SymValue::Kind::Const) {
          SymValue Out;
          Out.K = SymValue::Kind::Const;
          Out.Const = L.Const | RV.Const;
          return Out;
        }
        return Unknown;
      }
      return addValues(L, RV);
    }
    case DataOpKind::Sll: {
      if (!Op.HasImm)
        return Unknown;
      SymValue Src = value(A, Op.Rs1, Depth + 1);
      SymValue Out;
      if (Src.K == SymValue::Kind::Const) {
        Out.K = SymValue::Kind::Const;
        Out.Const = Src.Const << (Op.Imm & 31);
        return Out;
      }
      // An unshifted register becomes a scaled index.
      Out.K = SymValue::Kind::Scaled;
      Out.OrigReg = Op.Rs1;
      Out.Shift = static_cast<unsigned>(Op.Imm & 31);
      return Out;
    }
    default:
      return Unknown;
    }
  }
  return Unknown;
}

SymValue eel::backwardSlice(Executable &Exec, Routine &R, Addr At,
                            unsigned Reg) {
  bumpStat("eel.slice.queries");
  Slicer S(Exec, R);
  return S.value(At, Reg, 0);
}

/// Looks backwards from \p JumpAddr for a comparison bounding \p IdxReg:
/// a cc-setting subtract (SPARC cmp) or a set-less-than (MIPS slti) with an
/// immediate. Returns the exclusive upper bound on the index, if found.
static std::optional<unsigned> findBoundsCheck(Executable &Exec, Routine &R,
                                               Addr JumpAddr,
                                               unsigned IdxReg) {
  unsigned Steps = 0;
  Addr A = JumpAddr;
  while (A > R.startAddr() && Steps++ < 48) {
    A -= 4;
    std::optional<MachWord> W = Exec.fetchWord(A);
    if (!W)
      return std::nullopt;
    const Instruction *I = Exec.pool().getAt(A, *W);
    DataOp Op = I->dataOp();
    if (Op.Kind == DataOpKind::Sub && Op.SetsCC && Op.HasImm &&
        Op.Rs1 == IdxReg && Op.Imm >= 0)
      return static_cast<unsigned>(Op.Imm) + 1; // cmp idx, N; bgu default
    if (Op.Kind == DataOpKind::SetLess && Op.HasImm && Op.Rs1 == IdxReg &&
        Op.Imm > 0)
      return static_cast<unsigned>(Op.Imm); // slti t, idx, N
  }
  return std::nullopt;
}

/// True when the block before the jump pops the frame (the tail-call
/// idiom: deallocate, then jump to the callee).
static bool looksLikeTailCall(Executable &Exec, Routine &R, Addr JumpAddr) {
  unsigned SP = Exec.target().conventions().StackPointer;
  unsigned Steps = 0;
  Addr A = JumpAddr;
  while (A > R.startAddr() && Steps++ < 16) {
    A -= 4;
    std::optional<MachWord> W = Exec.fetchWord(A);
    if (!W)
      return false;
    DataOp Op = Exec.pool().getAt(A, *W)->dataOp();
    if (Op.Kind == DataOpKind::Add && Op.Rd == SP && Op.Rs1 == SP &&
        Op.HasImm && Op.Imm > 0)
      return true;
  }
  return false;
}

/// The symbolic jump-target value at an indirect transfer: the transfer's
/// base (and index/offset) registers sliced and combined per its shape.
static SymValue sliceJumpTarget(Slicer &S, const IndirectTargetInfo &Info,
                                Addr JumpAddr) {
  SymValue BaseV = S.value(JumpAddr, Info.BaseReg, 0);
  SymValue Target;
  if (Info.HasIndex) {
    SymValue IndexV = S.value(JumpAddr, Info.IndexReg, 0);
    if (BaseV.K == SymValue::Kind::Const &&
        IndexV.K == SymValue::Kind::Const) {
      Target.K = SymValue::Kind::Const;
      Target.Const = BaseV.Const + IndexV.Const;
    }
  } else if (Info.Offset == 0) {
    Target = BaseV;
  } else if (BaseV.K == SymValue::Kind::Const) {
    Target.K = SymValue::Kind::Const;
    Target.Const = BaseV.Const + static_cast<uint32_t>(Info.Offset);
  }
  return Target;
}

/// Decodes the IndirectInst at \p JumpAddr; asserts it is one.
static const IndirectInst *indirectAt(Executable &Exec, Addr JumpAddr) {
  std::optional<MachWord> W = Exec.fetchWord(JumpAddr);
  assert(W && "indirect jump outside image");
  const auto *Jump = dyn_cast<IndirectInst>(Exec.pool().getAt(JumpAddr, *W));
  assert(Jump && "resolveIndirect on a non-indirect instruction");
  return Jump;
}

IndirectResolution eel::resolveIndirect(Executable &Exec, Routine &R,
                                        Addr JumpAddr) {
  // The pipeline's only entry into slicing — backwardSlice() calls nested
  // here would double-count, so the timer and span live here alone.
  ScopedStatTimer Timer("time.slice_us");
  EEL_TRACE_SCOPE("slice.resolve_indirect", "routine", R.name());
  IndirectResolution Res;
  const IndirectTargetInfo &Info = indirectAt(Exec, JumpAddr)->targetInfo();

  Slicer S(Exec, R);
  SymValue Target = sliceJumpTarget(S, Info, JumpAddr);

  switch (Target.K) {
  case SymValue::Kind::Const:
    Res.K = IndirectResolution::Kind::Literal;
    Res.Targets.push_back(Target.Const);
    if (S.usedOracle()) {
      Res.Inferred = true;
      // Remember which constant cell fed the jump target, so the editor
      // rewrites that cell precisely even with the heuristic data scan off.
      for (const auto &[Cell, Value] : S.folds())
        if (Value == Target.Const)
          Res.CellAddr = Cell;
      Res.TailCallIdiom = looksLikeTailCall(Exec, R, JumpAddr);
      bumpStat("eel.slice.inferred_literal");
    }
    bumpStat("eel.slice.literal");
    return Res;

  case SymValue::Kind::TableLoad: {
    if (Target.Shift != 2)
      break; // only word-sized entries are dispatch tables
    Res.TableAddr = Target.Base;
    // Enumerate entries while they are plausible code addresses; refine
    // with a bounds check on the (pre-scaling) index register when found.
    std::optional<unsigned> Bound =
        findBoundsCheck(Exec, R, JumpAddr, Target.OrigReg);
    unsigned Limit = Bound ? *Bound : 1024u;
    std::vector<Addr> Targets;
    for (unsigned Idx = 0; Idx < Limit; ++Idx) {
      std::optional<uint32_t> Entry =
          Exec.fetchWord(Res.TableAddr + 4 * Idx);
      if (!Entry || !Exec.isTextAddr(*Entry) || (*Entry & 3))
        break;
      Targets.push_back(*Entry);
    }
    if (Targets.empty())
      break;
    Res.K = IndirectResolution::Kind::DispatchTable;
    Res.EntryCount = static_cast<unsigned>(Targets.size());
    Res.BoundsProven = Bound.has_value() && *Bound == Res.EntryCount;
    Res.Targets = std::move(Targets);
    Res.Inferred = S.usedOracle();
    if (Res.Inferred)
      bumpStat("eel.slice.inferred_tables");
    bumpStat("eel.slice.dispatch_tables");
    return Res;
  }

  case SymValue::Kind::CellLoad:
    Res.K = IndirectResolution::Kind::CellPointer;
    Res.CellAddr = Target.CellAddr;
    Res.TailCallIdiom = looksLikeTailCall(Exec, R, JumpAddr);
    bumpStat("eel.slice.cells");
    return Res;

  default:
    break;
  }

  Res.K = IndirectResolution::Kind::Unanalyzable;
  Res.TailCallIdiom = looksLikeTailCall(Exec, R, JumpAddr);
  bumpStat("eel.slice.unanalyzable");
  return Res;
}

TableEvidence eel::tableEvidence(Executable &Exec, Routine &R,
                                 Addr JumpAddr) {
  TableEvidence Ev;
  const IndirectTargetInfo &Info = indirectAt(Exec, JumpAddr)->targetInfo();
  Slicer S(Exec, R);
  SymValue Target = sliceJumpTarget(S, Info, JumpAddr);
  if (Target.K != SymValue::Kind::TableLoad)
    return Ev;
  Ev.HasTable = true;
  Ev.Base = Target.Base;
  Ev.Shift = Target.Shift;
  Ev.Bound = findBoundsCheck(Exec, R, JumpAddr, Target.OrigReg);
  Ev.ViaConstantCell = S.usedOracle();
  return Ev;
}

std::optional<Addr> eel::storeTargetAddr(Executable &Exec, Routine &R,
                                         Addr StoreAddr) {
  std::optional<MachWord> W = Exec.fetchWord(StoreAddr);
  if (!W)
    return std::nullopt;
  const auto *Mem = dyn_cast<MemoryInst>(Exec.pool().getAt(StoreAddr, *W));
  if (!Mem || !Mem->memOp().IsStore)
    return std::nullopt;
  const MemOp &M = Mem->memOp();
  Slicer S(Exec, R);
  SymValue BaseV = S.value(StoreAddr, M.AddrBase, 0);
  if (BaseV.K != SymValue::Kind::Const)
    return std::nullopt;
  if (!M.HasIndex)
    return BaseV.Const + static_cast<uint32_t>(M.Offset);
  SymValue IndexV = S.value(StoreAddr, M.AddrIndex, 0);
  if (IndexV.K != SymValue::Kind::Const)
    return std::nullopt;
  return BaseV.Const + IndexV.Const;
}
