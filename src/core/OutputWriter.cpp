//===- core/OutputWriter.cpp - Edited-executable production -------------------===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Implements Executable::writeEditedExecutable(): lays out every routine,
/// places the layouts (plus the run-time translator and tool-added
/// routines) in a fresh text segment, patches all placement-dependent
/// relocations, runs snippet call-backs, rewrites dispatch tables and data
/// code-pointers, builds the original→edited translation table, and emits
/// the new image with an updated symbol table.
///
//===----------------------------------------------------------------------===//

#include "core/Executable.h"

#include "analysis/Verifier.h"
#include "asmkit/Assembler.h"
#include "asmkit/TargetAsm.h"
#include "core/Layout.h"
#include "core/Translate.h"
#include "support/Stats.h"
#include "support/ThreadPool.h"
#include "support/Trace.h"

#include <memory>
#include <optional>

using namespace eel;

namespace {

struct PlacedRoutine {
  Routine *R = nullptr;
  RoutineLayout Layout;
  Addr Base = 0;
};

// The zero-copy emitter writes machine words straight into the final text
// buffer; all word accesses go through these so the image is little-endian
// regardless of host byte order.
inline void storeLE32(uint8_t *Ptr, MachWord W) {
  Ptr[0] = static_cast<uint8_t>(W);
  Ptr[1] = static_cast<uint8_t>(W >> 8);
  Ptr[2] = static_cast<uint8_t>(W >> 16);
  Ptr[3] = static_cast<uint8_t>(W >> 24);
}

inline MachWord loadLE32(const uint8_t *Ptr) {
  return static_cast<MachWord>(Ptr[0]) | (static_cast<MachWord>(Ptr[1]) << 8) |
         (static_cast<MachWord>(Ptr[2]) << 16) |
         (static_cast<MachWord>(Ptr[3]) << 24);
}

} // namespace

Expected<SxfFile> Executable::writeEditedExecutable() {
  Expected<bool> Read = readContents();
  if (Read.hasError())
    return Read.error();
  Stats = EditStats();
  AddrMap.clear();

  ScopedStatTimer WriteTimer("time.write_us");
  EEL_TRACE_SCOPE("writeEditedExecutable");
  // One span per numbered phase below, sequential and non-overlapping:
  // starting a phase ends the previous one.
  std::optional<TraceSpan> PhaseSpan;
  auto BeginPhase = [&PhaseSpan](const char *Name) {
    PhaseSpan.reset();
    PhaseSpan.emplace(Name);
  };

  const asmkit::InstParser &Parser = asmkit::instParserFor(Image.Arch);

  // --- 1. Lay out every routine --------------------------------------------
  // Per-routine layout (with the CFG construction, slicing, and liveness it
  // pulls in when not already cached) is independent across routines, so it
  // fans out over the pool. Results land in per-index slots and are merged
  // in index order below, which makes placement, the address map, and the
  // reported error (the lowest-index failure) identical to the serial path.
  BeginPhase("write.layout");
  const unsigned NThreads = effectiveThreads();
  const size_t NumRoutines = Routines.size();
  std::vector<std::optional<Expected<RoutineLayout>>> LaidOut;
  if (NThreads > 1) {
    LaidOut.resize(NumRoutines);
    parallelForEach(NThreads, NumRoutines, [this, &LaidOut](size_t Index) {
      LaidOut[Index].emplace(layoutRoutine(*Routines[Index]));
    });
  }

  std::vector<PlacedRoutine> Placed;
  bool NeedTranslator = false;
  for (size_t Index = 0; Index < NumRoutines; ++Index) {
    Routine &R = *Routines[Index];
    Expected<RoutineLayout> Layout =
        NThreads > 1 ? std::move(*LaidOut[Index]) : layoutRoutine(R);
    if (Layout.hasError())
      return Layout.error();
    PlacedRoutine P;
    P.R = &R;
    P.Layout = Layout.takeValue();
    NeedTranslator |= P.Layout.NeedsTranslator;
    if (P.Layout.Verbatim)
      ++Stats.RoutinesVerbatim;
    else if (R.cachedCfg() && R.cachedCfg()->edited())
      ++Stats.RoutinesEdited;
    Stats.DelaySlotsFolded += P.Layout.DelayFolded;
    Stats.DelaySlotsMaterialized += P.Layout.DelayMaterialized;
    Stats.SnippetInstances += P.Layout.SnippetInstances;
    Stats.SnippetSpills += P.Layout.SnippetSpills;
    Stats.SnippetCCSaves += P.Layout.SnippetCCSaves;
    Placed.push_back(std::move(P));
  }

  // --- 2. Place routines and build the global address map -------------------
  // Edited code lives at a fresh base disjoint from the original text so
  // that original and edited instruction addresses never collide: the
  // run-time translator can then distinguish untranslated original
  // addresses (in its table) from values that were already rewritten.
  BeginPhase("write.place");
  Addr NewTextBase = (textEnd() + 0xFFFu) & ~0xFFFu;
  Addr Cursor = NewTextBase;
  for (PlacedRoutine &P : Placed) {
    P.Base = Cursor;
    Cursor += static_cast<Addr>(P.Layout.Code.size() * 4);
    for (const auto &[Orig, WordIndex] : P.Layout.AddrMap)
      AddrMap.append(Orig, P.Base + 4 * WordIndex);
  }
  // First mapping wins for any key mapped by more than one routine, same
  // as the seed's std::map::emplace; the sealed map then serves concurrent
  // binary-search lookups from the patch workers below.
  AddrMap.seal();

  // --- 3. Translation table and translator ----------------------------------
  BeginPhase("write.translator");
  Addr TranslatorAddr = 0;
  std::vector<MachWord> TranslatorCode;
  Addr TableAddr = 0;
  unsigned TableCount = 0;
  if (NeedTranslator && Opts.EnableRuntimeTranslation) {
    TableCount = static_cast<unsigned>(AddrMap.size());
    TableAddr = appendData(TableCount * 8, 8, "__eel_translation_table");
    TranslatorAddr = Cursor;
    Expected<SxfFile> Assembled = assembleProgram(
        Image.Arch, translatorAsm(Target, TableAddr, TableCount),
        AsmOptions{TranslatorAddr, 0x7F000000});
    if (Assembled.hasError())
      return Error("internal: translator assembly failed: " +
                   Assembled.error().message());
    const SxfSegment *Text = Assembled.value().segment(SegKind::Text);
    for (size_t I = 0; I + 4 <= Text->Bytes.size(); I += 4)
      TranslatorCode.push_back(
          *Assembled.value().readWord(Text->VAddr + static_cast<Addr>(I)));
    Cursor += static_cast<Addr>(TranslatorCode.size() * 4);
    Stats.TranslationEntries = TableCount;
  }

  // --- 4. Tool-added routines -------------------------------------------------
  BeginPhase("write.added_routines");
  std::vector<std::vector<MachWord>> AddedCode;
  for (AddedRoutine &Added : AddedRoutines) {
    Added.PlacedAddr = Cursor;
    Expected<SxfFile> Assembled = assembleProgram(
        Image.Arch, Added.AsmText, AsmOptions{Added.PlacedAddr, 0x7F000000});
    if (Assembled.hasError())
      return Error("added routine '" + Added.Name + "': " +
                   Assembled.error().message());
    const SxfSegment *Text = Assembled.value().segment(SegKind::Text);
    std::vector<MachWord> Words;
    for (size_t I = 0; I + 4 <= Text->Bytes.size(); I += 4)
      Words.push_back(
          *Assembled.value().readWord(Text->VAddr + static_cast<Addr>(I)));
    Cursor += static_cast<Addr>(Words.size() * 4);
    AddedCode.push_back(std::move(Words));
  }

  // --- 5. Emit text, patch relocations, run call-backs ----------------------
  // The default path is zero-copy: placement (phase 2) fixed the exact text
  // size, so one contiguous buffer is allocated up front, every routine's
  // words are emitted directly at their placed offsets, and relocation
  // patching and snippet call-backs then operate in place on that buffer.
  // The legacy (seed) path patches each routine's word vector first and
  // serializes them byte by byte afterwards. Both orders write the same
  // values to the same words — the patches depend only on the frozen
  // address map and placement, never on neighbouring emitted bytes — so
  // the images are byte-identical; tests assert this on a full corpus.
  SxfFile Out;
  Out.Arch = Image.Arch;

  SxfSegment TextSeg;
  TextSeg.Kind = SegKind::Text;
  TextSeg.VAddr = NewTextBase;

  uint8_t *TextBuf = nullptr; // non-null selects the zero-copy accessors
  if (!Opts.LegacyWriter) {
    BeginPhase("write.emit");
    auto EmitTimer = std::make_unique<ScopedStatTimer>("time.emit_us");
    TextSeg.Bytes.resize(static_cast<size_t>(Cursor - NewTextBase));
    TextBuf = TextSeg.Bytes.data();
    parallelForEach(NThreads, Placed.size(),
                    [&Placed, TextBuf, NewTextBase](size_t Index) {
                      const PlacedRoutine &P = Placed[Index];
                      uint8_t *Dst = TextBuf + (P.Base - NewTextBase);
                      for (MachWord W : P.Layout.Code) {
                        storeLE32(Dst, W);
                        Dst += 4;
                      }
                    });
    if (!TranslatorCode.empty()) {
      uint8_t *Dst = TextBuf + (TranslatorAddr - NewTextBase);
      for (MachWord W : TranslatorCode) {
        storeLE32(Dst, W);
        Dst += 4;
      }
    }
    for (size_t I = 0; I < AddedCode.size(); ++I) {
      uint8_t *Dst = TextBuf + (AddedRoutines[I].PlacedAddr - NewTextBase);
      for (MachWord W : AddedCode[I]) {
        storeLE32(Dst, W);
        Dst += 4;
      }
    }
    EmitTimer.reset();
  }

  auto LoadWord = [&](const PlacedRoutine &P, unsigned WI) -> MachWord {
    if (TextBuf)
      return loadLE32(TextBuf + (P.Base - NewTextBase) + size_t(4) * WI);
    return P.Layout.Code[WI];
  };
  auto StoreWord = [&](PlacedRoutine &P, unsigned WI, MachWord W) {
    if (TextBuf)
      storeLE32(TextBuf + (P.Base - NewTextBase) + size_t(4) * WI, W);
    else
      P.Layout.Code[WI] = W;
  };

  // Per-routine and independent once the address map is frozen (phase 2):
  // each worker writes only its own routine's words and reads the shared
  // sealed map. Per-routine translation-site counts and error messages are
  // merged in index order, so the serial oracle's result is reproduced.
  BeginPhase("write.reloc_patch");
  auto RelocTimer = std::make_unique<ScopedStatTimer>("time.reloc_us");
  std::vector<unsigned> SiteCounts(Placed.size(), 0);
  std::vector<std::string> PatchErrors(Placed.size());
  parallelForEach(
      NThreads, Placed.size(),
      [this, &Placed, &SiteCounts, &PatchErrors, &Parser, &LoadWord,
       &StoreWord, TranslatorAddr](size_t Index) {
        PlacedRoutine &P = Placed[Index];
        for (const Reloc &Rl : P.Layout.Relocs) {
          Addr PC = P.Base + 4 * Rl.WordIndex;
          MachWord Word = LoadWord(P, Rl.WordIndex);
          switch (Rl.K) {
          case Reloc::Kind::CallTo:
          case Reloc::Kind::JumpTo: {
            auto It = AddrMap.find(Rl.OrigTarget);
            if (It == AddrMap.end())
              break; // bogus transfer decoded from data: leave untouched
            std::optional<MachWord> New =
                Target.retargetDirect(Word, PC, It->second);
            if (!New) {
              PatchErrors[Index] = "routine '" + P.R->name() +
                                   "': edited transfer target out of range";
              return;
            }
            Word = *New;
            break;
          }
          case Reloc::Kind::Internal: {
            Addr Dest = P.Base + 4 * Rl.DestWordIndex;
            std::optional<MachWord> New =
                Target.retargetDirect(Word, PC, Dest);
            if (!New) {
              PatchErrors[Index] = "routine '" + P.R->name() +
                                   "': internal transfer out of range";
              return;
            }
            Word = *New;
            break;
          }
          case Reloc::Kind::AddrHi:
          case Reloc::Kind::AddrLo: {
            auto It = AddrMap.find(Rl.OrigTarget);
            if (It == AddrMap.end())
              break; // not a code address after all
            Word = Rl.K == Reloc::Kind::AddrHi
                       ? Parser.applyImmHi(Word, It->second)
                       : Parser.applyImmLo(Word, It->second);
            break;
          }
          case Reloc::Kind::TranslatorHi:
            ++SiteCounts[Index];
            Word = Parser.applyImmHi(Word, TranslatorAddr);
            break;
          case Reloc::Kind::TranslatorLo:
            Word = Parser.applyImmLo(Word, TranslatorAddr);
            break;
          }
          StoreWord(P, Rl.WordIndex, Word);
        }
      });
  for (size_t Index = 0; Index < Placed.size(); ++Index) {
    if (!PatchErrors[Index].empty())
      return Error(PatchErrors[Index]);
    Stats.TranslationSites += SiteCounts[Index];
  }
  RelocTimer.reset();

  // --- 6. Snippet call-backs ------------------------------------------------------
  BeginPhase("write.callbacks");
  for (PlacedRoutine &P : Placed) {
    for (PendingCallback &CB : P.Layout.Callbacks) {
      SnippetInstance &Inst = CB.Instance;
      Inst.StartAddr = P.Base + 4 * CB.WordIndex;
      for (size_t I = 0; I < Inst.Words.size(); ++I)
        Inst.Words[I] = LoadWord(P, CB.WordIndex + static_cast<unsigned>(I));
      CB.Snippet->callback()(Inst);
      for (size_t I = 0; I < Inst.Words.size(); ++I)
        StoreWord(P, CB.WordIndex + static_cast<unsigned>(I), Inst.Words[I]);
    }
  }

  // --- 7. Build the output image ----------------------------------------------------
  if (Opts.LegacyWriter) {
    // Seed emission path: serialize the patched word vectors byte by byte.
    BeginPhase("write.emit");
    auto EmitTimer = std::make_unique<ScopedStatTimer>("time.emit_us");
    auto AppendWords = [&TextSeg](const std::vector<MachWord> &Words) {
      for (MachWord W : Words) {
        TextSeg.Bytes.push_back(static_cast<uint8_t>(W));
        TextSeg.Bytes.push_back(static_cast<uint8_t>(W >> 8));
        TextSeg.Bytes.push_back(static_cast<uint8_t>(W >> 16));
        TextSeg.Bytes.push_back(static_cast<uint8_t>(W >> 24));
      }
    };
    for (const PlacedRoutine &P : Placed)
      AppendWords(P.Layout.Code);
    AppendWords(TranslatorCode);
    for (const auto &Words : AddedCode)
      AppendWords(Words);
    EmitTimer.reset();
  }
  BeginPhase("write.image");
  TextSeg.MemSize = static_cast<uint32_t>(TextSeg.Bytes.size());
  Out.Segments.push_back(std::move(TextSeg));

  // Original non-text segments are copied unchanged (then patched below).
  for (const SxfSegment &Seg : Image.Segments)
    if (Seg.Kind != SegKind::Text)
      Out.Segments.push_back(Seg);

  // Appended data (tool counters, translation table).
  if (!AppendedData.empty()) {
    Addr Lo = AppendedData.front().Address;
    SxfSegment Blob;
    Blob.Kind = SegKind::Data;
    Blob.VAddr = Lo;
    Blob.Bytes.assign(NextDataAddr - Lo, 0);
    for (const DataBlob &B : AppendedData)
      for (size_t I = 0; I < B.Initial.size(); ++I)
        Blob.Bytes[B.Address - Lo + I] = B.Initial[I];
    Blob.MemSize = static_cast<uint32_t>(Blob.Bytes.size());
    Out.Segments.push_back(std::move(Blob));
  }

  // Translation table contents: sorted (orig, edited) pairs. The sealed
  // flat map iterates in original-address order.
  if (TableCount) {
    Addr At = TableAddr;
    for (const auto &[Orig, Edited] : AddrMap) {
      Out.writeWord(At, Orig);
      Out.writeWord(At + 4, Edited);
      At += 8;
    }
  }

  // --- 8. Data-pointer rewriting ------------------------------------------------
  // When the image carries relocation information, rewrite exactly the
  // 32-bit address words it names (the §3.1 footnote's "supplement ...
  // with relocation information, when available"); otherwise fall back to
  // the heuristic whole-segment scan, which can mistake an integer for a
  // code pointer.
  BeginPhase("write.data_pointers");
  if (Opts.RewriteDataPointers && !Image.Relocs.empty()) {
    Addr TB = textBase(), TE = textEnd();
    for (const SxfReloc &Reloc : Image.Relocs) {
      if (Reloc.Kind != RelocKind::Word32)
        continue;
      if (Reloc.Site >= TB && Reloc.Site < TE)
        continue; // words inside text moved with their routine's layout
      auto It = AddrMap.find(Reloc.Target);
      if (It == AddrMap.end())
        continue; // a data-to-data pointer
      Out.writeWord(Reloc.Site, It->second);
      ++Stats.DataPointersRewritten;
    }
  } else if (Opts.RewriteDataPointers) {
    for (SxfSegment &Seg : Out.Segments) {
      if (Seg.Kind != SegKind::Data)
        continue;
      // Only segments copied from the original image (not the appended
      // blob, whose contents are already edited addresses).
      bool FromOriginal = false;
      for (const SxfSegment &OrigSeg : Image.Segments)
        if (OrigSeg.Kind == Seg.Kind && OrigSeg.VAddr == Seg.VAddr)
          FromOriginal = true;
      if (!FromOriginal)
        continue;
      for (size_t Off = 0; Off + 4 <= Seg.Bytes.size(); Off += 4) {
        Addr A = Seg.VAddr + static_cast<Addr>(Off);
        uint32_t W = *Out.readWord(A);
        if (!isTextAddr(W))
          continue;
        auto It = AddrMap.find(W);
        if (It == AddrMap.end())
          continue;
        Out.writeWord(A, It->second);
        ++Stats.DataPointersRewritten;
      }
    }
  }

  // --- 9. Dispatch-table rewriting --------------------------------------------------
  BeginPhase("write.dispatch_tables");
  for (const PlacedRoutine &P : Placed) {
    for (const TableFix &Fix : P.Layout.TableFixes) {
      const SxfSegment *Seg = Image.segmentContaining(Fix.TableAddr);
      if (!Seg || Seg->Kind == SegKind::Text)
        continue; // tables inside moved text are not rewritable
      for (size_t I = 0; I < Fix.Entries.size(); ++I) {
        const TableEntryFix &EF = Fix.Entries[I];
        Addr Value;
        if (EF.StubWordIndex >= 0) {
          Value = P.Base + 4 * static_cast<Addr>(EF.StubWordIndex);
        } else {
          auto It = AddrMap.find(EF.OrigTarget);
          if (It == AddrMap.end())
            continue;
          Value = It->second;
        }
        Out.writeWord(Fix.TableAddr + 4 * static_cast<Addr>(I), Value);
        ++Stats.DispatchEntriesRewritten;
      }
    }
    // Constant code-pointer cells behind inferred Literal jumps: precise,
    // unconditional rewrites (idempotent with the phase-8 pointer scan,
    // which writes the same edited address when enabled).
    for (const CellFix &Fix : P.Layout.CellFixes) {
      const SxfSegment *Seg = Image.segmentContaining(Fix.Cell);
      if (!Seg || Seg->Kind == SegKind::Text)
        continue;
      auto It = AddrMap.find(Fix.Target);
      if (It == AddrMap.end())
        continue;
      Out.writeWord(Fix.Cell, It->second);
      ++Stats.CellPointersRewritten;
    }
  }

  // --- 10. Symbols and entry point --------------------------------------------------
  BeginPhase("write.symbols");
  for (const PlacedRoutine &P : Placed) {
    SxfSymbol Sym;
    Sym.Name = P.R->name();
    Sym.Value = P.Base;
    Sym.Size = static_cast<uint32_t>(P.Layout.Code.size() * 4);
    Sym.Kind = P.R->isData() ? SymKind::Object : SymKind::Routine;
    const SxfSymbol *Orig = Image.findSymbol(P.R->name());
    Sym.Binding = Orig ? Orig->Binding : SymBinding::Local;
    Out.Symbols.push_back(std::move(Sym));
  }
  if (!TranslatorCode.empty())
    Out.Symbols.push_back({"__eel_translate", TranslatorAddr,
                           static_cast<uint32_t>(TranslatorCode.size() * 4),
                           SymKind::Routine, SymBinding::Local});
  for (size_t I = 0; I < AddedRoutines.size(); ++I)
    Out.Symbols.push_back({AddedRoutines[I].Name, AddedRoutines[I].PlacedAddr,
                           static_cast<uint32_t>(AddedCode[I].size() * 4),
                           SymKind::Routine, SymBinding::Local});
  // Non-text symbols (data objects) keep their addresses.
  for (const SxfSymbol &Sym : Image.Symbols)
    if (Sym.Value < textBase() || Sym.Value >= textEnd())
      Out.Symbols.push_back(Sym);

  auto EntryIt = AddrMap.find(Image.Entry);
  if (EntryIt == AddrMap.end())
    return Error("program entry point did not survive editing");
  Out.Entry = EntryIt->second;

  // --- 11. Optional verification gate -----------------------------------------------
  BeginPhase("write.verify_gate");
  if (Opts.Verify) {
    // The gate runs the re-analysis-free profile (passes 1-4); full
    // translation validation re-disassembles the output and is a separate
    // verifyEdit()/eel-lint step when a tool can afford it.
    DiagnosticReport Report = verifyEdit(*this, Out, VerifyOptions::writeGate());
    if (Report.hasErrors())
      return Error("edited image failed verification (" +
                   std::to_string(Report.errorCount()) + " error(s)):\n" +
                   Report.renderText());
  }
  return Out;
}
