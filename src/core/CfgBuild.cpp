//===- core/CfgBuild.cpp - CFG construction -----------------------------------===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds a routine's control-flow graph (§3.3): discovers reachable
/// instructions from every entry point, resolves indirect jumps by slicing,
/// forms basic blocks, and normalizes machine-level control flow —
/// delay-slot instructions move into their own blocks on exactly the edges
/// along which they execute (Figure 3), calls get zero-length surrogate
/// blocks, and everything that leaves the routine is marked uneditable.
///
//===----------------------------------------------------------------------===//

#include "core/Cfg.h"

#include "core/Executable.h"
#include "core/Routine.h"
#include "core/Slice.h"
#include "support/Metrics.h"
#include "support/Stats.h"
#include "support/Trace.h"

#include <chrono>
#include <map>
#include <set>

using namespace eel;

namespace eel {

/// One-shot builder for a routine's CFG.
class CfgBuilder {
public:
  explicit CfgBuilder(Routine &R)
      : R(R), Exec(R.executable()), Target(Exec.target()),
        Graph(std::make_unique<Cfg>(R, Target)) {}

  std::unique_ptr<Cfg> build();

private:
  const Instruction *instAt(Addr A) {
    if (!R.contains(A) || (A & 3))
      return nullptr;
    std::optional<MachWord> W = Exec.fetchWord(A);
    if (!W)
      return nullptr;
    return Exec.pool().getAt(A, *W);
  }

  void discover(std::vector<Addr> Roots, bool Speculative);
  void coverRemainder();
  void formBlocks();
  void connect();
  void connectBlock(BasicBlock *B);

  /// Destination block for a transfer target: an internal block, or the
  /// exit block (recording the external target).
  BasicBlock *destFor(BasicBlock *From, Addr Target, bool &External);

  BasicBlock *makeDelayBlock(Addr TransferAddr);

  Routine &R;
  Executable &Exec;
  const TargetInfo &Target;
  std::unique_ptr<Cfg> Graph;

  std::set<Addr> Leaders;
  std::set<Addr> Visited;
  std::set<Addr> DelayConsumed;
  std::map<Addr, IndirectResolution> Indirect;
};

} // namespace eel

BasicBlock *CfgBuilder::destFor(BasicBlock *From, Addr TargetAddr,
                                bool &External) {
  External = false;
  if (R.contains(TargetAddr)) {
    if (BasicBlock *Dst = Graph->blockAt(TargetAddr))
      return Dst;
    // The target was scheduled but discovery dropped it (it decodes as
    // data, or its delay slot falls outside the routine). Control reaching
    // it would execute garbage; poison the routine instead of crashing.
    Graph->ReachedInvalid = true;
    return Graph->Exit;
  }
  External = true;
  Graph->InterJumps.push_back({From, TargetAddr});
  return Graph->Exit;
}

BasicBlock *CfgBuilder::makeDelayBlock(Addr TransferAddr) {
  Addr DelayAddr = TransferAddr + 4;
  const Instruction *DI = instAt(DelayAddr);
  if (!DI) {
    // Discovery rejects transfers whose delay slot leaves the routine, so
    // this is unreachable from well-formed input; stay defensive for the
    // NDEBUG build and substitute a nop rather than dereference null.
    assert(false && "delay slot outside routine");
    Graph->ReachedInvalid = true;
    DI = Exec.pool().get(Target.nopWord());
  }
  BasicBlock *DB = Graph->newBlock(BlockKind::DelaySlot, DelayAddr);
  Graph->appendInst(DB, DI, DelayAddr);
  return DB;
}

void CfgBuilder::discover(std::vector<Addr> Roots, bool Speculative) {
  std::vector<Addr> Worklist(std::move(Roots));
  for (Addr E : Worklist)
    Leaders.insert(E);

  auto Schedule = [&](Addr A) { Worklist.push_back(A); };
  auto ScheduleLeader = [&](Addr A) {
    Leaders.insert(A);
    Worklist.push_back(A);
  };

  while (!Worklist.empty()) {
    Addr A = Worklist.back();
    Worklist.pop_back();
    if (!R.contains(A) || (A & 3) || Visited.count(A))
      continue;
    const Instruction *I = instAt(A);
    if (!I) {
      if (!Speculative)
        Graph->ReachedInvalid = true;
      continue;
    }
    Visited.insert(A);
    if (isa<InvalidInst>(I)) {
      // Invalid words are data, not instructions. Hitting one from a
      // proven-reachable path poisons the routine; hitting one while
      // speculatively covering the unreached remainder just ends that
      // thread of exploration.
      if (!Speculative)
        Graph->ReachedInvalid = true;
      Visited.erase(A);
      continue;
    }
    if (!I->isControlTransfer()) {
      if (R.contains(A + 4)) {
        Schedule(A + 4);
      } else if (!Speculative) {
        Graph->Unsupported = true;
        Graph->UnsupportedReason = "control runs off the routine's end";
      }
      continue;
    }

    // Inspect the delay slot.
    Addr DelayAddr = A + 4;
    const Instruction *DI =
        I->hasDelaySlot() ? instAt(DelayAddr) : nullptr;
    if (I->hasDelaySlot()) {
      if (!DI) {
        if (!Speculative) {
          Graph->Unsupported = true;
          Graph->UnsupportedReason = "delay slot outside the routine";
        }
        Visited.erase(A);
        continue;
      }
      DelayConsumed.insert(DelayAddr);
      if (DI->isControlTransfer())
        Graph->Exotic = true; // delayed transfer in a delay slot
      if (isa<InvalidInst>(DI) &&
          I->delayBehavior() != DelayBehavior::AnnulAlways) {
        if (!Speculative)
          Graph->ReachedInvalid = true;
        Visited.erase(A);
        continue;
      }
    }

    // First address past the transfer and its (possible) delay slot: the
    // branch fallthrough / call continuation. On delay-slot machines this
    // is A+8; on machines without delay slots it is simply A+4.
    Addr Past = A + (I->hasDelaySlot() ? 8 : 4);

    switch (I->kind()) {
    case InstKind::Branch: {
      std::optional<Addr> T = I->directTarget(A);
      assert(T && "conditional branch without a target");
      if (R.contains(*T))
        ScheduleLeader(*T);
      ScheduleLeader(Past);
      break;
    }
    case InstKind::Jump: {
      std::optional<Addr> T = I->directTarget(A);
      assert(T && "direct jump without a target");
      if (R.contains(*T))
        ScheduleLeader(*T);
      break;
    }
    case InstKind::Call:
    case InstKind::IndirectCall:
      if (R.contains(Past)) {
        ScheduleLeader(Past);
      } else if (!Speculative) {
        Graph->Unsupported = true;
        Graph->UnsupportedReason = "call continuation outside the routine";
      }
      if (I->kind() == InstKind::IndirectCall && !Indirect.count(A)) {
        // On the inference path the fixpoint already resolved this site;
        // reusing its answer keeps stripped-analysis CFGs bit-identical to
        // what inference decided, independent of threading.
        if (const IndirectResolution *Pre = Exec.inferredSite(A))
          Indirect.emplace(A, *Pre);
        else
          Indirect.emplace(A, resolveIndirect(Exec, R, A));
      }
      break;
    case InstKind::Return:
      break;
    case InstKind::IndirectJump: {
      if (Indirect.count(A))
        break;
      const IndirectResolution *Pre = Exec.inferredSite(A);
      IndirectResolution Res = Pre ? *Pre : resolveIndirect(Exec, R, A);
      if (Exec.options().DisableSlicing)
        Res.K = IndirectResolution::Kind::Unanalyzable;
      if (Res.K == IndirectResolution::Kind::DispatchTable) {
        // All targets must be intra-routine to use the precise CFG; a
        // table that jumps elsewhere falls back to run-time translation.
        bool AllInternal = true;
        for (Addr T : Res.Targets)
          if (!R.contains(T))
            AllInternal = false;
        if (AllInternal) {
          for (Addr T : Res.Targets)
            ScheduleLeader(T);
        } else {
          Res.K = IndirectResolution::Kind::Unanalyzable;
        }
      } else if (Res.K == IndirectResolution::Kind::Literal) {
        Addr T = Res.Targets[0];
        if (R.contains(T))
          ScheduleLeader(T);
      }
      Indirect.emplace(A, std::move(Res));
      break;
    }
    default:
      unreachable("non-transfer handled above");
    }
  }
}

void CfgBuilder::formBlocks() {
  BasicBlock *Current = nullptr;
  Addr Expected = 0;
  for (Addr A : Visited) {
    const Instruction *I = instAt(A);
    assert(I && !isa<InvalidInst>(I) && "visited set holds instructions");
    if (!Current || A != Expected || Leaders.count(A)) {
      Current = Graph->newBlock(BlockKind::Normal, A);
      Leaders.insert(A); // every block start acts as a leader from here on
    }
    Graph->appendInst(Current, I, A);
    if (I->isControlTransfer()) {
      Current = nullptr; // block ends; the delay word is not part of it
      Expected = 0;
    } else {
      Expected = A + 4;
    }
  }
}

void CfgBuilder::connectBlock(BasicBlock *B) {
  assert(!B->empty() && "normal blocks hold at least one instruction");
  const CfgInst &LastInst = B->insts().back();
  const Instruction *I = LastInst.Inst;
  Addr A = LastInst.OrigAddr;

  if (!I->isControlTransfer()) {
    // Fallthrough into the next block, if control can continue.
    Addr Next = A + 4;
    if (BasicBlock *Dst = Graph->blockAt(Next))
      Graph->newEdge(B, Dst, EdgeKind::Fallthrough);
    return;
  }

  DelayBehavior Delay = I->delayBehavior();
  bool HasDelay = I->hasDelaySlot();
  Addr Past = A + (HasDelay ? 8 : 4);
  bool External = false;

  switch (I->kind()) {
  case InstKind::Branch: {
    Addr T = *I->directTarget(A);
    // Taken path: the delay instruction executes unless annul-always
    // (impossible for a conditional branch). Machines without delay slots
    // get a direct edge — no DelaySlot block exists anywhere in their CFGs.
    BasicBlock *TakenPred = B;
    if (HasDelay) {
      TakenPred = makeDelayBlock(A);
      Graph->newEdge(B, TakenPred, EdgeKind::Taken);
    }
    BasicBlock *TakenDst = destFor(TakenPred, T, External);
    Edge *TE = Graph->newEdge(TakenPred, TakenDst, EdgeKind::Taken);
    if (External) {
      TE->setUneditable();
      if (TakenPred != B)
        TakenPred->setUneditable();
    }
    // Not-taken path: duplicated delay instruction unless annulled (or the
    // machine has no delay slot). The fallthrough block is missing when
    // the next address lies outside the routine or decodes as data; such
    // control flow cannot be edited soundly.
    BasicBlock *FallDst = Graph->blockAt(Past);
    if (!FallDst) {
      if (!Graph->Unsupported) {
        Graph->Unsupported = true;
        Graph->UnsupportedReason = "branch fallthrough is not code";
      }
      return;
    }
    if (!HasDelay || Delay == DelayBehavior::AnnulUntaken) {
      Graph->newEdge(B, FallDst, EdgeKind::NotTaken);
    } else {
      BasicBlock *FallDelay = makeDelayBlock(A);
      Graph->newEdge(B, FallDelay, EdgeKind::NotTaken);
      Graph->newEdge(FallDelay, FallDst, EdgeKind::NotTaken);
    }
    return;
  }

  case InstKind::Jump: {
    Addr T = *I->directTarget(A);
    if (!HasDelay || Delay == DelayBehavior::AnnulAlways) {
      BasicBlock *Dst = destFor(B, T, External);
      Edge *E = Graph->newEdge(B, Dst, EdgeKind::UncondJump);
      if (External)
        E->setUneditable();
      return;
    }
    BasicBlock *DelayB = makeDelayBlock(A);
    Graph->newEdge(B, DelayB, EdgeKind::UncondJump);
    BasicBlock *Dst = destFor(DelayB, T, External);
    Edge *E = Graph->newEdge(DelayB, Dst, EdgeKind::UncondJump);
    if (External) {
      E->setUneditable();
      DelayB->setUneditable();
    }
    return;
  }

  case InstKind::Call:
  case InstKind::IndirectCall: {
    // call → delay (uneditable, §3.3) → surrogate → continuation. Without
    // a delay slot the call block feeds the surrogate directly.
    BasicBlock *Pred = B;
    if (HasDelay) {
      Pred = makeDelayBlock(A);
      Pred->setUneditable();
      Graph->newEdge(B, Pred, EdgeKind::CallFlow)->setUneditable();
    }
    BasicBlock *Surrogate = Graph->newBlock(BlockKind::CallSurrogate, A);
    Surrogate->setUneditable();
    if (I->kind() == InstKind::Call)
      Surrogate->CallTarget = I->directTarget(A);
    else
      Surrogate->CallIndirect = true;
    Graph->newEdge(Pred, Surrogate, EdgeKind::CallFlow)->setUneditable();
    if (BasicBlock *Cont = Graph->blockAt(Past))
      Graph->newEdge(Surrogate, Cont, EdgeKind::CallFlow)->setUneditable();
    if (I->kind() == InstKind::IndirectCall) {
      IndirectSite Site;
      Site.Block = B;
      Site.JumpAddr = A;
      Site.IsCall = true;
      Site.Resolution = Indirect.at(A);
      Graph->IndirectSites.push_back(std::move(Site));
    }
    return;
  }

  case InstKind::Return: {
    BasicBlock *Pred = B;
    if (HasDelay) {
      Pred = makeDelayBlock(A);
      Pred->setUneditable();
      Graph->newEdge(B, Pred, EdgeKind::ExitReturn)->setUneditable();
    }
    Graph->newEdge(Pred, Graph->Exit, EdgeKind::ExitReturn)->setUneditable();
    return;
  }

  case InstKind::IndirectJump: {
    IndirectSite Site;
    Site.Block = B;
    Site.JumpAddr = A;
    Site.Resolution = Indirect.at(A);
    // With a delay slot, every outgoing path runs through one shared delay
    // block; without one, the case/exit edges leave the jump block itself.
    BasicBlock *Pred = B;
    if (HasDelay) {
      Pred = makeDelayBlock(A);
      Pred->setUneditable();
    }
    switch (Site.Resolution.K) {
    case IndirectResolution::Kind::DispatchTable: {
      if (HasDelay)
        Graph->newEdge(B, Pred, EdgeKind::SwitchCase)->setUneditable();
      std::set<Addr> Seen;
      for (Addr T : Site.Resolution.Targets) {
        if (!Seen.insert(T).second)
          continue; // duplicate table entries share one CFG edge
        BasicBlock *Dst = Graph->blockAt(T);
        if (!Dst) {
          // A table entry pointing at data or a misaligned word; discovery
          // skipped it. Poison the routine — a jump there is garbage.
          Graph->ReachedInvalid = true;
          continue;
        }
        Graph->newEdge(Pred, Dst, EdgeKind::SwitchCase);
      }
      break;
    }
    case IndirectResolution::Kind::Literal: {
      if (HasDelay)
        Graph->newEdge(B, Pred, EdgeKind::UncondJump)->setUneditable();
      BasicBlock *Dst = destFor(Pred, Site.Resolution.Targets[0], External);
      Graph->newEdge(Pred, Dst, EdgeKind::UncondJump)->setUneditable();
      break;
    }
    case IndirectResolution::Kind::CellPointer:
    case IndirectResolution::Kind::Unanalyzable:
      Graph->Complete = false;
      if (HasDelay)
        Graph->newEdge(B, Pred, EdgeKind::ExitUnresolved)->setUneditable();
      Graph->newEdge(Pred, Graph->Exit, EdgeKind::ExitUnresolved)
          ->setUneditable();
      break;
    }
    Graph->IndirectSites.push_back(std::move(Site));
    return;
  }

  default:
    unreachable("unhandled control transfer kind");
  }
}

void CfgBuilder::connect() {
  Graph->Exit = Graph->newBlock(BlockKind::Exit, R.endAddr());
  Graph->Exit->setUneditable();

  // Snapshot: connectBlock appends delay/surrogate blocks while iterating.
  std::vector<BasicBlock *> Normals;
  for (BasicBlock *Block : Graph->Blocks)
    if (Block->kind() == BlockKind::Normal)
      Normals.push_back(Block);
  for (BasicBlock *B : Normals)
    connectBlock(B);

  // Entry pseudo blocks.
  for (Addr E : R.entryPoints()) {
    BasicBlock *EntryB = Graph->newBlock(BlockKind::Entry, E);
    EntryB->setUneditable();
    Graph->Entries.push_back(EntryB);
    if (BasicBlock *Body = Graph->blockAt(E))
      Graph->newEdge(EntryB, Body, EdgeKind::EntryEdge)->setUneditable();
    else
      Graph->ReachedInvalid = true; // entry lands on data
  }

  if (Graph->ReachedInvalid && !Graph->Unsupported) {
    Graph->Unsupported = true;
    Graph->UnsupportedReason = "reachable data (invalid instruction)";
  }
  if (Graph->Exotic && !Graph->Unsupported) {
    Graph->Unsupported = true;
    Graph->UnsupportedReason = "delayed transfer inside a delay slot";
  }
  if (Graph->Unsupported)
    Graph->Complete = false;
}

void CfgBuilder::coverRemainder() {
  // An unresolved indirect jump may target any address in the routine, so
  // every unreached word that decodes as an instruction is speculatively
  // treated as a potential block: it is then laid out and retargeted like
  // ordinary code, and the run-time translator can deliver control to it.
  for (Addr A = R.startAddr(); A + 4 <= R.endAddr(); A += 4) {
    if (Visited.count(A) || DelayConsumed.count(A))
      continue;
    const Instruction *I = instAt(A);
    if (!I || isa<InvalidInst>(I))
      continue;
    discover({A}, /*Speculative=*/true);
  }
}

std::unique_ptr<Cfg> CfgBuilder::build() {
  bumpStat("eel.cfg.built");
  discover(std::vector<Addr>(R.entryPoints().begin(), R.entryPoints().end()),
           /*Speculative=*/false);
  bool Unresolved = false;
  for (const auto &[A, Res] : Indirect)
    if (Res.K == IndirectResolution::Kind::CellPointer ||
        Res.K == IndirectResolution::Kind::Unanalyzable)
      Unresolved = true;
  if (Unresolved && !Graph->Unsupported)
    coverRemainder();
  formBlocks();
  connect();
  return std::move(Graph);
}

std::unique_ptr<Cfg> eel::buildCfg(Routine &R) {
  ScopedStatTimer Timer("time.cfg_build_us");
  EEL_TRACE_SCOPE("cfg_build", "routine", R.name());
  auto Start = std::chrono::steady_clock::now();
  CfgBuilder Builder(R);
  std::unique_ptr<Cfg> G = Builder.build();
  // Per-routine shape and latency distributions. The value-keyed ones
  // (blocks, insts) are deterministic across thread counts; the latency
  // one is wall-clock and therefore lives under time.*, exempting it.
  size_t Insts = 0;
  for (const auto &B : G->blocks())
    Insts += B->size();
  bumpHistogram("cfg.blocks_per_routine", G->blocks().size());
  bumpHistogram("cfg.insts_per_routine", Insts);
  bumpHistogram("time.cfg_build_routine_us",
                static_cast<uint64_t>(
                    std::chrono::duration_cast<std::chrono::microseconds>(
                        std::chrono::steady_clock::now() - Start)
                        .count()));
  return G;
}
