//===- core/Slice.h - Backward slicing for indirect jumps --------*- C++ -*-===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The §3.3 analysis that makes run-time translation "a rare occurrence":
/// a backward slice from an indirect jump's address registers, computed in
/// an architecture- and compiler-independent manner over the dataflow facts
/// instructions expose (Figure 4). The slice recognizes
///
///  * the dispatch-table idiom — a bounded, scaled load from a table of
///    code addresses (case statements);
///  * the literal idiom — a jump to a statically materialized address;
///  * the code-pointer-cell idiom — a load from one known memory cell
///    (function pointers), which the editor rewrites precisely;
///
/// and otherwise reports the jump unanalyzable, classifying the
/// frame-popping tail-call pattern behind the paper's Solaris/SunPro
/// unanalyzable jumps. On our SPEC92 stand-in suite that idiom accounts for
/// all 96 unanalyzable jumps bench_indirect measures (the bench asserts the
/// number; the paper's own count on real Solaris binaries was 138).
///
/// When eel-infer has proven code-pointer cells constant
/// (Executable::inferredCellValue), the slice folds loads from those cells
/// into constants — turning the cell-jump idiom into a Literal and a
/// table-base-through-memory idiom into a DispatchTable. Resolutions that
/// needed such facts carry IndirectResolution::Inferred.
///
//===----------------------------------------------------------------------===//

#ifndef EEL_CORE_SLICE_H
#define EEL_CORE_SLICE_H

#include "core/Cfg.h"

namespace eel {

class Executable;
class Routine;

/// Symbolic value of a register at a program point, produced by the
/// backward slice.
struct SymValue {
  enum class Kind : uint8_t {
    Unknown,
    Const,     ///< Statically known constant.
    Scaled,    ///< OrigReg << Shift (a scaled table index).
    TableAddr, ///< Base + (OrigReg << Shift) — a table-entry address
               ///  (MIPS-style codegen adds base and index explicitly).
    TableLoad, ///< Mem[Base + (OrigReg << Shift)].
    CellLoad,  ///< Mem[CellAddr] — a single known cell.
  };
  Kind K = Kind::Unknown;
  uint32_t Const = 0;
  unsigned OrigReg = 0;
  unsigned Shift = 0;
  Addr Base = 0;
  Addr CellAddr = 0;
};

/// Computes the value of \p Reg immediately before the instruction at
/// \p At, walking backwards within \p R (stopping conservatively at join
/// points and unmodelled definitions).
SymValue backwardSlice(Executable &Exec, Routine &R, Addr At, unsigned Reg);

/// Resolves the indirect transfer at \p JumpAddr (which must decode to an
/// IndirectInst) using backwardSlice plus table-bounds discovery.
IndirectResolution resolveIndirect(Executable &Exec, Routine &R,
                                   Addr JumpAddr);

/// The table-idiom evidence the slice gathered at one indirect jump,
/// exported as facts for eel-infer's rules rather than as a finished
/// resolution: the candidate base/stride of the scaled load feeding the
/// jump and the bounds-check result, before any table enumeration.
struct TableEvidence {
  bool HasTable = false;        ///< The jump target is a scaled table load.
  Addr Base = 0;                ///< Table base address.
  unsigned Shift = 0;           ///< Index scale (log2 of the stride).
  std::optional<unsigned> Bound; ///< Exclusive index bound, when checked.
  bool ViaConstantCell = false; ///< Base came through the cell oracle.
};
TableEvidence tableEvidence(Executable &Exec, Routine &R, Addr JumpAddr);

/// The statically known address written by the store at \p StoreAddr, if
/// the slice can prove one (sethi/or- or lui/ori-materialized bases, with
/// any constant index folded in). Used by eel-infer's cell-constancy rule
/// to show a store cannot alias a code-pointer cell. Returns nullopt for
/// unprovable addresses and for non-store instructions.
std::optional<Addr> storeTargetAddr(Executable &Exec, Routine &R,
                                    Addr StoreAddr);

} // namespace eel

#endif // EEL_CORE_SLICE_H
