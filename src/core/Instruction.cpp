//===- core/Instruction.cpp - Machine-independent instructions -------------===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//

#include "core/Instruction.h"

#include "support/Error.h"
#include "support/Stats.h"

using namespace eel;

Instruction::~Instruction() = default;

Instruction::Instruction(InstKind Kind, const TargetInfo &Target,
                         MachWord Word)
    : Kind(Kind), Word(Word), Target(Target) {
  // One decode pass gathers every per-word fact (backends override
  // decodeMeta with a single-classify implementation).
  TargetInfo::InstMeta Meta = Target.decodeMeta(Word);
  Reads = Meta.Reads;
  Writes = Meta.Writes;
  DelaySlot = Meta.HasDelaySlot;
  Delay = Meta.Delay;
  Conditional = Meta.Conditional;
}

namespace {

/// Shared factory skeleton: invokes Make<T>(args...) with the subclass
/// matching the word's category.
template <template <typename> class MakeT, typename Result, typename... Extra>
Result buildInstruction(const TargetInfo &Target, MachWord Word,
                        Extra &&...E) {
  bumpStat("eel.inst.allocated");
  switch (Target.classify(Word)) {
  case InstCategory::Invalid:
    return MakeT<InvalidInst>()(std::forward<Extra>(E)..., Target, Word);
  case InstCategory::Computation:
    return MakeT<ComputationInst>()(std::forward<Extra>(E)..., Target, Word);
  case InstCategory::Load:
    return MakeT<MemoryInst>()(std::forward<Extra>(E)..., InstKind::Load,
                               Target, Word);
  case InstCategory::Store:
    return MakeT<MemoryInst>()(std::forward<Extra>(E)..., InstKind::Store,
                               Target, Word);
  case InstCategory::LoadStore:
    return MakeT<MemoryInst>()(std::forward<Extra>(E)..., InstKind::LoadStore,
                               Target, Word);
  case InstCategory::BranchDirect:
    return MakeT<BranchInst>()(std::forward<Extra>(E)..., Target, Word);
  case InstCategory::JumpDirect:
    return MakeT<JumpInst>()(std::forward<Extra>(E)..., Target, Word);
  case InstCategory::CallDirect:
    return MakeT<CallInst>()(std::forward<Extra>(E)..., Target, Word);
  case InstCategory::System:
    return MakeT<SystemCallInst>()(std::forward<Extra>(E)..., Target, Word);
  case InstCategory::IndirectJump: {
    // Resolve the overloaded uses by convention (Figure 6 of the paper):
    // writing the link register makes it a call; jumping through the link
    // register at the conventional offset makes it a return.
    const TargetConventions &Conv = Target.conventions();
    IndirectTargetInfo Info = *Target.indirectTarget(Word);
    if (Info.LinkReg == Conv.LinkReg && Conv.LinkReg != 0)
      return MakeT<IndirectCallInst>()(std::forward<Extra>(E)..., Target,
                                       Word);
    if (Info.LinkReg == 0 && !Info.HasIndex && Info.BaseReg == Conv.LinkReg &&
        Info.Offset == Conv.ReturnOffset)
      return MakeT<ReturnInst>()(std::forward<Extra>(E)..., Target, Word);
    return MakeT<IndirectJumpInst>()(std::forward<Extra>(E)..., Target, Word);
  }
  }
  unreachable("unhandled instruction category");
}

template <typename T> struct MakeUnique {
  template <typename... Args>
  std::unique_ptr<Instruction> operator()(Args &&...A) {
    return std::make_unique<T>(std::forward<Args>(A)...);
  }
};

template <typename T> struct MakeInArena {
  template <typename... Args>
  Instruction *operator()(BumpArena &Arena, Args &&...A) {
    // Placement-new outside BumpArena::create: the virtual destructor
    // makes instructions formally non-trivially-destructible, but pool
    // instructions own nothing and are deliberately never destroyed.
    return new (Arena.allocate(sizeof(T), alignof(T)))
        T(std::forward<Args>(A)...);
  }
};

} // namespace

std::unique_ptr<Instruction> eel::makeInstruction(const TargetInfo &Target,
                                                  MachWord Word) {
  return buildInstruction<MakeUnique, std::unique_ptr<Instruction>>(Target,
                                                                    Word);
}

Instruction *eel::makeInstructionIn(BumpArena &Arena, const TargetInfo &Target,
                                    MachWord Word) {
  return buildInstruction<MakeInArena, Instruction *>(Target, Word, Arena);
}

const Instruction *InstructionPool::lookup(MachWord Word) {
  size_t ShardIdx = shardIndexFor(Word);
  ShardedBumpArena::Shard &S = Arenas.shard(ShardIdx);
  std::lock_guard<std::mutex> Lock(S.M);
  auto &Map = Maps[ShardIdx];
  auto It = Map.find(Word);
  if (It != Map.end())
    return It->second;
  // Constructed under the shard lock: exactly one Instruction per word.
  Instruction *Inst = makeInstructionIn(S.Arena, Target, Word);
  Inst->OpIdx = Ops.intern(Inst->reads().mask(), Inst->writes().mask());
  Map.emplace(Word, Inst);
  return Inst;
}

const Instruction *InstructionPool::get(MachWord Word) {
  Requested.fetch_add(1, std::memory_order_relaxed);
  bumpStat("eel.inst.requested");
  return lookup(Word);
}

void InstructionPool::attachDecodeIndex(Addr TextBase, size_t WordCount) {
  IndexBase = TextBase;
  IndexWords = WordCount;
  DecodeIndex =
      std::make_unique<std::atomic<const Instruction *>[]>(WordCount);
}

const Instruction *InstructionPool::getAt(Addr A, MachWord Word) {
  Requested.fetch_add(1, std::memory_order_relaxed);
  bumpStat("eel.inst.requested");
  if (DecodeIndex && !(A & 3) && A >= IndexBase) {
    size_t Slot = (A - IndexBase) / 4;
    if (Slot < IndexWords) {
      if (const Instruction *I =
              DecodeIndex[Slot].load(std::memory_order_acquire)) {
        assert(I->word() == Word && "decode index out of sync with image");
        return I;
      }
      const Instruction *I = lookup(Word);
      // Racing decoders of the same address publish the same pointer (the
      // flyweight invariant), so the store order is immaterial.
      DecodeIndex[Slot].store(I, std::memory_order_release);
      return I;
    }
  }
  return lookup(Word);
}

uint64_t InstructionPool::allocated() const {
  uint64_t Total = 0;
  for (size_t I = 0; I < ShardCount; ++I) {
    std::lock_guard<std::mutex> Lock(Arenas.shard(I).M);
    Total += Maps[I].size();
  }
  return Total;
}
