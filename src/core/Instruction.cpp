//===- core/Instruction.cpp - Machine-independent instructions -------------===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//

#include "core/Instruction.h"

#include "support/Error.h"
#include "support/Stats.h"

using namespace eel;

Instruction::~Instruction() = default;

Instruction::Instruction(InstKind Kind, const TargetInfo &Target,
                         MachWord Word)
    : Kind(Kind), Word(Word), Target(Target) {
  Reads = Target.reads(Word);
  Writes = Target.writes(Word);
  DelaySlot = Target.hasDelaySlot(Word);
  Delay = Target.delayBehavior(Word);
  Conditional = Target.isConditional(Word);
}

std::unique_ptr<Instruction> eel::makeInstruction(const TargetInfo &Target,
                                                  MachWord Word) {
  bumpStat("eel.inst.allocated");
  switch (Target.classify(Word)) {
  case InstCategory::Invalid:
    return std::make_unique<InvalidInst>(Target, Word);
  case InstCategory::Computation:
    return std::make_unique<ComputationInst>(Target, Word);
  case InstCategory::Load:
    return std::make_unique<MemoryInst>(InstKind::Load, Target, Word);
  case InstCategory::Store:
    return std::make_unique<MemoryInst>(InstKind::Store, Target, Word);
  case InstCategory::LoadStore:
    return std::make_unique<MemoryInst>(InstKind::LoadStore, Target, Word);
  case InstCategory::BranchDirect:
    return std::make_unique<BranchInst>(Target, Word);
  case InstCategory::JumpDirect:
    return std::make_unique<JumpInst>(Target, Word);
  case InstCategory::CallDirect:
    return std::make_unique<CallInst>(Target, Word);
  case InstCategory::System:
    return std::make_unique<SystemCallInst>(Target, Word);
  case InstCategory::IndirectJump: {
    // Resolve the overloaded uses by convention (Figure 6 of the paper):
    // writing the link register makes it a call; jumping through the link
    // register at the conventional offset makes it a return.
    const TargetConventions &Conv = Target.conventions();
    IndirectTargetInfo Info = *Target.indirectTarget(Word);
    if (Info.LinkReg == Conv.LinkReg && Conv.LinkReg != 0)
      return std::make_unique<IndirectCallInst>(Target, Word);
    if (Info.LinkReg == 0 && !Info.HasIndex && Info.BaseReg == Conv.LinkReg &&
        Info.Offset == Conv.ReturnOffset)
      return std::make_unique<ReturnInst>(Target, Word);
    return std::make_unique<IndirectJumpInst>(Target, Word);
  }
  }
  unreachable("unhandled instruction category");
}

const Instruction *InstructionPool::get(MachWord Word) {
  Requested.fetch_add(1, std::memory_order_relaxed);
  bumpStat("eel.inst.requested");
  Shard &S = shardFor(Word);
  std::lock_guard<std::mutex> Lock(S.M);
  auto It = S.Map.find(Word);
  if (It != S.Map.end())
    return It->second.get();
  // Constructed under the shard lock: exactly one Instruction per word.
  auto Inst = makeInstruction(Target, Word);
  const Instruction *Ptr = Inst.get();
  S.Map.emplace(Word, std::move(Inst));
  return Ptr;
}

uint64_t InstructionPool::allocated() const {
  uint64_t Total = 0;
  for (const Shard &S : Shards) {
    std::lock_guard<std::mutex> Lock(S.M);
    Total += S.Map.size();
  }
  return Total;
}
