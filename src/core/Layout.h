//===- core/Layout.h - Edited-routine production ------------------*- C++ -*-===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Producing an edited routine (§3.3.1): lay out blocks and snippets,
/// adjust displacements and addresses in control-transfer instructions, and
/// fold unedited delay-slot duplicates back into delay slots. Conditional
/// branches with edited paths are rewritten to branch to a stub holding the
/// path's code; dispatch-table entries are redirected to edited case blocks
/// or per-case stubs; unanalyzable indirect jumps become run-time
/// translation sequences.
///
/// A routine's layout is position-independent: every reference whose value
/// depends on final placement (inter-routine calls and jumps, internal
/// jumps on region-addressed targets, translator addresses, rewritten
/// address materializations) is recorded as a relocation that the writer
/// patches once all routines are placed.
///
//===----------------------------------------------------------------------===//

#ifndef EEL_CORE_LAYOUT_H
#define EEL_CORE_LAYOUT_H

#include "core/Executable.h"
#include "core/Snippet.h"
#include "support/Error.h"

#include <utility>
#include <vector>

namespace eel {

/// A placement-dependent patch within one routine's code.
struct Reloc {
  enum class Kind : uint8_t {
    CallTo,       ///< Direct call: retarget to editedAddr(OrigTarget).
    JumpTo,       ///< Direct branch/jump out: retarget to editedAddr(...).
    Internal,     ///< Transfer to DestWordIndex within this routine.
    AddrHi,       ///< %hi part of a materialized code address.
    AddrLo,       ///< %lo part of a materialized code address.
    TranslatorHi, ///< %hi of the run-time translator's entry.
    TranslatorLo, ///< %lo of the run-time translator's entry.
  };
  Kind K = Kind::Internal;
  unsigned WordIndex = 0;
  Addr OrigTarget = 0;       ///< CallTo/JumpTo/AddrHi/AddrLo.
  unsigned DestWordIndex = 0;///< Internal.
};

/// One rewritten dispatch-table entry: the new value is either the edited
/// address of an original target or a stub inside the routine.
struct TableEntryFix {
  Addr OrigTarget = 0;        ///< Used when StubWordIndex is unset.
  int StubWordIndex = -1;     ///< >= 0: entry points at this routine word.
};

struct TableFix {
  Addr TableAddr = 0;
  std::vector<TableEntryFix> Entries;
};

/// A constant code-pointer cell that feeds a Literal-resolved indirect
/// jump (eel-infer's cell facts). The writer rewrites the cell to the
/// target's edited address unconditionally — precise rewrites happen even
/// with the heuristic whole-segment pointer scan disabled.
struct CellFix {
  Addr Cell = 0;
  Addr Target = 0; ///< Original jump target; mapped through the addr map.
};

/// A snippet whose callback must run once final addresses are known.
struct PendingCallback {
  SnippetPtr Snippet;
  SnippetInstance Instance;
  unsigned WordIndex = 0; ///< Placement of Instance.Words within the code.
};

/// The machine-code rendering of one routine.
struct RoutineLayout {
  std::vector<MachWord> Code;
  std::vector<Reloc> Relocs;
  /// Original address → word index of its edited location (block starts
  /// point before any code inserted ahead of their first instruction).
  /// Sorted by original address with unique keys (first mapping wins);
  /// the layouter seals it before returning.
  std::vector<std::pair<Addr, unsigned>> AddrMap;
  std::vector<TableFix> TableFixes;
  std::vector<CellFix> CellFixes;
  std::vector<PendingCallback> Callbacks;
  bool Verbatim = false;
  bool NeedsTranslator = false;
  unsigned DelayFolded = 0;
  unsigned DelayMaterialized = 0;
  unsigned SnippetInstances = 0;
  unsigned SnippetSpills = 0;
  unsigned SnippetCCSaves = 0;
};

/// Lays out \p R, applying its CFG's accumulated edits. Fails when a
/// snippet cannot be instantiated or an edited routine is unsupported.
Expected<RoutineLayout> layoutRoutine(Routine &R);

} // namespace eel

#endif // EEL_CORE_LAYOUT_H
