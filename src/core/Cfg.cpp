//===- core/Cfg.cpp - Control-flow graphs -----------------------------------===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//

#include "core/Cfg.h"

#include "core/Routine.h"
#include "support/Stats.h"

using namespace eel;

Cfg::Cfg(Routine &Parent, const TargetInfo &Target)
    : Parent(Parent), Target(Target) {}

Cfg::~Cfg() = default;

BasicBlock *Cfg::newBlock(BlockKind Kind, Addr Anchor) {
  bumpStat("eel.cfg.blocks");
  auto Block = std::make_unique<BasicBlock>(
      static_cast<unsigned>(Blocks.size()), Kind, Anchor);
  BasicBlock *Ptr = Block.get();
  Blocks.push_back(std::move(Block));
  if (Kind == BlockKind::Normal)
    ByAddr[Anchor] = Ptr;
  return Ptr;
}

Edge *Cfg::newEdge(BasicBlock *Src, BasicBlock *Dst, EdgeKind Kind) {
  bumpStat("eel.cfg.edges");
  auto E = std::make_unique<Edge>(static_cast<unsigned>(Edges.size()), Src,
                                  Dst, Kind);
  E->Parent = this;
  Edge *Ptr = E.get();
  Edges.push_back(std::move(E));
  Src->SuccEdges.push_back(Ptr);
  Dst->PredEdges.push_back(Ptr);
  return Ptr;
}

BasicBlock *Cfg::blockAt(Addr A) const {
  auto It = ByAddr.find(A);
  return It == ByAddr.end() ? nullptr : It->second;
}

void Edge::addCodeAlong(SnippetPtr Snippet) {
  assert(Parent && "edge not attached to a graph");
  Parent->addCodeOnEdge(this, std::move(Snippet));
}

void Cfg::addCodeBefore(BasicBlock *Block, unsigned InstIndex,
                        SnippetPtr Snippet) {
  assert(Block->editable() && "block is not editable");
  assert(InstIndex < Block->size() && "instruction index out of range");
  Edit E;
  E.K = Edit::Kind::Before;
  E.Block = Block;
  E.InstIndex = InstIndex;
  E.Snippet = std::move(Snippet);
  E.Seq = NextSeq++;
  Edits.push_back(std::move(E));
}

void Cfg::addCodeAfter(BasicBlock *Block, unsigned InstIndex,
                       SnippetPtr Snippet) {
  assert(Block->editable() && "block is not editable");
  assert(InstIndex < Block->size() && "instruction index out of range");
  assert(!(InstIndex + 1 == Block->size() && Block->terminator()) &&
         "cannot add code after a control transfer; use an edge instead");
  Edit E;
  E.K = Edit::Kind::After;
  E.Block = Block;
  E.InstIndex = InstIndex;
  E.Snippet = std::move(Snippet);
  E.Seq = NextSeq++;
  Edits.push_back(std::move(E));
}

void Cfg::addCodeOnEdge(Edge *EdgePtr, SnippetPtr Snippet) {
  assert(EdgePtr->editable() && "edge is not editable");
  Edit E;
  E.K = Edit::Kind::OnEdge;
  E.E = EdgePtr;
  E.Snippet = std::move(Snippet);
  E.Seq = NextSeq++;
  Edits.push_back(std::move(E));
}

void Cfg::replaceInst(BasicBlock *Block, unsigned InstIndex,
                      MachWord NewWord) {
  assert(Block->editable() && "block is not editable");
  assert(InstIndex < Block->size() && "instruction index out of range");
  const CfgInst &Old = Block->insts()[InstIndex];
  assert(Target.classify(NewWord) != InstCategory::Invalid &&
         "replacement must be a valid instruction");
  if (Old.Inst->isControlTransfer()) {
    // A transfer may only be replaced by one with identical control
    // structure: same category, conditionality, delay behaviour, and
    // static target (register renamings of compare-and-branch forms).
    assert(Target.classify(NewWord) == Target.classify(Old.Inst->word()) &&
           Target.isConditional(NewWord) ==
               Target.isConditional(Old.Inst->word()) &&
           Target.delayBehavior(NewWord) == Old.Inst->delayBehavior() &&
           Target.directTarget(NewWord, Old.OrigAddr) ==
               Old.Inst->directTarget(Old.OrigAddr) &&
           "replacement transfer changes control flow");
    assert(Old.Inst->kind() != InstKind::IndirectJump &&
           Old.Inst->kind() != InstKind::IndirectCall &&
           Old.Inst->kind() != InstKind::Return &&
           "indirect transfers cannot be replaced");
  } else {
    assert(!Target.hasDelaySlot(NewWord) &&
           "a non-transfer cannot become a transfer");
  }
  Edit E;
  E.K = Edit::Kind::Replace;
  E.Block = Block;
  E.InstIndex = InstIndex;
  E.NewWord = NewWord;
  E.Seq = NextSeq++;
  Edits.push_back(std::move(E));
}

void Cfg::deleteInst(BasicBlock *Block, unsigned InstIndex) {
  assert(Block->editable() && "block is not editable");
  assert(InstIndex < Block->size() && "instruction index out of range");
  assert(!Block->insts()[InstIndex].Inst->isControlTransfer() &&
         "control transfers cannot be deleted");
  Edit E;
  E.K = Edit::Kind::Delete;
  E.Block = Block;
  E.InstIndex = InstIndex;
  E.Seq = NextSeq++;
  Edits.push_back(std::move(E));
}

Cfg::Stats Cfg::stats() const {
  Stats S;
  for (const auto &Block : Blocks) {
    switch (Block->kind()) {
    case BlockKind::Normal:
      ++S.NormalBlocks;
      break;
    case BlockKind::DelaySlot:
      ++S.DelaySlotBlocks;
      break;
    case BlockKind::CallSurrogate:
      ++S.CallSurrogateBlocks;
      break;
    case BlockKind::Entry:
    case BlockKind::Exit:
      ++S.EntryExitBlocks;
      break;
    }
    if (!Block->editable())
      ++S.UneditableBlocks;
  }
  for (const auto &E : Edges) {
    ++S.TotalEdges;
    if (!E->editable())
      ++S.UneditableEdges;
  }
  return S;
}
