//===- core/Cfg.cpp - Control-flow graphs -----------------------------------===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//

#include "core/Cfg.h"

#include "core/Executable.h"
#include "core/Routine.h"
#include "support/Stats.h"

#include <algorithm>

using namespace eel;

// Blocks and edges are bump-allocated and never destroyed; the arena
// reclaims their storage when the graph dies.
static_assert(std::is_trivially_destructible_v<BasicBlock>,
              "BasicBlock must stay trivially destructible (arena-placed)");
static_assert(std::is_trivially_destructible_v<Edge>,
              "Edge must stay trivially destructible (arena-placed)");

Cfg::Cfg(Routine &ParentRoutine, const TargetInfo &Target)
    : Parent(ParentRoutine), Target(Target),
      OpsTable(&ParentRoutine.executable().pool().operands()) {}

Cfg::~Cfg() = default;

BasicBlock *Cfg::newBlock(BlockKind Kind, Addr Anchor) {
  bumpStat("eel.cfg.blocks");
  BasicBlock *Ptr = IR.create<BasicBlock>(
      *this, static_cast<unsigned>(Blocks.size()), Kind, Anchor);
  Blocks.push_back(Ptr);
  if (Kind == BlockKind::Normal)
    ByAddr[Anchor] = Ptr;
  return Ptr;
}

Edge *Cfg::newEdge(BasicBlock *Src, BasicBlock *Dst, EdgeKind Kind) {
  bumpStat("eel.cfg.edges");
  Edge *Ptr =
      IR.create<Edge>(static_cast<unsigned>(Edges.size()), Src, Dst, Kind);
  Ptr->Parent = this;
  Edges.push_back(Ptr);
  Src->addSucc(Ptr, IR);
  Dst->addPred(Ptr, IR);
  return Ptr;
}

void Cfg::appendInst(BasicBlock *Block, const Instruction *I, Addr OrigAddr) {
  if (Block->NumRows == 0)
    Block->FirstRow = static_cast<InstrIdx>(Rows.size());
  assert(Block->FirstRow + Block->NumRows == Rows.size() &&
         "blocks must be filled in creation order to keep rows contiguous");
  Rows.push_back({I, OrigAddr});
  RowOps.push_back(I->opIndex());
  ++Block->NumRows;
}

void BasicBlock::addSucc(Edge *E, BumpArena &Arena) {
  if (SuccCount == SuccCap) {
    uint32_t NewCap = SuccCap ? SuccCap * 2 : 2;
    Edge **NewArr = Arena.allocateArray<Edge *>(NewCap);
    std::copy(SuccArr, SuccArr + SuccCount, NewArr);
    SuccArr = NewArr;
    SuccCap = NewCap;
  }
  SuccArr[SuccCount++] = E;
}

void BasicBlock::addPred(Edge *E, BumpArena &Arena) {
  if (PredCount == PredCap) {
    uint32_t NewCap = PredCap ? PredCap * 2 : 2;
    Edge **NewArr = Arena.allocateArray<Edge *>(NewCap);
    std::copy(PredArr, PredArr + PredCount, NewArr);
    PredArr = NewArr;
    PredCap = NewCap;
  }
  PredArr[PredCount++] = E;
}

void BasicBlock::removePred(Edge *E) {
  Edge **End = PredArr + PredCount;
  Edge **It = std::find(PredArr, End, E);
  assert(It != End && "edge not in predecessor list");
  std::copy(It + 1, End, It);
  --PredCount;
}

BasicBlock *Cfg::blockAt(Addr A) const {
  auto It = ByAddr.find(A);
  return It == ByAddr.end() ? nullptr : It->second;
}

void Edge::addCodeAlong(SnippetPtr Snippet) {
  assert(Parent && "edge not attached to a graph");
  Parent->addCodeOnEdge(this, std::move(Snippet));
}

void Cfg::addCodeBefore(BasicBlock *Block, unsigned InstIndex,
                        SnippetPtr Snippet) {
  assert(Block->editable() && "block is not editable");
  assert(InstIndex < Block->size() && "instruction index out of range");
  Edit E;
  E.K = Edit::Kind::Before;
  E.Block = Block;
  E.InstIndex = InstIndex;
  E.Snippet = std::move(Snippet);
  E.Seq = NextSeq++;
  Edits.push_back(std::move(E));
}

void Cfg::addCodeAfter(BasicBlock *Block, unsigned InstIndex,
                       SnippetPtr Snippet) {
  assert(Block->editable() && "block is not editable");
  assert(InstIndex < Block->size() && "instruction index out of range");
  assert(!(InstIndex + 1 == Block->size() && Block->terminator()) &&
         "cannot add code after a control transfer; use an edge instead");
  Edit E;
  E.K = Edit::Kind::After;
  E.Block = Block;
  E.InstIndex = InstIndex;
  E.Snippet = std::move(Snippet);
  E.Seq = NextSeq++;
  Edits.push_back(std::move(E));
}

void Cfg::addCodeOnEdge(Edge *EdgePtr, SnippetPtr Snippet) {
  assert(EdgePtr->editable() && "edge is not editable");
  Edit E;
  E.K = Edit::Kind::OnEdge;
  E.E = EdgePtr;
  E.Snippet = std::move(Snippet);
  E.Seq = NextSeq++;
  Edits.push_back(std::move(E));
}

void Cfg::replaceInst(BasicBlock *Block, unsigned InstIndex,
                      MachWord NewWord) {
  assert(Block->editable() && "block is not editable");
  assert(InstIndex < Block->size() && "instruction index out of range");
  const CfgInst &Old = Block->insts()[InstIndex];
  assert(Target.classify(NewWord) != InstCategory::Invalid &&
         "replacement must be a valid instruction");
  if (Old.Inst->isControlTransfer()) {
    // A transfer may only be replaced by one with identical control
    // structure: same category, conditionality, delay behaviour, and
    // static target (register renamings of compare-and-branch forms).
    assert(Target.classify(NewWord) == Target.classify(Old.Inst->word()) &&
           Target.isConditional(NewWord) ==
               Target.isConditional(Old.Inst->word()) &&
           Target.delayBehavior(NewWord) == Old.Inst->delayBehavior() &&
           Target.directTarget(NewWord, Old.OrigAddr) ==
               Old.Inst->directTarget(Old.OrigAddr) &&
           "replacement transfer changes control flow");
    assert(Old.Inst->kind() != InstKind::IndirectJump &&
           Old.Inst->kind() != InstKind::IndirectCall &&
           Old.Inst->kind() != InstKind::Return &&
           "indirect transfers cannot be replaced");
  } else {
    assert(!Target.hasDelaySlot(NewWord) &&
           "a non-transfer cannot become a transfer");
  }
  Edit E;
  E.K = Edit::Kind::Replace;
  E.Block = Block;
  E.InstIndex = InstIndex;
  E.NewWord = NewWord;
  E.Seq = NextSeq++;
  Edits.push_back(std::move(E));
}

void Cfg::deleteInst(BasicBlock *Block, unsigned InstIndex) {
  assert(Block->editable() && "block is not editable");
  assert(InstIndex < Block->size() && "instruction index out of range");
  assert(!Block->insts()[InstIndex].Inst->isControlTransfer() &&
         "control transfers cannot be deleted");
  Edit E;
  E.K = Edit::Kind::Delete;
  E.Block = Block;
  E.InstIndex = InstIndex;
  E.Seq = NextSeq++;
  Edits.push_back(std::move(E));
}

Cfg::Stats Cfg::stats() const {
  Stats S;
  for (const auto &Block : Blocks) {
    switch (Block->kind()) {
    case BlockKind::Normal:
      ++S.NormalBlocks;
      break;
    case BlockKind::DelaySlot:
      ++S.DelaySlotBlocks;
      break;
    case BlockKind::CallSurrogate:
      ++S.CallSurrogateBlocks;
      break;
    case BlockKind::Entry:
    case BlockKind::Exit:
      ++S.EntryExitBlocks;
      break;
    }
    if (!Block->editable())
      ++S.UneditableBlocks;
  }
  for (const auto &E : Edges) {
    ++S.TotalEdges;
    if (!E->editable())
      ++S.UneditableEdges;
  }
  return S;
}
