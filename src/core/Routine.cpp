//===- core/Routine.cpp - Routines -------------------------------------------===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//

#include "core/Routine.h"

#include <algorithm>

using namespace eel;

void Routine::addEntryPoint(Addr A) {
  assert(contains(A) && "entry point outside routine extent");
  if (std::find(Entries.begin(), Entries.end(), A) != Entries.end())
    return;
  Entries.push_back(A);
  std::sort(Entries.begin(), Entries.end());
}

Cfg *Routine::controlFlowGraph() {
  if (!Graph)
    Graph = buildCfg(*this);
  return Graph.get();
}

void Routine::deleteControlFlowGraph() { Graph.reset(); }
