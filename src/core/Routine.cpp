//===- core/Routine.cpp - Routines -------------------------------------------===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//

#include "core/Routine.h"

#include "core/Liveness.h"

#include <algorithm>

using namespace eel;

Routine::Routine(Executable &Parent, std::string Name, Addr Lo, Addr Hi)
    : Parent(Parent), Name(std::move(Name)), Lo(Lo), Hi(Hi) {
  Entries.push_back(Lo);
}

Routine::~Routine() = default;

void Routine::addEntryPoint(Addr A) {
  assert(contains(A) && "entry point outside routine extent");
  if (std::find(Entries.begin(), Entries.end(), A) != Entries.end())
    return;
  Entries.push_back(A);
  std::sort(Entries.begin(), Entries.end());
}

Cfg *Routine::controlFlowGraph() {
  if (!Graph)
    Graph = buildCfg(*this);
  return Graph.get();
}

Liveness *Routine::liveness() {
  if (!Live)
    Live = std::make_unique<Liveness>(*controlFlowGraph());
  return Live.get();
}

void Routine::deleteControlFlowGraph() {
  Live.reset(); // refers into the graph; must go first
  Graph.reset();
}
