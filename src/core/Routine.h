//===- core/Routine.h - Routines ---------------------------------*- C++ -*-===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Routines (§3.2): named entities in the text segment that hold
/// instructions and data. A routine records what symbol-table refinement
/// learned about it (extent, entry points, whether it was hidden or is
/// really a data table) and provides the interface to EEL's control-flow
/// analysis and editing facility through its CFG.
///
//===----------------------------------------------------------------------===//

#ifndef EEL_CORE_ROUTINE_H
#define EEL_CORE_ROUTINE_H

#include "core/Cfg.h"

#include <memory>
#include <string>
#include <vector>

namespace eel {

class Executable;
class Liveness;

class Routine {
public:
  // Both out-of-line: the Liveness member is incomplete here.
  Routine(Executable &Parent, std::string Name, Addr Lo, Addr Hi);
  ~Routine();

  Executable &executable() const { return Parent; }
  const std::string &name() const { return Name; }

  /// Extent [startAddr, endAddr) in the text segment.
  Addr startAddr() const { return Lo; }
  Addr endAddr() const { return Hi; }
  uint32_t sizeBytes() const { return Hi - Lo; }
  bool contains(Addr A) const { return A >= Lo && A < Hi; }

  /// Entry points, in increasing address order; the first is startAddr().
  const std::vector<Addr> &entryPoints() const { return Entries; }
  void addEntryPoint(Addr A);

  /// True if the routine was discovered by analysis rather than named by a
  /// symbol (a "hidden routine", §3.1).
  bool hidden() const { return Hidden; }

  /// True if analysis concluded the extent holds data, not code (a data
  /// table carrying a routine-like symbol, §3.1).
  bool isData() const { return IsData; }

  /// Builds (or returns the cached) control-flow graph.
  Cfg *controlFlowGraph();

  /// Builds (or returns the cached) live-register analysis over the CFG.
  /// Sound to cache across edits: edits accumulate separately and do not
  /// change the graph's blocks or edges until layout applies them.
  Liveness *liveness();

  /// Discards the CFG, its liveness, and any accumulated edits (the
  /// paper's delete_control_flow_graph, used to bound memory while
  /// iterating).
  void deleteControlFlowGraph();

  /// Whether a CFG has been built and edited (queried by the editor).
  Cfg *cachedCfg() const { return Graph.get(); }

private:
  friend class Executable;

  Executable &Parent;
  std::string Name;
  Addr Lo, Hi;
  std::vector<Addr> Entries;
  bool Hidden = false;
  bool IsData = false;
  std::unique_ptr<Cfg> Graph;
  std::unique_ptr<Liveness> Live;
};

} // namespace eel

#endif // EEL_CORE_ROUTINE_H
