//===- core/Dominators.h - Dominator analysis --------------------*- C++ -*-===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dominator computation over a routine's CFG (one of the standard analyses
/// §3.3 lists: "dominators, natural loops, live registers, and slicing").
/// Uses the Cooper–Harvey–Kennedy iterative algorithm over a reverse
/// postorder, with a virtual root above the routine's entry blocks so
/// multiple entry points are handled uniformly.
///
//===----------------------------------------------------------------------===//

#ifndef EEL_CORE_DOMINATORS_H
#define EEL_CORE_DOMINATORS_H

#include "core/Cfg.h"

#include <vector>

namespace eel {

class Dominators {
public:
  explicit Dominators(const Cfg &G);

  /// Immediate dominator of \p B, or null for entry blocks (whose idom is
  /// the virtual root) and unreachable blocks.
  const BasicBlock *idom(const BasicBlock *B) const;

  /// True if \p A dominates \p B (reflexive).
  bool dominates(const BasicBlock *A, const BasicBlock *B) const;

  bool reachable(const BasicBlock *B) const {
    return RpoIndex[B->id()] >= 0;
  }

private:
  const Cfg &Graph;
  std::vector<int> IdomIndex;     ///< By block id; -1 = virtual root/none.
  std::vector<int> RpoIndex;      ///< By block id; -1 = unreachable.
  std::vector<const BasicBlock *> RpoOrder;
};

/// A natural loop: header plus member blocks.
struct NaturalLoop {
  const BasicBlock *Header = nullptr;
  std::vector<const BasicBlock *> Blocks;
};

/// Finds the natural loops of \p G using \p Doms (back edges whose target
/// dominates their source).
std::vector<NaturalLoop> findNaturalLoops(const Cfg &G,
                                          const Dominators &Doms);

} // namespace eel

#endif // EEL_CORE_DOMINATORS_H
