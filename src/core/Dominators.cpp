//===- core/Dominators.cpp - Dominator analysis -------------------------------===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//

#include "core/Dominators.h"

#include <algorithm>
#include <set>

using namespace eel;

Dominators::Dominators(const Cfg &G) : Graph(G) {
  size_t N = G.blocks().size();
  IdomIndex.assign(N, -1);
  RpoIndex.assign(N, -1);

  // Depth-first postorder from the entry blocks.
  std::vector<const BasicBlock *> Postorder;
  std::vector<char> Visited(N, 0);
  // Iterative DFS with an explicit stack of (block, next-successor).
  std::vector<std::pair<const BasicBlock *, size_t>> Stack;
  for (const BasicBlock *EntryB : G.entryBlocks()) {
    if (Visited[EntryB->id()])
      continue;
    Visited[EntryB->id()] = 1;
    Stack.push_back({EntryB, 0});
    while (!Stack.empty()) {
      auto &[B, NextSucc] = Stack.back();
      if (NextSucc < B->succ().size()) {
        const BasicBlock *Dst = B->succ()[NextSucc++]->dst();
        if (!Visited[Dst->id()]) {
          Visited[Dst->id()] = 1;
          Stack.push_back({Dst, 0});
        }
        continue;
      }
      Postorder.push_back(B);
      Stack.pop_back();
    }
  }
  RpoOrder.assign(Postorder.rbegin(), Postorder.rend());
  for (size_t I = 0; I < RpoOrder.size(); ++I)
    RpoIndex[RpoOrder[I]->id()] = static_cast<int>(I);

  // Cooper–Harvey–Kennedy. Idom indices refer to RPO positions; -2 is
  // "undefined", -1 is the virtual root above all entry blocks.
  std::vector<int> Idom(RpoOrder.size(), -2);
  std::set<unsigned> EntryIds;
  for (const BasicBlock *EntryB : G.entryBlocks()) {
    EntryIds.insert(EntryB->id());
    Idom[RpoIndex[EntryB->id()]] = -1;
  }

  auto Intersect = [&](int A, int B) {
    // Walk both up until they meet; -1 (virtual root) absorbs everything.
    while (A != B) {
      if (A == -1 || B == -1)
        return -1;
      while (A > B) {
        A = Idom[A];
        if (A == -1)
          return -1;
      }
      while (B > A) {
        B = Idom[B];
        if (B == -1)
          return -1;
      }
    }
    return A;
  };

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (size_t I = 0; I < RpoOrder.size(); ++I) {
      const BasicBlock *B = RpoOrder[I];
      if (EntryIds.count(B->id()))
        continue;
      int NewIdom = -2;
      for (const Edge *E : B->pred()) {
        int PredRpo = RpoIndex[E->src()->id()];
        if (PredRpo < 0 || Idom[PredRpo] == -2)
          continue; // unreachable or not yet processed
        NewIdom = NewIdom == -2 ? PredRpo : Intersect(NewIdom, PredRpo);
      }
      if (NewIdom != -2 && Idom[I] != NewIdom) {
        Idom[I] = NewIdom;
        Changed = true;
      }
    }
  }

  for (size_t I = 0; I < RpoOrder.size(); ++I) {
    int D = Idom[I];
    IdomIndex[RpoOrder[I]->id()] =
        D >= 0 ? static_cast<int>(RpoOrder[D]->id()) : -1;
  }
}

const BasicBlock *Dominators::idom(const BasicBlock *B) const {
  int Index = IdomIndex[B->id()];
  return Index < 0 ? nullptr : Graph.blocks()[Index];
}

bool Dominators::dominates(const BasicBlock *A, const BasicBlock *B) const {
  if (!reachable(A) || !reachable(B))
    return false;
  const BasicBlock *Cursor = B;
  while (Cursor) {
    if (Cursor == A)
      return true;
    Cursor = idom(Cursor);
  }
  return false;
}

std::vector<NaturalLoop> eel::findNaturalLoops(const Cfg &G,
                                               const Dominators &Doms) {
  std::vector<NaturalLoop> Loops;
  for (const auto &E : G.edges()) {
    const BasicBlock *Src = E->src();
    const BasicBlock *Header = E->dst();
    if (!Doms.reachable(Src) || !Doms.dominates(Header, Src))
      continue;
    // Back edge: collect the natural loop by walking predecessors from the
    // latch until the header.
    NaturalLoop Loop;
    Loop.Header = Header;
    std::set<const BasicBlock *> Members{Header};
    std::vector<const BasicBlock *> Work{Src};
    while (!Work.empty()) {
      const BasicBlock *B = Work.back();
      Work.pop_back();
      if (!Members.insert(B).second)
        continue;
      for (const Edge *PredE : B->pred())
        if (Doms.reachable(PredE->src()))
          Work.push_back(PredE->src());
    }
    Loop.Blocks.assign(Members.begin(), Members.end());
    std::sort(Loop.Blocks.begin(), Loop.Blocks.end(),
              [](const BasicBlock *A, const BasicBlock *B) {
                return A->id() < B->id();
              });
    Loops.push_back(std::move(Loop));
  }
  return Loops;
}
