//===- core/Layout.cpp - Edited-routine production ------------------------------===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//

#include "core/Layout.h"

#include "asmkit/TargetAsm.h"
#include "core/Liveness.h"
#include "core/RegAlloc.h"
#include "core/Routine.h"
#include "core/Translate.h"
#include "support/Metrics.h"
#include "support/Stats.h"
#include "support/Trace.h"

#include <algorithm>
#include <climits>
#include <map>

using namespace eel;

namespace {

/// Edits grouped per instruction of one block.
struct InstEditList {
  std::vector<const Edit *> Before;
  std::vector<const Edit *> After;
  bool Deleted = false;
  bool Replaced = false;
  MachWord Replacement = 0;
};

/// Lays out one routine.
class RoutineLayouter {
public:
  explicit RoutineLayouter(Routine &R)
      : R(R), Exec(R.executable()), Target(Exec.target()),
        ExtentBase(R.startAddr()),
        Mapped((R.endAddr() - R.startAddr()) / 4, false) {}

  Expected<RoutineLayout> run();

private:
  unsigned here() const { return static_cast<unsigned>(Out.Code.size()); }
  void emitWord(MachWord W) { Out.Code.push_back(W); }

  /// Records A → here() with first-mapping-wins semantics. A word-indexed
  /// bitmask over the routine extent both suppresses duplicate entries and
  /// answers the O(1) membership queries the remainder loop in run() needs;
  /// the map itself is a flat vector sealed (sorted) before return.
  void mapAddr(Addr A) {
    if (A >= ExtentBase && A < ExtentBase + 4 * Mapped.size()) {
      std::vector<bool>::reference Bit = Mapped[(A - ExtentBase) / 4];
      if (Bit)
        return;
      Bit = true;
    }
    Out.AddrMap.emplace_back(A, here());
  }
  bool addrMapped(Addr A) const {
    return A >= ExtentBase && A < ExtentBase + 4 * Mapped.size() &&
           Mapped[(A - ExtentBase) / 4];
  }
  /// Sorts the flat address map by original address, keeping the first
  /// mapping of any key that slipped past the extent bitmask (exactly
  /// std::map::emplace's first-wins semantics).
  void sealAddrMap() {
    std::stable_sort(
        Out.AddrMap.begin(), Out.AddrMap.end(),
        [](const auto &L, const auto &R) { return L.first < R.first; });
    Out.AddrMap.erase(std::unique(Out.AddrMap.begin(), Out.AddrMap.end(),
                                  [](const auto &L, const auto &R) {
                                    return L.first == R.first;
                                  }),
                      Out.AddrMap.end());
  }

  MachWord origWordAt(Addr A) const {
    std::optional<MachWord> W = Exec.fetchWord(A);
    assert(W && "instruction address outside image");
    return *W;
  }

  // --- Edit bookkeeping ------------------------------------------------------

  void gatherEdits();
  const InstEditList *editsFor(const BasicBlock *B, unsigned InstIndex) const;
  const std::vector<const Edit *> *editsFor(const Edge *E) const;
  bool edgeHasCode(const Edge *E) const {
    const auto *List = editsFor(E);
    return List && !List->empty();
  }
  bool blockHasEdits(const BasicBlock *B) const {
    return BlockEdits.count(B) != 0;
  }

  // --- Emission helpers --------------------------------------------------------

  Expected<bool> emitSnippet(const Edit &E, const RegSet &LiveSet);
  Expected<bool> emitEdgeCode(const Edge *E);
  Expected<bool> emitDelayBlockInline(const BasicBlock *DB);
  /// Emits edge1 code, the delay block (with edits), then edge2 code.
  Expected<bool> emitPath(const Edge *E1, const BasicBlock *DB,
                          const Edge *E2);
  bool pathHasCode(const Edge *E1, const BasicBlock *DB,
                   const Edge *E2) const;

  /// Emits a placeholder unconditional jump and records where it must go.
  void emitJumpTo(const BasicBlock *DestBlock, Addr ExternalDest);

  /// Records that the direct-transfer word at \p WordIndex targets an
  /// internal block / external address.
  void retargetTo(unsigned WordIndex, const BasicBlock *DestBlock,
                  Addr ExternalDest);

  /// Address-materialization peephole: called after emitting an original
  /// instruction.
  void noteMaterialization(const Instruction *I, unsigned WordIndex);

  // --- Terminator lowering -------------------------------------------------------

  Expected<bool> emitBlock(const BasicBlock *B);
  Expected<bool> lowerTerminator(const BasicBlock *B, unsigned InstIndex);
  Expected<bool> lowerBranch(const BasicBlock *B, const CfgInst &Term);
  Expected<bool> lowerJump(const BasicBlock *B, const CfgInst &Term);
  Expected<bool> lowerCall(const BasicBlock *B, const CfgInst &Term);
  Expected<bool> lowerReturn(const BasicBlock *B, const CfgInst &Term);
  Expected<bool> lowerIndirect(const BasicBlock *B, const CfgInst &Term);

  Expected<bool> emitStubs();
  Expected<bool> runVerbatim();
  MachWord terminatorWord(const BasicBlock *B, const CfgInst &Term) const;

  /// Finds the single successor edge of \p B with kind \p K, or null.
  static const Edge *edgeOfKind(const BasicBlock *B, EdgeKind K) {
    for (const Edge *E : B->succ())
      if (E->kind() == K)
        return E;
    return nullptr;
  }

  /// The external target recorded for an edge into the exit block.
  Addr externalTargetOf(const BasicBlock *From) const {
    for (const auto &[Block, TargetAddr] : Graph->interJumps())
      if (Block == From)
        return TargetAddr;
    unreachable("no external target recorded for block");
  }

  Routine &R;
  Executable &Exec;
  const TargetInfo &Target;
  Cfg *Graph = nullptr;
  Liveness *Live = nullptr; ///< Owned (and cached) by the routine.
  RoutineLayout Out;

  std::map<const BasicBlock *, std::vector<InstEditList>> BlockEdits;
  std::map<const Edge *, std::vector<const Edit *>> EdgeEdits;

  /// Stub requests, emitted after all blocks.
  struct StubRequest {
    const Edge *E1 = nullptr;
    const BasicBlock *DB = nullptr;
    const Edge *E2 = nullptr;
    const BasicBlock *DestBlock = nullptr;
    Addr ExternalDest = 0;
    unsigned BranchWordIndex = UINT_MAX; ///< Word to retarget at the stub.
    /// Dispatch-table slots to point at this stub.
    std::vector<std::pair<size_t, size_t>> TableSlots;
  };
  std::vector<StubRequest> Stubs;

  /// Internal transfer patches: word -> block (resolved to word indices
  /// once block offsets are final).
  struct PendingInternal {
    unsigned WordIndex;
    const BasicBlock *DestBlock;
  };
  std::vector<PendingInternal> Internals;
  std::map<const BasicBlock *, unsigned> BlockOffset;

  /// One bit per word of the routine extent: whether its address has been
  /// mapped already (mapAddr dedup + remainder-loop membership).
  Addr ExtentBase = 0;
  std::vector<bool> Mapped;
};

} // namespace

void RoutineLayouter::gatherEdits() {
  for (const Edit &E : Graph->edits()) {
    switch (E.K) {
    case Edit::Kind::OnEdge:
      EdgeEdits[E.E].push_back(&E);
      break;
    default: {
      std::vector<InstEditList> &Lists = BlockEdits[E.Block];
      if (Lists.size() < E.Block->size())
        Lists.resize(E.Block->size());
      InstEditList &L = Lists[E.InstIndex];
      if (E.K == Edit::Kind::Before) {
        L.Before.push_back(&E);
      } else if (E.K == Edit::Kind::After) {
        L.After.push_back(&E);
      } else if (E.K == Edit::Kind::Replace) {
        L.Replaced = true;
        L.Replacement = E.NewWord;
      } else {
        L.Deleted = true;
      }
      break;
    }
    }
  }
  // Stable application order by sequence number.
  auto BySeq = [](const Edit *A, const Edit *B) { return A->Seq < B->Seq; };
  for (auto &[Block, Lists] : BlockEdits) {
    (void)Block;
    for (InstEditList &L : Lists) {
      std::sort(L.Before.begin(), L.Before.end(), BySeq);
      std::sort(L.After.begin(), L.After.end(), BySeq);
    }
  }
  for (auto &[EdgePtr, List] : EdgeEdits) {
    (void)EdgePtr;
    std::sort(List.begin(), List.end(), BySeq);
  }
}

const InstEditList *RoutineLayouter::editsFor(const BasicBlock *B,
                                              unsigned InstIndex) const {
  auto It = BlockEdits.find(B);
  if (It == BlockEdits.end() || InstIndex >= It->second.size())
    return nullptr;
  return &It->second[InstIndex];
}

const std::vector<const Edit *> *
RoutineLayouter::editsFor(const Edge *E) const {
  auto It = EdgeEdits.find(E);
  return It == EdgeEdits.end() ? nullptr : &It->second;
}

Expected<bool> RoutineLayouter::emitSnippet(const Edit &E,
                                            const RegSet &LiveSet) {
  Expected<SnippetInstance> Inst =
      instantiateSnippet(Target, *E.Snippet, LiveSet);
  if (Inst.hasError())
    return Inst.error();
  PendingCallback CB;
  CB.Snippet = E.Snippet;
  CB.Instance = Inst.takeValue();
  CB.WordIndex = here();
  for (MachWord W : CB.Instance.Words)
    emitWord(W);
  ++Out.SnippetInstances;
  Out.SnippetSpills += CB.Instance.SpillCount;
  Out.SnippetCCSaves += CB.Instance.SavedCC ? 1 : 0;
  if (E.Snippet->callback())
    Out.Callbacks.push_back(std::move(CB));
  return true;
}

Expected<bool> RoutineLayouter::emitEdgeCode(const Edge *E) {
  const auto *List = editsFor(E);
  if (!List)
    return true;
  RegSet LiveSet = Live->liveOnEdge(E);
  for (const Edit *Ed : *List) {
    Expected<bool> Result = emitSnippet(*Ed, LiveSet);
    if (Result.hasError())
      return Result;
  }
  return true;
}

Expected<bool> RoutineLayouter::emitDelayBlockInline(const BasicBlock *DB) {
  assert(DB->size() == 1 && "delay blocks hold exactly one instruction");
  const CfgInst &CI = DB->insts()[0];
  const InstEditList *L = editsFor(DB, 0);
  mapAddr(CI.OrigAddr);
  if (L) {
    for (const Edit *Ed : L->Before) {
      Expected<bool> Result = emitSnippet(*Ed, Live->liveBefore(DB, 0));
      if (Result.hasError())
        return Result;
    }
  }
  if (!L || !L->Deleted)
    emitWord(L && L->Replaced ? L->Replacement : CI.Inst->word());
  if (L) {
    for (const Edit *Ed : L->After) {
      Expected<bool> Result = emitSnippet(*Ed, Live->liveAfter(DB, 0));
      if (Result.hasError())
        return Result;
    }
  }
  return true;
}

bool RoutineLayouter::pathHasCode(const Edge *E1, const BasicBlock *DB,
                                  const Edge *E2) const {
  if (E1 && edgeHasCode(E1))
    return true;
  if (DB && blockHasEdits(DB))
    return true;
  if (E2 && edgeHasCode(E2))
    return true;
  return false;
}

Expected<bool> RoutineLayouter::emitPath(const Edge *E1, const BasicBlock *DB,
                                         const Edge *E2) {
  if (E1) {
    Expected<bool> Result = emitEdgeCode(E1);
    if (Result.hasError())
      return Result;
  }
  if (DB) {
    Expected<bool> Result = emitDelayBlockInline(DB);
    if (Result.hasError())
      return Result;
  }
  if (E2) {
    Expected<bool> Result = emitEdgeCode(E2);
    if (Result.hasError())
      return Result;
  }
  return true;
}

void RoutineLayouter::retargetTo(unsigned WordIndex,
                                 const BasicBlock *DestBlock,
                                 Addr ExternalDest) {
  if (DestBlock) {
    Internals.push_back({WordIndex, DestBlock});
  } else {
    Reloc Rl;
    Rl.K = Reloc::Kind::JumpTo;
    Rl.WordIndex = WordIndex;
    Rl.OrigTarget = ExternalDest;
    Out.Relocs.push_back(Rl);
  }
}

void RoutineLayouter::emitJumpTo(const BasicBlock *DestBlock,
                                 Addr ExternalDest) {
  unsigned At = here();
  std::vector<MachWord> Words;
  bool Ok = Target.emitJump(0, 0, Words);
  assert(Ok && "zero-displacement jump must encode");
  (void)Ok;
  for (MachWord W : Words)
    emitWord(W);
  retargetTo(At, DestBlock, ExternalDest);
}

void RoutineLayouter::noteMaterialization(const Instruction *I,
                                          unsigned WordIndex) {
  // Detect `hi(rd) ; or/add rd, rd, lo` pairs whose value is a text
  // address, and arrange to rewrite them to the edited address. This is
  // how statically materialized code pointers (including the literal-jump
  // idiom §3.3 mentions) keep working after code moves.
  DataOp Cur = I->dataOp();
  if (Cur.Kind != DataOpKind::Or && Cur.Kind != DataOpKind::Add)
    return;
  if (!Cur.HasImm || Cur.Rd != Cur.Rs1 || WordIndex == 0)
    return;
  MachWord PrevWord = Out.Code[WordIndex - 1];
  DataOp Prev = Target.dataOp(PrevWord);
  if (Prev.Kind != DataOpKind::LoadImmHi || Prev.Rd != Cur.Rd)
    return;
  uint32_t Value = Cur.Kind == DataOpKind::Or
                       ? (static_cast<uint32_t>(Prev.Imm) |
                          static_cast<uint32_t>(Cur.Imm))
                       : (static_cast<uint32_t>(Prev.Imm) +
                          static_cast<uint32_t>(Cur.Imm));
  if (!Exec.isTextAddr(Value))
    return;
  Out.Relocs.push_back({Reloc::Kind::AddrHi, WordIndex - 1, Value, 0});
  Out.Relocs.push_back({Reloc::Kind::AddrLo, WordIndex, Value, 0});
}

Expected<bool> RoutineLayouter::emitBlock(const BasicBlock *B) {
  BlockOffset[B] = here();
  for (unsigned I = 0; I < B->size(); ++I) {
    const CfgInst &CI = B->insts()[I];
    bool IsTerminator = I + 1 == B->size() && CI.Inst->isControlTransfer();
    if (IsTerminator)
      return lowerTerminator(B, I);

    mapAddr(CI.OrigAddr);
    const InstEditList *L = editsFor(B, I);
    if (L) {
      for (const Edit *Ed : L->Before) {
        Expected<bool> Result = emitSnippet(*Ed, Live->liveBefore(B, I));
        if (Result.hasError())
          return Result;
      }
    }
    if (!L || !L->Deleted) {
      unsigned At = here();
      emitWord(L && L->Replaced ? L->Replacement : CI.Inst->word());
      if (!L || !L->Replaced)
        noteMaterialization(CI.Inst, At);
    }
    if (L) {
      for (const Edit *Ed : L->After) {
        Expected<bool> Result = emitSnippet(*Ed, Live->liveAfter(B, I));
        if (Result.hasError())
          return Result;
      }
    }
  }
  // Block ends without a transfer: a fallthrough edge (possibly carrying
  // code) leads to the next block in address order.
  const Edge *Fall = edgeOfKind(B, EdgeKind::Fallthrough);
  if (Fall) {
    Expected<bool> Result = emitEdgeCode(Fall);
    if (Result.hasError())
      return Result;
  }
  return true;
}

Expected<bool> RoutineLayouter::lowerTerminator(const BasicBlock *B,
                                                unsigned InstIndex) {
  const CfgInst &Term = B->insts()[InstIndex];
  mapAddr(Term.OrigAddr);
  // Code before a control transfer executes on every path through it.
  const InstEditList *L = editsFor(B, InstIndex);
  if (L) {
    assert(L->After.empty() && !L->Deleted &&
           "control transfers cannot be deleted or post-instrumented");
    // L->Replaced is consumed by terminatorWord() in the lowering helpers.
    for (const Edit *Ed : L->Before) {
      Expected<bool> Result =
          emitSnippet(*Ed, Live->liveBefore(B, InstIndex));
      if (Result.hasError())
        return Result;
    }
  }
  switch (Term.Inst->kind()) {
  case InstKind::Branch:
    return lowerBranch(B, Term);
  case InstKind::Jump:
    return lowerJump(B, Term);
  case InstKind::Call:
  case InstKind::IndirectCall:
    return lowerCall(B, Term);
  case InstKind::Return:
    return lowerReturn(B, Term);
  case InstKind::IndirectJump:
    return lowerIndirect(B, Term);
  default:
    unreachable("unknown terminator");
  }
}

MachWord RoutineLayouter::terminatorWord(const BasicBlock *B,
                                         const CfgInst &Term) const {
  const InstEditList *L = editsFor(B, B->size() - 1);
  if (L && L->Replaced)
    return L->Replacement;
  return Term.Inst->word();
}

Expected<bool> RoutineLayouter::lowerBranch(const BasicBlock *B,
                                            const CfgInst &Term) {
  Addr A = Term.OrigAddr;
  const Instruction *I = Term.Inst;
  bool HasDelay = I->hasDelaySlot();
  bool AnnulUntaken = I->delayBehavior() == DelayBehavior::AnnulUntaken;

  // Taken path: B --Taken--> delay block --Taken--> destination on a
  // delay-slot machine; B --Taken--> destination directly otherwise.
  const Edge *ToTaken = edgeOfKind(B, EdgeKind::Taken);
  assert(ToTaken && "branch block without taken edge");
  const BasicBlock *TakenDelay = nullptr;
  const Edge *TakenOut = ToTaken;
  if (HasDelay) {
    TakenDelay = ToTaken->dst();
    TakenOut = edgeOfKind(TakenDelay, EdgeKind::Taken);
    assert(TakenOut && "taken delay block without outgoing edge");
  }
  const BasicBlock *TakenDest =
      TakenOut->dst()->kind() == BlockKind::Exit ? nullptr : TakenOut->dst();
  Addr TakenExternal =
      TakenDest ? 0 : externalTargetOf(HasDelay ? TakenDelay : B);

  // Fall path.
  const Edge *ToFall = edgeOfKind(B, EdgeKind::NotTaken);
  assert(ToFall && "branch block without fall edge");
  bool DirectFall = !HasDelay || AnnulUntaken;
  const BasicBlock *FallDelay = nullptr;
  const Edge *FallOut = nullptr;
  if (!DirectFall) {
    FallDelay = ToFall->dst();
    FallOut = edgeOfKind(FallDelay, EdgeKind::NotTaken);
    assert(FallOut && "fall delay block without outgoing edge");
  }

  bool TakenEdited =
      pathHasCode(HasDelay ? ToTaken : nullptr, TakenDelay, TakenOut);
  bool FallEdited = DirectFall ? edgeHasCode(ToFall)
                               : pathHasCode(ToFall, FallDelay, FallOut);

  if (!TakenEdited && !FallEdited &&
      (!HasDelay || !Exec.options().DisableDelayFolding)) {
    // Re-emit the branch in place, folding the delay instruction back into
    // the slot (§3.3.1) when the machine has one.
    unsigned At = here();
    emitWord(terminatorWord(B, Term));
    retargetTo(At, TakenDest, TakenExternal);
    if (HasDelay) {
      mapAddr(A + 4);
      emitWord(origWordAt(A + 4));
      ++Out.DelayFolded;
    }
    return true; // falls through into the fallthrough block
  }

  // Materialize: branch (with a harmless nop in its slot, when a slot
  // exists) to a stub that holds the taken path; the fall path runs inline.
  if (HasDelay)
    ++Out.DelayMaterialized;
  unsigned BranchAt = here();
  emitWord(terminatorWord(B, Term));
  if (HasDelay)
    emitWord(Target.nopWord());

  StubRequest Stub;
  Stub.E1 = HasDelay ? ToTaken : nullptr;
  Stub.DB = TakenDelay;
  Stub.E2 = TakenOut;
  Stub.DestBlock = TakenDest;
  Stub.ExternalDest = TakenExternal;
  Stub.BranchWordIndex = BranchAt;
  Stubs.push_back(Stub);

  if (DirectFall) {
    Expected<bool> Result = emitEdgeCode(ToFall);
    if (Result.hasError())
      return Result;
  } else {
    Expected<bool> Result = emitPath(ToFall, FallDelay, FallOut);
    if (Result.hasError())
      return Result;
  }
  return true; // falls through into the fallthrough block
}

Expected<bool> RoutineLayouter::lowerJump(const BasicBlock *B,
                                          const CfgInst &Term) {
  const Instruction *I = Term.Inst;
  Addr A = Term.OrigAddr;
  bool HasDelay = I->hasDelaySlot();
  bool AnnulAlways = I->delayBehavior() == DelayBehavior::AnnulAlways;
  // An annulled slot and a machine without slots produce the same direct
  // CFG shape: a single edge from the jump block to the destination.
  bool Direct = !HasDelay || AnnulAlways;

  const Edge *First = edgeOfKind(B, EdgeKind::UncondJump);
  assert(First && "jump block without outgoing edge");

  const BasicBlock *DelayB = nullptr;
  const Edge *Second = nullptr;
  const BasicBlock *DestB;
  if (Direct) {
    DestB = First->dst();
  } else {
    DelayB = First->dst();
    Second = edgeOfKind(DelayB, EdgeKind::UncondJump);
    assert(Second && "jump delay block without outgoing edge");
    DestB = Second->dst();
  }
  bool External = DestB->kind() == BlockKind::Exit;
  Addr ExternalDest = External ? externalTargetOf(Direct ? B : DelayB) : 0;
  const BasicBlock *Dest = External ? nullptr : DestB;

  bool Edited =
      Direct ? edgeHasCode(First) : pathHasCode(First, DelayB, Second);

  // An unedited retargetable jump is re-emitted in place; on a delay-slot
  // machine that keeps (folds) its delay instruction.
  if (!Edited &&
      (!HasDelay || (!AnnulAlways && !Exec.options().DisableDelayFolding))) {
    std::optional<MachWord> CanRetarget =
        Target.retargetDirect(I->word(), 0, 0x1000);
    if (CanRetarget) {
      unsigned At = here();
      emitWord(terminatorWord(B, Term));
      retargetTo(At, Dest, ExternalDest);
      if (HasDelay) {
        mapAddr(A + 4);
        emitWord(origWordAt(A + 4));
        ++Out.DelayFolded;
      }
      return true;
    }
  }

  // Materialized form: path code, then a fresh jump (the original word may
  // be unretargetable, e.g. bn,a whose target is implicit).
  if (!Direct) {
    Expected<bool> Result = emitPath(First, DelayB, Second);
    if (Result.hasError())
      return Result;
  } else {
    Expected<bool> Result = emitEdgeCode(First);
    if (Result.hasError())
      return Result;
    if (HasDelay)
      ++Out.DelayMaterialized;
  }
  emitJumpTo(Dest, ExternalDest);
  return true;
}

Expected<bool> RoutineLayouter::lowerCall(const BasicBlock *B,
                                          const CfgInst &Term) {
  Addr A = Term.OrigAddr;
  const Instruction *I = Term.Inst;
  unsigned At = here();
  emitWord(I->word());
  if (I->kind() == InstKind::Call) {
    Reloc Rl;
    Rl.K = Reloc::Kind::CallTo;
    Rl.WordIndex = At;
    Rl.OrigTarget = *I->directTarget(A);
    Out.Relocs.push_back(Rl);
  }
  // The delay slot after a call is uneditable (§3.3): emit it verbatim.
  // Machines without delay slots have no such word; the continuation block
  // directly follows the call.
  if (I->hasDelaySlot()) {
    mapAddr(A + 4);
    emitWord(origWordAt(A + 4));
  }
  (void)B;
  return true; // continuation block follows in address order
}

Expected<bool> RoutineLayouter::lowerReturn(const BasicBlock *B,
                                            const CfgInst &Term) {
  Addr A = Term.OrigAddr;
  emitWord(Term.Inst->word());
  if (Term.Inst->hasDelaySlot()) {
    mapAddr(A + 4);
    emitWord(origWordAt(A + 4));
  }
  (void)B;
  return true;
}

Expected<bool> RoutineLayouter::lowerIndirect(const BasicBlock *B,
                                              const CfgInst &Term) {
  Addr A = Term.OrigAddr;
  const Instruction *I = Term.Inst;
  const IndirectSite *Site = nullptr;
  for (const IndirectSite &S : Graph->indirectSites())
    if (S.Block == B && S.JumpAddr == A)
      Site = &S;
  assert(Site && "indirect jump without a recorded site");

  bool HasDelay = I->hasDelaySlot();

  switch (Site->Resolution.K) {
  case IndirectResolution::Kind::DispatchTable: {
    emitWord(I->word());
    if (HasDelay) {
      mapAddr(A + 4);
      emitWord(origWordAt(A + 4));
    }
    // Rewrite the table: entries point at edited case blocks, or at stubs
    // when a case edge carries code. On a delay-slot machine the case
    // edges hang off the shared delay block; otherwise off the jump block.
    const BasicBlock *CaseSrc = B;
    if (HasDelay) {
      const Edge *ToDelay = edgeOfKind(B, EdgeKind::SwitchCase);
      assert(ToDelay && "dispatch block without delay edge");
      CaseSrc = ToDelay->dst();
    }
    TableFix Fix;
    Fix.TableAddr = Site->Resolution.TableAddr;
    size_t FixIndex = Out.TableFixes.size();
    for (size_t EntryIdx = 0; EntryIdx < Site->Resolution.Targets.size();
         ++EntryIdx) {
      Addr T = Site->Resolution.Targets[EntryIdx];
      const Edge *CaseEdge = nullptr;
      for (const Edge *E : CaseSrc->succ())
        if (E->dst()->kind() == BlockKind::Normal && E->dst()->anchor() == T)
          CaseEdge = E;
      TableEntryFix EF;
      EF.OrigTarget = T;
      if (CaseEdge && edgeHasCode(CaseEdge)) {
        // Route this entry through a stub holding the edge's code.
        StubRequest Stub;
        Stub.E2 = CaseEdge;
        Stub.DestBlock = CaseEdge->dst();
        Stub.TableSlots.push_back({FixIndex, EntryIdx});
        Stubs.push_back(Stub);
        EF.StubWordIndex = 0; // patched when the stub is placed
      }
      Fix.Entries.push_back(EF);
    }
    Out.TableFixes.push_back(std::move(Fix));
    return true;
  }

  case IndirectResolution::Kind::Literal:
    emitWord(I->word());
    if (HasDelay) {
      mapAddr(A + 4);
      emitWord(origWordAt(A + 4));
    }
    // A literal recovered through a constant cell still reads that cell at
    // run time: record it for unconditional precise rewriting.
    if (Site->Resolution.CellAddr)
      Out.CellFixes.push_back(
          {Site->Resolution.CellAddr, Site->Resolution.Targets[0]});
    return true;

  case IndirectResolution::Kind::CellPointer:
  case IndirectResolution::Kind::Unanalyzable: {
    // Run-time translation (§3.3).
    Out.NeedsTranslator = true;
    bumpStat("eel.translate.sites");
    const auto *Ind = cast<IndirectInst>(I);
    MachWord DelayWord = Target.nopWord();
    if (HasDelay) {
      mapAddr(A + 4); // the delay instruction is emitted inside the site
      DelayWord = origWordAt(A + 4);
    }
    return emitTranslationSite(Target, *Ind, DelayWord, Out.Code,
                               Out.Relocs);
  }
  }
  unreachable("unhandled resolution kind");
}

Expected<bool> RoutineLayouter::emitStubs() {
  for (StubRequest &Stub : Stubs) {
    unsigned Offset = here();
    if (Stub.BranchWordIndex != UINT_MAX) {
      // Retarget the branch at the stub: a direct internal patch.
      Reloc Rl;
      Rl.K = Reloc::Kind::Internal;
      Rl.WordIndex = Stub.BranchWordIndex;
      Rl.DestWordIndex = Offset;
      Out.Relocs.push_back(Rl);
    }
    for (auto &[FixIndex, EntryIdx] : Stub.TableSlots)
      Out.TableFixes[FixIndex].Entries[EntryIdx].StubWordIndex =
          static_cast<int>(Offset);
    Expected<bool> Result = emitPath(Stub.E1, Stub.DB, Stub.E2);
    if (Result.hasError())
      return Result;
    emitJumpTo(Stub.DestBlock, Stub.ExternalDest);
  }
  return true;
}

Expected<bool> RoutineLayouter::runVerbatim() {
  Out.Verbatim = true;
  bumpStat("eel.layout.verbatim");
  const asmkit::InstParser &Parser = asmkit::instParserFor(Target.arch());
  (void)Parser;
  const Instruction *Prev = nullptr;
  for (Addr A = R.startAddr(); A + 4 <= R.endAddr(); A += 4) {
    std::optional<MachWord> WOpt = Exec.fetchWord(A);
    if (!WOpt)
      break;
    MachWord W = *WOpt;
    mapAddr(A);
    unsigned At = here();
    emitWord(W);
    if (R.isData()) {
      Prev = nullptr;
      continue; // pure data: no decoding, no relocations
    }
    const Instruction *I = Exec.pool().getAt(A, W);
    // Cross-routine direct transfers must follow their targets. To avoid
    // corrupting data that happens to decode as a transfer, only words
    // whose target is a routine entry point are patched.
    std::optional<Addr> T = I->directTarget(A);
    if (T && !R.contains(*T)) {
      Routine *Dest = Exec.routineContaining(*T);
      bool IsEntry = false;
      if (Dest)
        for (Addr E : Dest->entryPoints())
          if (E == *T)
            IsEntry = true;
      if (IsEntry) {
        Reloc Rl;
        Rl.K = I->kind() == InstKind::Call ? Reloc::Kind::CallTo
                                           : Reloc::Kind::JumpTo;
        Rl.WordIndex = At;
        Rl.OrigTarget = *T;
        Out.Relocs.push_back(Rl);
      }
    } else if (I->kind() == InstKind::Call || I->kind() == InstKind::Jump) {
      // Internal absolute-region jumps (MRISC j/jal) still need fixing
      // since the whole routine moves.
      if (T && R.contains(*T)) {
        std::optional<MachWord> SameRel =
            Target.retargetDirect(W, A + 0x1000, *T + 0x1000);
        if (!SameRel || *SameRel != W) {
          Reloc Rl;
          Rl.K = Reloc::Kind::JumpTo;
          Rl.WordIndex = At;
          Rl.OrigTarget = *T;
          Out.Relocs.push_back(Rl);
        }
      }
    }
    if (Prev)
      noteMaterialization(I, At);
    Prev = I;
  }
  return true;
}

Expected<RoutineLayout> RoutineLayouter::run() {
  // Data "routines" (tables with routine-like symbols) are copied as-is.
  if (R.isData()) {
    Expected<bool> Result = runVerbatim();
    if (Result.hasError())
      return Result.error();
    sealAddrMap();
    return std::move(Out);
  }

  Graph = R.controlFlowGraph();
  bool WantTranslation = Exec.options().EnableRuntimeTranslation;
  bool MustVerbatim =
      Graph->unsupported() || (!Graph->complete() && !WantTranslation);
  if (MustVerbatim) {
    if (Graph->edited())
      return Error("routine '" + R.name() + "' cannot be edited: " +
                   (Graph->unsupported() ? Graph->unsupportedReason()
                                         : "unanalyzable control flow and "
                                           "run-time translation disabled"));
    Expected<bool> Result = runVerbatim();
    if (Result.hasError())
      return Result.error();
    sealAddrMap();
    return std::move(Out);
  }

  gatherEdits();
  Live = R.liveness();

  // Normal blocks were created in ascending address order by the builder.
  for (const BasicBlock *Block : Graph->blocks()) {
    if (Block->kind() != BlockKind::Normal)
      continue;
    Expected<bool> Result = emitBlock(Block);
    if (Result.hasError())
      return Result.error();
  }
  Expected<bool> Result = emitStubs();
  if (Result.hasError())
    return Result.error();

  // Preserve words of the extent not covered by any block (alignment
  // padding, text-embedded data): append them so their bytes survive, and
  // map their addresses.
  for (Addr A = R.startAddr(); A + 4 <= R.endAddr(); A += 4) {
    if (addrMapped(A))
      continue;
    mapAddr(A);
    emitWord(origWordAt(A));
  }

  // Resolve internal transfers now that all offsets are final.
  for (const PendingInternal &P : Internals) {
    auto It = BlockOffset.find(P.DestBlock);
    assert(It != BlockOffset.end() && "destination block was not emitted");
    Reloc Rl;
    Rl.K = Reloc::Kind::Internal;
    Rl.WordIndex = P.WordIndex;
    Rl.DestWordIndex = It->second;
    Out.Relocs.push_back(Rl);
  }
  sealAddrMap();
  return std::move(Out);
}

Expected<RoutineLayout> eel::layoutRoutine(Routine &R) {
  // Nested phases (CFG build, liveness) that run lazily inside layout are
  // also counted by their own time.* timers; see DESIGN.md "Timer nesting".
  ScopedStatTimer Timer("time.layout_us");
  EEL_TRACE_SCOPE("layout_routine", "routine", R.name());
  RoutineLayouter L(R);
  Expected<RoutineLayout> Out = L.run();
  if (!Out.hasError())
    bumpHistogram("layout.words_per_routine", Out.value().Code.size());
  return Out;
}
