//===- core/Executable.h - Executable editing ---------------------*- C++ -*-===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The top of EEL's abstraction stack (§3.1): an executable file whose
/// contents can be examined, analyzed, edited, and written back out. A tool
/// opens an executable, calls readContents() to run the symbol-refinement
/// and routine-discovery analysis, edits routines through their CFGs, and
/// calls writeEditedExecutable() to produce a new image in which control
/// flows correctly despite deleted instructions and added foreign code.
///
/// The editor:
///  * re-lays out every routine, applying accumulated CFG edits and folding
///    unedited delay slots back (§3.3.1);
///  * retargets all direct calls, branches, and inter-routine jumps;
///  * rewrites dispatch tables found by slicing to point at edited
///    locations, plus known code-pointer cells;
///  * optionally scans the data segment for words that are code addresses
///    and rewrites them (function pointers);
///  * appends a run-time translation routine and a sorted original→edited
///    address table for indirect jumps the analysis could not resolve,
///    so "run-time code ensures that control passes to the correct edited
///    instruction";
///  * updates the symbol table so standard tools keep working.
///
//===----------------------------------------------------------------------===//

#ifndef EEL_CORE_EXECUTABLE_H
#define EEL_CORE_EXECUTABLE_H

#include "core/Routine.h"
#include "support/FlatMap.h"
#include "support/Log.h"
#include "sxf/Sxf.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace eel {

struct InferOptions;
struct InferResult;

class Executable {
public:
  struct Options {
    /// Rewrite data words that equal instruction addresses (function
    /// pointers). Precise rewrites (dispatch tables, cells found by
    /// slicing) always happen; this enables the whole-segment scan.
    bool RewriteDataPointers = true;
    /// Emit the run-time translation fallback for unanalyzable indirect
    /// jumps (§3.3). When off, routines with such jumps are copied
    /// verbatim and cannot be edited.
    bool EnableRuntimeTranslation = true;
    /// Also route indirect calls through the translator (normally pointer
    /// rewriting suffices for them).
    bool TranslateIndirectCalls = false;
    /// Ablation: ignore slicing results for indirect jumps, forcing every
    /// one through run-time translation. Measures how much §3.3's slicing
    /// buys ("EEL's slicing makes run-time translation a rare occurrence").
    bool DisableSlicing = false;
    /// Ablation: never fold unedited delay-slot duplicates back into delay
    /// slots, always materializing the §3.3.1 stub form instead. Measures
    /// the size/time cost fold-back avoids.
    bool DisableDelayFolding = false;
    /// Worker threads for the per-routine analysis and editing phases
    /// (CFG construction, liveness, slicing, layout, relocation patching).
    /// 0 = hardware concurrency; 1 = the legacy serial path, kept as the
    /// reference oracle. Output images and (non-time.*) statistics are
    /// bit-identical across all settings.
    unsigned Threads = 0;
    /// Use the seed (pre-arena) emission path: serialize each routine's
    /// words into the text segment byte by byte after patching, instead of
    /// the zero-copy preallocated-buffer writer. Kept as the byte-identity
    /// reference oracle; bench_overhead measures the two against each
    /// other.
    bool LegacyWriter = false;
    /// Run the static verifier (analysis/Verifier.h) over every emitted
    /// image; writeEditedExecutable() fails with the findings if any check
    /// reports an error. The gate runs the re-analysis-free profile
    /// (VerifyOptions::writeGate(): CFG well-formedness, delay-slot/annul
    /// invariants, the scavenging audit, and layout consistency), adding
    /// only a few percent to the write path; full translation validation
    /// is the explicit verifyEdit()/eel-lint step. Off by default.
    bool Verify = false;
    /// Enable span tracing (support/Trace.h) for this run: every pipeline
    /// phase records RAII spans into per-thread rings, drainable at
    /// quiescent points and exportable as Chrome trace-event JSON. The
    /// flag is process-wide (it flips the global trace gate at
    /// construction); disabled, the instrumentation costs <1% of pipeline
    /// time (asserted by bench_overhead). Off by default.
    bool Trace = false;
    /// Distrust the symbol table entirely: readContents() discards symbols
    /// and derives routine boundaries, entry points, and dispatch facts
    /// with the eel-infer fixpoint (analysis/Infer.h), exactly as it does
    /// automatically for stripped images. Lets tools cross-check lying
    /// symbol tables against heuristic inference (eel-lint --stripped).
    bool NoSymbols = false;
    /// Structured-logging threshold (support/Log.h) for this run. Like
    /// Trace, this is a process-wide one-way enable: any value other than
    /// Off lowers the global log gate at construction; Off (the default)
    /// leaves the current gate alone. Disabled-mode cost is a relaxed
    /// load per EEL_LOG site (<0.1%, asserted by bench_overhead).
    LogLevel Log = LogLevel::Off;
  };

  explicit Executable(SxfFile Image);
  Executable(SxfFile Image, Options Opts);
  ~Executable();

  /// Opens an executable file: reads and validates the SXF image (the full
  /// hostile-input validation in SxfFile::deserialize), requires a text
  /// segment, and returns the ready-to-analyze Executable. All failures —
  /// I/O, malformed image, no text — come back as structured Errors with
  /// the path attached; nothing on this path aborts. This is the entry
  /// point tools should use for untrusted files.
  static Expected<std::unique_ptr<Executable>> open(const std::string &Path,
                                                    Options Opts);
  static Expected<std::unique_ptr<Executable>> open(const std::string &Path);

  /// Same, for an image already decoded or built in memory. Runs
  /// SxfFile::validate() before accepting it.
  static Expected<std::unique_ptr<Executable>> openImage(SxfFile Image,
                                                         Options Opts);
  static Expected<std::unique_ptr<Executable>> openImage(SxfFile Image);

  const SxfFile &image() const { return Image; }
  const TargetInfo &target() const { return Target; }
  const Options &options() const { return Opts; }
  InstructionPool &pool() { return Pool; }

  /// Resolved worker count for the parallel phases: Options::Threads, with
  /// 0 mapped to std::thread::hardware_concurrency().
  unsigned effectiveThreads() const;

  Addr startAddress() const { return Image.Entry; }
  Addr textBase() const;
  Addr textEnd() const;
  bool isTextAddr(Addr A) const { return A >= textBase() && A < textEnd(); }

  /// Word fetch from the image (text or initialized data).
  std::optional<MachWord> fetchWord(Addr A) const { return Image.readWord(A); }

  // --- Analysis -------------------------------------------------------------

  /// Runs symbol-table refinement and routine discovery (§3.1 stages 1–4).
  /// Idempotent. Returns an error (instead of asserting) when the image is
  /// not analyzable — e.g. it has no text segment; callers holding images
  /// from Executable::open()/openImage() may ignore the result, since those
  /// constructors already validated it.
  Expected<bool> readContents();

  const std::vector<std::unique_ptr<Routine>> &routines() const {
    return Routines;
  }
  Routine *routineContaining(Addr A) const;
  Routine *findRoutine(const std::string &Name) const;

  /// Routines discovered by analysis rather than named by symbols.
  std::vector<Routine *> hiddenRoutines() const;

  // --- Inference (eel-infer) -------------------------------------------------
  // When the image is stripped (or Options::NoSymbols is set), readContents
  // degrades from symbol refinement to the fixpoint inference pass in
  // analysis/Infer.h. Its results are analysis state, not edits: they
  // survive resetEdits() and feed both the slicing oracle and CfgBuild.

  /// True when routine discovery ran the eel-infer fixpoint.
  bool inferenceUsed() const { return InferenceRan; }

  /// The initial contents of \p Cell, when inference proved no store in
  /// the program can write that cell (the constant-cell oracle consulted
  /// by backward slicing). Empty for every symboled analysis.
  std::optional<uint32_t> inferredCellValue(Addr Cell) const;

  /// The fixpoint's resolution of the indirect site at \p JumpAddr, or
  /// nullptr. CfgBuild prefers these over a fresh slice so the graphs a
  /// stripped analysis builds are bit-identical to what inference decided.
  const IndirectResolution *inferredSite(Addr JumpAddr) const;

  /// Inference confidence for the routine starting at \p RoutineStart:
  /// 0 = not inferred (symboled analysis), else an
  /// analysis/InferFacts.h InferConfidence value (1 low .. 3 high).
  uint8_t inferredConfidence(Addr RoutineStart) const;

  // --- Additions ---------------------------------------------------------------

  /// Reserves \p Bytes of fresh data space (e.g. profile counters);
  /// returns its address. Contents are zero-initialized in the edited
  /// image unless \p Initial is provided.
  Addr appendData(uint32_t Bytes, unsigned Align, const std::string &Name,
                  std::vector<uint8_t> Initial = {});

  /// Adds a new routine given as assembly text; it is assembled at its
  /// final address during output. Address constants the routine needs must
  /// be formatted into the text (tools know them from appendData).
  /// Returns an id with which editedAddrOfAdded() retrieves its address.
  unsigned addRoutineAsm(const std::string &Name, std::string AsmText);

  // --- Output ---------------------------------------------------------------

  /// Reverts every accumulated edit — CFG edit batches, appended data,
  /// added routines, the address map, and edit statistics — returning the
  /// executable to its just-analyzed state. The expensive analysis results
  /// (routine discovery, CFGs, liveness, slices) survive untouched, so a
  /// long-lived process (eel-serve) can cache an analyzed Executable and
  /// run many independent edit+write passes over it, each byte-identical
  /// to a cold open+analyze+edit run of the same tool.
  void resetEdits();

  /// Produces the edited executable. After this succeeds, editedAddr()
  /// maps original instruction addresses into the new image.
  Expected<SxfFile> writeEditedExecutable();

  /// Edited address of original instruction address \p A; asserts the
  /// mapping exists (writeEditedExecutable must have succeeded).
  Addr editedAddr(Addr A) const;
  bool hasEditedAddr(Addr A) const { return AddrMap.count(A) != 0; }

  /// The full original→edited instruction address map of the last
  /// writeEditedExecutable() call (the verifier checks images against it).
  /// Sorted by original address; lookups are binary searches over the
  /// flat entry array.
  const FlatAddrMap &addrMap() const { return AddrMap; }

  /// Entry address of an added routine in the edited image.
  Addr editedAddrOfAdded(unsigned Id) const;

  /// Statistics of the last writeEditedExecutable() call.
  struct EditStats {
    unsigned RoutinesEdited = 0;
    unsigned RoutinesVerbatim = 0;   ///< Copied unmodified (unsupported).
    unsigned DispatchEntriesRewritten = 0;
    unsigned DataPointersRewritten = 0;
    unsigned CellPointersRewritten = 0; ///< Inferred constant cells.
    unsigned TranslationSites = 0;
    unsigned TranslationEntries = 0;
    unsigned DelaySlotsFolded = 0;
    unsigned DelaySlotsMaterialized = 0;
    unsigned SnippetInstances = 0;
    unsigned SnippetSpills = 0;
    unsigned SnippetCCSaves = 0;
  };
  const EditStats &editStats() const { return Stats; }

private:
  friend class EditedWriter;
  /// The fixpoint installs constant-cell facts round by round (the slicing
  /// oracle must see round N's cells during round N+1's resolutions).
  friend InferResult inferLayout(Executable &, const InferOptions &);

  SxfFile Image;
  Options Opts;
  const TargetInfo &Target;
  InstructionPool Pool;
  bool Analyzed = false;
  std::vector<std::unique_ptr<Routine>> Routines;

  // eel-infer results (readContents fills these on the inference path).
  bool InferenceRan = false;
  /// Constant code-pointer/table-base cells, sorted by cell address.
  std::vector<std::pair<Addr, uint32_t>> InferredCells;
  /// Fixpoint-resolved indirect sites, keyed by jump address.
  std::map<Addr, IndirectResolution> InferredSites;
  /// Per-routine confidence, keyed by routine start address.
  std::map<Addr, uint8_t> InferredConfidence;

  struct DataBlob {
    Addr Address;
    uint32_t Size;
    unsigned Align;
    std::string Name;
    std::vector<uint8_t> Initial;
  };
  std::vector<DataBlob> AppendedData;
  Addr NextDataAddr = 0;

  struct AddedRoutine {
    std::string Name;
    std::string AsmText;
    Addr PlacedAddr = 0;
  };
  std::vector<AddedRoutine> AddedRoutines;

  FlatAddrMap AddrMap;
  EditStats Stats;
};

} // namespace eel

#endif // EEL_CORE_EXECUTABLE_H
