//===- core/Translate.h - Run-time address translation -----------*- C++ -*-===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The §3.3 fallback: "when control flow cannot be completely analyzed,
/// run-time code ensures that control passes to the correct edited
/// instruction". An unanalyzable indirect jump is replaced by a short
/// sequence that captures the original target address in a protocol
/// register and enters a translator routine appended to the executable;
/// the translator binary-searches a sorted original→edited address table
/// (also appended) and jumps to the edited location, preserving every
/// register and the condition codes.
///
/// Protocols (machine-specific, like all EEL run-time code):
///  * SRISC — target in %g1 with the caller's %g1/%g2 saved in the stack
///    red zone at [sp-64]/[sp-68]; the translator spills %g3-%g6 and the
///    condition codes below that and restores everything before jumping.
///  * MRISC — target in $k0, translator entered through $k1; $k0/$k1/$gp
///    are reserved registers no generated code uses, and $at/$t8/$t9 are
///    saved in the red zone.
///
/// A translation miss exits with status 127 (control left the known code).
///
//===----------------------------------------------------------------------===//

#ifndef EEL_CORE_TRANSLATE_H
#define EEL_CORE_TRANSLATE_H

#include "core/Instruction.h"
#include "core/Layout.h"
#include "support/Error.h"

#include <string>
#include <vector>

namespace eel {

/// Emits the site sequence replacing the indirect transfer \p Jump (whose
/// original delay-slot instruction is \p DelayWord). Appends code to
/// \p Code and TranslatorHi/TranslatorLo relocations to \p Relocs.
/// Fails when the delay instruction conflicts with the protocol registers
/// in an unresolvable way.
Expected<bool> emitTranslationSite(const TargetInfo &Target,
                                   const IndirectInst &Jump,
                                   MachWord DelayWord,
                                   std::vector<MachWord> &Code,
                                   std::vector<Reloc> &Relocs);

/// Assembly text of the translator routine for \p Target, searching
/// \p EntryCount pairs at \p TableAddr.
std::string translatorAsm(const TargetInfo &Target, Addr TableAddr,
                          unsigned EntryCount);

} // namespace eel

#endif // EEL_CORE_TRANSLATE_H
