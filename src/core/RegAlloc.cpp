//===- core/RegAlloc.cpp - Snippet register scavenging ------------------------===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//

#include "core/RegAlloc.h"

#include "support/Metrics.h"
#include "support/Stats.h"

#include <numeric>

using namespace eel;

Expected<ScavengePlan> eel::planScavenge(const TargetInfo &Target,
                                         const CodeSnippet &Snippet,
                                         const RegSet &Live) {
  const TargetConventions &Conv = Target.conventions();

  // Registers the body names literally (reads or writes) that are not
  // placeholders must keep their identity; they cannot receive a
  // placeholder assignment.
  RegSet LiterallyUsed;
  for (MachWord W : Snippet.body()) {
    for (unsigned Reg : Target.reads(W))
      if (Reg < 32)
        LiterallyUsed.insert(Reg);
    for (unsigned Reg : Target.writes(W))
      if (Reg < 32)
        LiterallyUsed.insert(Reg);
  }
  LiterallyUsed.remove(Snippet.regsToAllocate());

  RegSet Universe;
  for (unsigned Reg = 1; Reg < Target.numRegisters(); ++Reg)
    Universe.insert(Reg);
  Universe.remove(Conv.Reserved);
  Universe.remove(Snippet.forbidden());
  Universe.remove(LiterallyUsed);
  Universe.remove(Snippet.regsToAllocate());

  RegSet Dead = Universe - Live;

  // How many registers do we need? One per placeholder, plus one scratch
  // for condition-code save/restore if the snippet clobbers live CC.
  ScavengePlan Plan;
  Plan.NeedCCSave = Snippet.clobbersCC() && Target.hasConditionCodes() &&
                    Live.contains(RegIdCC);
  unsigned Needed =
      Snippet.regsToAllocate().size() + (Plan.NeedCCSave ? 1 : 0);

  // Assign from the dead pool first; spill live registers for the rest.
  for (unsigned Reg : Dead) {
    if (Plan.Granted.size() >= Needed)
      break;
    Plan.Granted.push_back(Reg);
  }
  if (Plan.Granted.size() < Needed && Snippet.requireDeadRegs())
    return Error(ErrorCode::NoDeadRegisters,
                 "snippet needs " + std::to_string(Needed) +
                     " dead registers at this site but only " +
                     std::to_string(Plan.Granted.size()) +
                     " are dead and spilling is disallowed");
  if (Plan.Granted.size() < Needed) {
    RegSet SpillPool = Universe & Live;
    for (unsigned Reg : SpillPool) {
      if (Plan.Granted.size() >= Needed)
        break;
      Plan.Granted.push_back(Reg);
      Plan.SpilledSet.insert(Reg);
    }
  }
  if (Plan.Granted.size() < Needed)
    return Error(ErrorCode::NoDeadRegisters,
                 "snippet needs " + std::to_string(Needed) +
                     " registers but only " +
                     std::to_string(Plan.Granted.size()) +
                     " can be scavenged or spilled");
  unsigned MaxSpillSlots =
      static_cast<unsigned>((SnippetSpillBase - SnippetSpillLimit) / 4);
  if (Plan.SpilledSet.size() > MaxSpillSlots)
    return Error(ErrorCode::SpillExhausted, "snippet spill area exhausted");
  for (unsigned Reg : Plan.Granted)
    Plan.GrantedSet.insert(Reg);
  return Plan;
}

Expected<SnippetInstance> eel::instantiateSnippet(const TargetInfo &Target,
                                                  const CodeSnippet &Snippet,
                                                  const RegSet &Live) {
  bumpStat("eel.snippet.instances");
  Expected<ScavengePlan> Planned = planScavenge(Target, Snippet, Live);
  if (Planned.hasError())
    return Planned.error();
  const ScavengePlan &Plan = Planned.value();
  // Scavenge-quality distributions: how many registers each site got for
  // free vs. had to spill. Per-site values, so deterministic across
  // thread counts.
  bumpHistogram("scavenge.granted_per_site", Plan.Granted.size());
  bumpHistogram("scavenge.spilled_per_site", Plan.SpilledSet.size());
  const TargetConventions &Conv = Target.conventions();

  SnippetInstance Inst;
  for (unsigned Reg = 0; Reg < 32; ++Reg)
    Inst.RegMap[Reg] = static_cast<uint8_t>(Reg);
  Inst.Granted = Plan.GrantedSet;
  Inst.Spilled = Plan.SpilledSet;
  bool NeedCCSave = Plan.NeedCCSave;
  std::vector<unsigned> Spilled;
  for (unsigned Reg : Plan.SpilledSet)
    Spilled.push_back(Reg);

  // Bind placeholders (in ascending order) to granted registers.
  unsigned Cursor = 0;
  for (unsigned Placeholder : Snippet.regsToAllocate())
    Inst.RegMap[Placeholder] = static_cast<uint8_t>(Plan.Granted[Cursor++]);
  unsigned CCScratch = NeedCCSave ? Plan.Granted[Cursor++] : 0;

  // Prologue: spill stores, then CC save.
  unsigned SP = Conv.StackPointer;
  for (size_t I = 0; I < Spilled.size(); ++I)
    Target.emitStoreWord(Spilled[I], SP,
                         SnippetSpillBase - static_cast<int32_t>(4 * I) - 4,
                         Inst.Words);
  if (NeedCCSave) {
    bumpStat("eel.snippet.ccsaves");
    Target.emitSaveCC(CCScratch, Inst.Words);
  }
  Inst.BodyBegin = static_cast<unsigned>(Inst.Words.size());

  // Body with placeholders rewritten.
  auto Map = [&Inst](unsigned Reg) -> unsigned {
    return Reg < 32 ? Inst.RegMap[Reg] : Reg;
  };
  for (MachWord W : Snippet.body()) {
    std::optional<MachWord> New = Target.rewriteRegisters(W, Map);
    if (!New)
      return Error("snippet instruction cannot be register-rewritten");
    Inst.Words.push_back(*New);
  }

  // Epilogue: CC restore, then spill reloads.
  if (NeedCCSave)
    Target.emitRestoreCC(CCScratch, Inst.Words);
  for (size_t I = Spilled.size(); I-- > 0;)
    Target.emitLoadWord(Spilled[I], SP,
                        SnippetSpillBase - static_cast<int32_t>(4 * I) - 4,
                        Inst.Words);

  Inst.SpillCount = static_cast<unsigned>(Spilled.size());
  if (Inst.SpillCount)
    bumpStat("eel.snippet.spills", Inst.SpillCount);
  Inst.SavedCC = NeedCCSave;
  return Inst;
}
