//===- core/RegAlloc.h - Snippet register scavenging -------------*- C++ -*-===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Context-dependent register allocation for snippets (§3.5): EEL finds the
/// registers live at the insertion point and assigns dead ones to the
/// snippet's placeholder registers ("register scavenging"). When too few
/// dead registers exist, the snippet is wrapped with code that spills live
/// registers to a stack red zone; when the snippet clobbers live condition
/// codes, it is wrapped with CC save/restore.
///
//===----------------------------------------------------------------------===//

#ifndef EEL_CORE_REGALLOC_H
#define EEL_CORE_REGALLOC_H

#include "core/Snippet.h"
#include "support/Error.h"

namespace eel {

/// Stack offsets below SP reserved for EEL-inserted code. The run-time
/// translator uses [sp-64, sp-96); snippet spills use [sp-96, sp-160).
/// Programs in this world never touch memory below SP (no signal handlers,
/// no red-zone use by compilers), which makes both safe.
enum : int32_t { SnippetSpillBase = -96, SnippetSpillLimit = -160 };

/// The allocator's decision for one site, computed without emitting any
/// code: which registers the snippet receives (in assignment order), the
/// subset that must be spilled because they are live, and whether the
/// condition codes need save/restore. instantiateSnippet realizes exactly
/// this plan; the verifier's scavenging audit judges the plan directly and
/// skips the emission cost.
struct ScavengePlan {
  std::vector<unsigned> Granted; ///< Assignment order: placeholders, then
                                 ///< the CC scratch register if needed.
  RegSet GrantedSet;             ///< The same registers as a set.
  RegSet SpilledSet;             ///< Granted registers that were live.
  bool NeedCCSave = false;       ///< Snippet clobbers live condition codes.
};

/// Plans the register assignment for \p Snippet at a site where \p Live
/// registers are live. Fails only if the snippet demands more registers
/// than can be scavenged or spilled.
Expected<ScavengePlan> planScavenge(const TargetInfo &Target,
                                    const CodeSnippet &Snippet,
                                    const RegSet &Live);

/// Instantiates \p Snippet for a site where \p Live registers are live.
/// Returns the wrapped, register-allocated code. Fails only if the snippet
/// demands more registers than can be spilled.
Expected<SnippetInstance> instantiateSnippet(const TargetInfo &Target,
                                             const CodeSnippet &Snippet,
                                             const RegSet &Live);

} // namespace eel

#endif // EEL_CORE_REGALLOC_H
