//===- core/Snippet.cpp - Foreign-code snippets --------------------------------===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//

#include "core/Snippet.h"

using namespace eel;

CodeSnippet::CodeSnippet(std::vector<MachWord> BodyIn, RegSet RegsToAllocateIn,
                         RegSet ForbiddenIn)
    : Body(std::move(BodyIn)), RegsToAllocate(RegsToAllocateIn),
      Forbidden(ForbiddenIn) {}

CodeSnippet::~CodeSnippet() = default;

std::vector<unsigned> eel::choosePlaceholderRegs(const TargetInfo &Target,
                                                 unsigned Count,
                                                 RegSet Avoid) {
  Avoid.insert(Target.conventions().Reserved);
  std::vector<unsigned> Regs;
  for (unsigned Reg = 1; Reg < Target.numRegisters() && Regs.size() < Count;
       ++Reg)
    if (!Avoid.contains(Reg))
      Regs.push_back(Reg);
  assert(Regs.size() == Count && "not enough placeholder registers");
  return Regs;
}
