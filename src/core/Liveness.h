//===- core/Liveness.h - Live-register analysis ------------------*- C++ -*-===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Backward live-register analysis over a routine's CFG (§3.3 lists it among
/// EEL's standard analyses). Its primary customer is snippet register
/// scavenging (§3.5): EEL finds the registers live at an insertion point and
/// assigns dead ones to the snippet. Condition codes participate as the
/// pseudo-register RegIdCC — the Blizzard-S optimization in §5 ("a faster
/// test sequence when condition codes are not live") queries exactly this.
///
/// Conservatism at routine boundaries: returns treat callee-saved and
/// return-value registers as live; calls use argument registers and clobber
/// caller-saved ones; unresolved indirect jumps and jumps out of the
/// routine treat every register as live.
///
//===----------------------------------------------------------------------===//

#ifndef EEL_CORE_LIVENESS_H
#define EEL_CORE_LIVENESS_H

#include "core/Cfg.h"

#include <vector>

namespace eel {

class Liveness {
public:
  explicit Liveness(const Cfg &G);

  RegSet liveIn(const BasicBlock *B) const { return In[B->id()]; }
  RegSet liveOut(const BasicBlock *B) const { return Out[B->id()]; }

  /// Registers live immediately before / after instruction \p InstIndex of
  /// \p B (i.e. the sets snippets inserted there must preserve).
  RegSet liveBefore(const BasicBlock *B, unsigned InstIndex) const;
  RegSet liveAfter(const BasicBlock *B, unsigned InstIndex) const;

  /// Registers live while traversing \p E (code added along the edge must
  /// preserve exactly these).
  RegSet liveOnEdge(const Edge *E) const;

  /// All registers this target has (general registers plus condition
  /// codes), the universe for "dead register" computations.
  RegSet allRegs() const { return All; }

private:
  RegSet transferCall(const BasicBlock *B, RegSet LiveOutSet) const;
  void compute(const Cfg &G);

  const Cfg &Graph;
  RegSet All;
  RegSet ReturnLive;
  std::vector<RegSet> In, Out;
};

} // namespace eel

#endif // EEL_CORE_LIVENESS_H
