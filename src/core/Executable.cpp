//===- core/Executable.cpp - Executable editing -------------------------------===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//

#include "core/Executable.h"

#include "support/Error.h"
#include "support/Trace.h"

#include <algorithm>
#include <thread>

using namespace eel;

Executable::Executable(SxfFile ImageIn)
    : Executable(std::move(ImageIn), Options()) {}

Executable::Executable(SxfFile ImageIn, Options OptsIn)
    : Image(std::move(ImageIn)), Opts(OptsIn),
      Target(targetFor(Image.Arch)), Pool(Target) {
  // Construction is a quiescent point, so flipping the process-wide trace
  // gate here is safe. Only enable — never disable — so one untraced
  // Executable can't silence another's active trace.
  if (Opts.Trace)
    traceSetEnabled(true);
  // Same one-way rule for the log gate: Off leaves the process-wide level
  // where another Executable (or the embedding daemon) set it.
  if (Opts.Log != LogLevel::Off)
    logSetLevel(Opts.Log);
  // Fresh data (counters, tables) goes after the highest existing segment.
  Addr High = 0;
  for (const SxfSegment &Seg : Image.Segments)
    High = std::max(High, Seg.VAddr + Seg.MemSize);
  NextDataAddr = (High + 15) & ~15u;
  // One decode-index slot per text word: the per-address probe that makes
  // repeat decoding of the same address a single load.
  if (const SxfSegment *Text = Image.segment(SegKind::Text))
    Pool.attachDecodeIndex(Text->VAddr, Text->Bytes.size() / 4);
}

Executable::~Executable() = default;

Expected<std::unique_ptr<Executable>>
Executable::open(const std::string &Path, Options Opts) {
  Expected<SxfFile> File = SxfFile::readFromFile(Path);
  if (File.hasError())
    return File.error();
  Expected<std::unique_ptr<Executable>> Exec =
      openImage(std::move(File.value()), Opts);
  if (Exec.hasError())
    return Error(Exec.error()).inFile(Path);
  return Exec;
}

Expected<std::unique_ptr<Executable>> Executable::openImage(SxfFile Image,
                                                            Options Opts) {
  Expected<bool> Valid = Image.validate();
  if (Valid.hasError())
    return Valid.error();
  const SxfSegment *Text = Image.segment(SegKind::Text);
  if (!Text || Text->Bytes.empty())
    return Error(ErrorCode::NoTextSegment,
                 "image has no text segment to analyze");
  return std::make_unique<Executable>(std::move(Image), Opts);
}

Expected<std::unique_ptr<Executable>>
Executable::open(const std::string &Path) {
  return open(Path, Options());
}

Expected<std::unique_ptr<Executable>> Executable::openImage(SxfFile Image) {
  return openImage(std::move(Image), Options());
}

unsigned Executable::effectiveThreads() const {
  if (Opts.Threads != 0)
    return Opts.Threads;
  unsigned HW = std::thread::hardware_concurrency();
  return HW ? HW : 1;
}

Addr Executable::textBase() const {
  const SxfSegment *Text = Image.segment(SegKind::Text);
  assert(Text && "executable has no text segment");
  return Text->VAddr;
}

Addr Executable::textEnd() const {
  const SxfSegment *Text = Image.segment(SegKind::Text);
  assert(Text && "executable has no text segment");
  return Text->VAddr + static_cast<Addr>(Text->Bytes.size());
}

std::optional<uint32_t> Executable::inferredCellValue(Addr Cell) const {
  auto It = std::lower_bound(
      InferredCells.begin(), InferredCells.end(), Cell,
      [](const std::pair<Addr, uint32_t> &E, Addr A) { return E.first < A; });
  if (It == InferredCells.end() || It->first != Cell)
    return std::nullopt;
  return It->second;
}

const IndirectResolution *Executable::inferredSite(Addr JumpAddr) const {
  auto It = InferredSites.find(JumpAddr);
  return It == InferredSites.end() ? nullptr : &It->second;
}

uint8_t Executable::inferredConfidence(Addr RoutineStart) const {
  auto It = InferredConfidence.find(RoutineStart);
  return It == InferredConfidence.end() ? 0 : It->second;
}

Routine *Executable::routineContaining(Addr A) const {
  for (const auto &R : Routines)
    if (R->contains(A))
      return R.get();
  return nullptr;
}

Routine *Executable::findRoutine(const std::string &Name) const {
  for (const auto &R : Routines)
    if (R->name() == Name)
      return R.get();
  return nullptr;
}

std::vector<Routine *> Executable::hiddenRoutines() const {
  std::vector<Routine *> Result;
  for (const auto &R : Routines)
    if (R->hidden() && !R->isData())
      Result.push_back(R.get());
  return Result;
}

void Executable::resetEdits() {
  for (const auto &R : Routines)
    if (Cfg *Graph = R->cachedCfg())
      Graph->clearEdits();
  AppendedData.clear();
  AddedRoutines.clear();
  // Recompute the fresh-data base exactly as construction did, so a
  // reused analysis hands appendData the same addresses a cold run would
  // (byte-identity of cached-analysis output depends on it).
  Addr High = 0;
  for (const SxfSegment &Seg : Image.Segments)
    High = std::max(High, Seg.VAddr + Seg.MemSize);
  NextDataAddr = (High + 15) & ~15u;
  AddrMap.clear();
  Stats = EditStats();
}

Addr Executable::appendData(uint32_t Bytes, unsigned Align,
                            const std::string &Name,
                            std::vector<uint8_t> Initial) {
  assert(Align && (Align & (Align - 1)) == 0 && "alignment not a power of 2");
  assert(Initial.empty() || Initial.size() <= Bytes);
  NextDataAddr = (NextDataAddr + Align - 1) & ~(Align - 1);
  DataBlob Blob;
  Blob.Address = NextDataAddr;
  Blob.Size = Bytes;
  Blob.Align = Align;
  Blob.Name = Name;
  Blob.Initial = std::move(Initial);
  AppendedData.push_back(std::move(Blob));
  NextDataAddr += Bytes;
  return AppendedData.back().Address;
}

unsigned Executable::addRoutineAsm(const std::string &Name,
                                   std::string AsmText) {
  AddedRoutine R;
  R.Name = Name;
  R.AsmText = std::move(AsmText);
  AddedRoutines.push_back(std::move(R));
  return static_cast<unsigned>(AddedRoutines.size() - 1);
}

Addr Executable::editedAddr(Addr A) const {
  auto It = AddrMap.find(A);
  assert(It != AddrMap.end() &&
         "no edited address: writeEditedExecutable not run or address "
         "is not an instruction start");
  return It->second;
}

Addr Executable::editedAddrOfAdded(unsigned Id) const {
  assert(Id < AddedRoutines.size() && "bad added-routine id");
  assert(AddedRoutines[Id].PlacedAddr && "edited executable not written yet");
  return AddedRoutines[Id].PlacedAddr;
}
