//===- core/Cfg.h - Control-flow graphs --------------------------*- C++ -*-===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// EEL's primary program representation (§3.3 of the paper): a control-flow
/// graph per routine whose nodes are basic blocks and whose edges represent
/// control flow. Machine instructions' *internal* control flow is made
/// explicit so that instructions appear to have none:
///
///  * a delay-slot instruction lives in its own DelaySlot block placed on
///    the edges along which it executes — on the taken edge only for an
///    annulled conditional branch (Figure 3), duplicated along both edges
///    for a non-annulled one, on the single outgoing edge of unconditional
///    transfers, and nowhere for annul-always forms;
///  * a zero-length CallSurrogate block stands for the control transfer and
///    side effects of a callee's body;
///  * pseudo Entry blocks (one per entry point) and a single Exit block
///    bound the graph.
///
/// Blocks and edges that transfer control out of the routine are marked
/// uneditable (§3.3 reports 15–20% of them are). Edits — deleting
/// instructions, adding snippets before/after an instruction or along an
/// edge — accumulate in a batch and are applied when the edited routine is
/// produced (§3.3.1).
///
//===----------------------------------------------------------------------===//

#ifndef EEL_CORE_CFG_H
#define EEL_CORE_CFG_H

#include "core/Instruction.h"
#include "core/Snippet.h"
#include "support/Arena.h"

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

namespace eel {

class BasicBlock;
class Cfg;
class Executable;
class Routine;

/// 32-bit handles into a graph's flat instruction-row and block arrays.
/// The IR is structure-of-arrays: instruction occurrences live as dense
/// rows owned by the Cfg, and blocks address contiguous row ranges instead
/// of owning per-block vectors.
using InstrIdx = uint32_t;
using BlockIdx = uint32_t;
inline constexpr InstrIdx InvalidInstrIdx = 0xFFFFFFFFu;

enum class BlockKind : uint8_t {
  Normal,
  DelaySlot,     ///< Holds one delay-slot instruction copy.
  CallSurrogate, ///< Zero-length stand-in for a callee's body.
  Entry,         ///< Pseudo block; one per entry point.
  Exit,          ///< Pseudo block; single sink.
};

enum class EdgeKind : uint8_t {
  Fallthrough,
  Taken,
  NotTaken,
  UncondJump,
  CallFlow,      ///< Call → delay → surrogate → continuation chain.
  SwitchCase,    ///< Resolved indirect-jump case edge.
  ExitReturn,    ///< Return to caller.
  ExitInterJump, ///< Direct transfer out of the routine (tail jump).
  ExitUnresolved,///< Unanalyzable indirect jump (run-time translation).
  EntryEdge,
};

/// One instruction occurrence in a block. Delay-slot duplication can place
/// the same original instruction (same OrigAddr) in several blocks.
struct CfgInst {
  const Instruction *Inst = nullptr;
  Addr OrigAddr = 0;
};

class Edge {
public:
  Edge(unsigned Id, BasicBlock *Src, BasicBlock *Dst, EdgeKind Kind)
      : Id(Id), Src(Src), Dst(Dst), Kind(Kind) {}

  unsigned id() const { return Id; }
  BasicBlock *src() const { return Src; }
  BasicBlock *dst() const { return Dst; }
  EdgeKind kind() const { return Kind; }
  bool editable() const { return Editable; }
  void setUneditable() { Editable = false; }

  /// Adds foreign code along this edge (the paper's add_code_along).
  /// Asserts the edge is editable.
  void addCodeAlong(SnippetPtr Snippet);

  /// Owning graph (set at creation).
  Cfg *parent() const { return Parent; }

private:
  friend class Cfg;
  friend struct VerifierTestAccess; ///< Negative tests corrupt graphs.
  unsigned Id;
  BasicBlock *Src;
  BasicBlock *Dst;
  EdgeKind Kind;
  bool Editable = true;
  Cfg *Parent = nullptr;
};

/// A basic block: a dense row range in its graph's flat instruction
/// arrays plus arena-packed adjacency. Trivially destructible — blocks
/// are bump-allocated by their Cfg and never individually destroyed.
class BasicBlock {
public:
  BasicBlock(Cfg &ParentGraph, unsigned Id, BlockKind Kind, Addr Anchor)
      : Parent(&ParentGraph), Id(Id), Kind(Kind), Anchor(Anchor) {}

  unsigned id() const { return Id; }
  BlockKind kind() const { return Kind; }

  /// Address of the block's first instruction; for pseudo and surrogate
  /// blocks, the address they are anchored at.
  Addr anchor() const { return Anchor; }

  /// This block's instruction occurrences: a contiguous slice of the
  /// graph's flat row array (defined after Cfg below).
  std::span<const CfgInst> insts() const;

  /// Index of the block's first row in Cfg::instRows(); rows
  /// [firstInstr(), firstInstr() + size()) belong to this block.
  InstrIdx firstInstr() const { return FirstRow; }

  unsigned size() const { return NumRows; }
  bool empty() const { return NumRows == 0; }

  std::span<Edge *const> succ() const { return {SuccArr, SuccCount}; }
  std::span<Edge *const> pred() const { return {PredArr, PredCount}; }

  bool editable() const { return Editable; }
  void setUneditable() { Editable = false; }

  /// The control transfer terminating this block, if any.
  const Instruction *terminator() const;

  /// For CallSurrogate blocks: the direct callee address, if known.
  std::optional<Addr> callTarget() const { return CallTarget; }
  bool callIsIndirect() const { return CallIndirect; }

private:
  friend class Cfg;
  friend class CfgBuilder;
  friend struct VerifierTestAccess; ///< Negative tests corrupt graphs.

  void addSucc(Edge *E, BumpArena &Arena);
  void addPred(Edge *E, BumpArena &Arena);
  void removePred(Edge *E);

  Cfg *Parent;
  unsigned Id;
  BlockKind Kind;
  Addr Anchor;
  InstrIdx FirstRow = 0;
  uint32_t NumRows = 0;
  Edge **SuccArr = nullptr;
  uint32_t SuccCount = 0, SuccCap = 0;
  Edge **PredArr = nullptr;
  uint32_t PredCount = 0, PredCap = 0;
  bool Editable = true;
  std::optional<Addr> CallTarget;
  bool CallIndirect = false;
};

/// How an indirect jump was resolved (§3.3's slicing results).
struct IndirectResolution {
  enum class Kind : uint8_t {
    DispatchTable, ///< Jump through a bounded table of code addresses.
    Literal,       ///< Jump to a statically known address.
    CellPointer,   ///< Jump through a single known memory cell.
    Unanalyzable,  ///< Slice failed; needs run-time translation.
  };
  Kind K = Kind::Unanalyzable;
  Addr TableAddr = 0;           ///< DispatchTable: first entry address.
  unsigned EntryCount = 0;      ///< DispatchTable: number of entries.
  bool BoundsProven = false;    ///< Entry count came from a bounds check.
  std::vector<Addr> Targets;    ///< DispatchTable/Literal targets.
  Addr CellAddr = 0;            ///< CellPointer: the cell's address. Also
                                ///  set on a Literal recovered through a
                                ///  constant cell, so the editor rewrites
                                ///  that cell precisely.
  bool TailCallIdiom = false;   ///< Frame-popping tail call (§3.3's idiom).
  bool Inferred = false;        ///< Recovered only with eel-infer's
                                ///  constant-cell facts; plain slicing
                                ///  would have reported CellPointer or
                                ///  Unanalyzable.
};

/// An indirect control transfer site within a routine.
struct IndirectSite {
  BasicBlock *Block = nullptr; ///< Block terminated by the indirect jump.
  Addr JumpAddr = 0;
  bool IsCall = false;
  IndirectResolution Resolution;
};

/// A pending modification, accumulated until the routine is produced.
struct Edit {
  enum class Kind : uint8_t { Before, After, OnEdge, Delete, Replace };
  Kind K = Kind::Before;
  BasicBlock *Block = nullptr;
  unsigned InstIndex = 0;
  Edge *E = nullptr;
  SnippetPtr Snippet;
  MachWord NewWord = 0; ///< Replacement word (Kind::Replace).
  unsigned Seq = 0; ///< Application order among edits at the same point.
};

/// The control-flow graph of one routine.
class Cfg {
public:
  Cfg(Routine &Parent, const TargetInfo &Target);
  ~Cfg();

  Routine &routine() const { return Parent; }
  const TargetInfo &target() const { return Target; }

  /// Blocks and edges in creation order, bump-allocated from this graph's
  /// arena; index position equals id().
  const std::vector<BasicBlock *> &blocks() const { return Blocks; }
  const std::vector<Edge *> &edges() const { return Edges; }

  /// The flat instruction rows, in block-emission order: each block's
  /// occurrences are the contiguous slice [firstInstr(), +size()).
  std::span<const CfgInst> instRows() const { return Rows; }

  /// Per-row interned-operand indices, parallel to instRows(); resolve
  /// through operandTable() (Pair::First = reads mask, Second = writes).
  std::span<const uint32_t> rowOps() const { return RowOps; }

  /// The owning pool's interned-operand table (null only for graphs built
  /// outside an executable, which analyses fall back from).
  const InternedPairTable *operandTable() const { return OpsTable; }

  /// Arena holding the graph's blocks, edges, and adjacency arrays.
  BumpArena &arena() { return IR; }

  const std::vector<BasicBlock *> &entryBlocks() const { return Entries; }
  BasicBlock *exitBlock() const { return Exit; }

  /// False when an unanalyzable indirect jump prevents complete static
  /// control-flow knowledge; the editor then adds run-time translation so
  /// control still reaches the correct edited instruction (§3.3).
  bool complete() const { return Complete; }
  bool exotic() const { return Exotic; }
  bool reachedInvalid() const { return ReachedInvalid; }

  /// True when the routine cannot be edited at all (data reached from an
  /// entry, a delayed transfer inside a delay slot, or control running off
  /// the routine's end); the editor copies such routines verbatim.
  bool unsupported() const { return Unsupported; }
  const std::string &unsupportedReason() const { return UnsupportedReason; }

  const std::vector<IndirectSite> &indirectSites() const {
    return IndirectSites;
  }

  /// Direct transfers whose target lies outside the routine: pairs of
  /// (block, original target address).
  const std::vector<std::pair<BasicBlock *, Addr>> &interJumps() const {
    return InterJumps;
  }

  // --- Editing (batch; see §3.3.1) ---------------------------------------

  void addCodeBefore(BasicBlock *Block, unsigned InstIndex,
                     SnippetPtr Snippet);
  void addCodeAfter(BasicBlock *Block, unsigned InstIndex, SnippetPtr Snippet);
  void addCodeOnEdge(Edge *E, SnippetPtr Snippet);
  void deleteInst(BasicBlock *Block, unsigned InstIndex);

  /// Replaces a non-transfer instruction with \p NewWord (also required to
  /// be a non-transfer) — the capability the paper contrasts with ATOM,
  /// which "does not permit existing instructions to be modified".
  void replaceInst(BasicBlock *Block, unsigned InstIndex, MachWord NewWord);

  const std::vector<Edit> &edits() const { return Edits; }
  bool edited() const { return !Edits.empty(); }

  /// Discards every pending edit, returning the graph to its just-built
  /// state. Edits are a batch applied at write time — the graph itself is
  /// never mutated by them — so after clearing, the same analyzed CFG can
  /// host a fresh batch (eel-serve reuses cached analyses this way).
  void clearEdits() { Edits.clear(); }

  // --- Lookup helpers ------------------------------------------------------

  /// Block whose first instruction is at \p A (Normal blocks only).
  BasicBlock *blockAt(Addr A) const;

  /// Statistics used by the §3.3/§5 benchmarks.
  struct Stats {
    unsigned NormalBlocks = 0;
    unsigned DelaySlotBlocks = 0;
    unsigned CallSurrogateBlocks = 0;
    unsigned EntryExitBlocks = 0;
    unsigned UneditableBlocks = 0;
    unsigned UneditableEdges = 0;
    unsigned TotalEdges = 0;
  };
  Stats stats() const;

private:
  friend class CfgBuilder;
  friend class Routine;
  friend struct VerifierTestAccess; ///< Negative tests corrupt graphs.

  BasicBlock *newBlock(BlockKind Kind, Addr Anchor);
  Edge *newEdge(BasicBlock *Src, BasicBlock *Dst, EdgeKind Kind);

  /// Appends one instruction row to \p Block. Blocks are filled strictly
  /// in creation order (asserted), which is what keeps each block's rows
  /// contiguous in the flat array.
  void appendInst(BasicBlock *Block, const Instruction *I, Addr OrigAddr);

  Routine &Parent;
  const TargetInfo &Target;
  BumpArena IR;
  std::vector<BasicBlock *> Blocks;
  std::vector<Edge *> Edges;
  std::vector<CfgInst> Rows;
  std::vector<uint32_t> RowOps;
  const InternedPairTable *OpsTable = nullptr;
  std::vector<BasicBlock *> Entries;
  BasicBlock *Exit = nullptr;
  std::unordered_map<Addr, BasicBlock *> ByAddr;
  bool Complete = true;
  bool Exotic = false;
  bool ReachedInvalid = false;
  bool Unsupported = false;
  std::string UnsupportedReason;
  std::vector<IndirectSite> IndirectSites;
  std::vector<std::pair<BasicBlock *, Addr>> InterJumps;
  std::vector<Edit> Edits;
  unsigned NextSeq = 0;
};

inline std::span<const CfgInst> BasicBlock::insts() const {
  // Computed against the graph's current row storage on every call: the
  // rows vector may reallocate while the graph is still being built, so
  // blocks hold indices, never pointers.
  return Parent->instRows().subspan(FirstRow, NumRows);
}

inline const Instruction *BasicBlock::terminator() const {
  if (NumRows == 0)
    return nullptr;
  const Instruction *Last = Parent->instRows()[FirstRow + NumRows - 1].Inst;
  return Last->isControlTransfer() ? Last : nullptr;
}

/// Builds the CFG for \p R. Defined in CfgBuild.cpp.
std::unique_ptr<Cfg> buildCfg(Routine &R);

} // namespace eel

#endif // EEL_CORE_CFG_H
