//===- core/CallGraph.cpp - Interprocedural call graph -------------------------===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//

#include "core/CallGraph.h"

#include <algorithm>
#include <set>

using namespace eel;

CallGraph CallGraph::build(Executable &Exec) {
  Exec.readContents();
  CallGraph CG;
  for (const auto &R : Exec.routines()) {
    CG.Index[R.get()] = CG.Nodes.size();
    Node N;
    N.R = R.get();
    CG.Nodes.push_back(N);
  }

  auto AddEdge = [&CG](Routine *From, Routine *To) {
    Node &F = CG.Nodes[CG.Index[From]];
    if (std::find(F.Callees.begin(), F.Callees.end(), To) == F.Callees.end())
      F.Callees.push_back(To);
    Node &T = CG.Nodes[CG.Index[To]];
    if (std::find(T.Callers.begin(), T.Callers.end(), From) ==
        T.Callers.end())
      T.Callers.push_back(From);
  };

  for (const auto &R : Exec.routines()) {
    if (R->isData())
      continue;
    Cfg *G = R->controlFlowGraph();
    if (G->unsupported())
      continue;
    Node &N = CG.Nodes[CG.Index[R.get()]];
    for (const auto &Block : G->blocks()) {
      if (Block->kind() != BlockKind::CallSurrogate)
        continue;
      if (Block->callIsIndirect()) {
        ++N.IndirectCallSites;
        continue; // resolved below via the indirect-site list
      }
      if (std::optional<Addr> T = Block->callTarget()) {
        if (Routine *Callee = Exec.routineContaining(*T)) {
          ++N.DirectCallSites;
          AddEdge(R.get(), Callee);
        }
      }
    }
    for (const IndirectSite &Site : G->indirectSites()) {
      if (!Site.IsCall)
        continue;
      if (Site.Resolution.K == IndirectResolution::Kind::CellPointer) {
        // Statically initialized function-pointer cell: the initial value
        // gives a (may-)callee.
        std::optional<uint32_t> Init =
            Exec.fetchWord(Site.Resolution.CellAddr);
        if (Init && Exec.isTextAddr(*Init)) {
          if (Routine *Callee = Exec.routineContaining(*Init)) {
            ++N.ResolvedIndirectSites;
            AddEdge(R.get(), Callee);
          }
        }
      } else if (Site.Resolution.K == IndirectResolution::Kind::Literal) {
        if (Routine *Callee =
                Exec.routineContaining(Site.Resolution.Targets[0])) {
          ++N.ResolvedIndirectSites;
          AddEdge(R.get(), Callee);
        }
      }
    }
  }
  for (Node &N : CG.Nodes) {
    auto ByAddr = [](const Routine *A, const Routine *B) {
      return A->startAddr() < B->startAddr();
    };
    std::sort(N.Callees.begin(), N.Callees.end(), ByAddr);
    std::sort(N.Callers.begin(), N.Callers.end(), ByAddr);
  }
  return CG;
}

const CallGraph::Node *CallGraph::node(const Routine *R) const {
  auto It = Index.find(R);
  return It == Index.end() ? nullptr : &Nodes[It->second];
}

std::vector<Routine *> CallGraph::roots() const {
  std::vector<Routine *> Roots;
  for (const Node &N : Nodes) {
    bool HasExternalCaller = false;
    for (Routine *Caller : N.Callers)
      if (Caller != N.R)
        HasExternalCaller = true;
    if (!HasExternalCaller && !N.R->isData())
      Roots.push_back(N.R);
  }
  return Roots;
}

std::vector<Routine *> CallGraph::postorderFrom(Routine *Root) const {
  std::vector<Routine *> Order;
  std::set<const Routine *> Visited;
  // Iterative DFS.
  std::vector<std::pair<Routine *, size_t>> Stack{{Root, 0}};
  Visited.insert(Root);
  while (!Stack.empty()) {
    auto &[R, Next] = Stack.back();
    const Node *N = node(R);
    if (N && Next < N->Callees.size()) {
      Routine *Callee = N->Callees[Next++];
      if (Visited.insert(Callee).second)
        Stack.push_back({Callee, 0});
      continue;
    }
    Order.push_back(R);
    Stack.pop_back();
  }
  return Order;
}
