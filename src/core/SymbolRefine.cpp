//===- core/SymbolRefine.cpp - Symbol-table refinement -------------------===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Implements Executable::readContents(): the §3.1 analysis that refines an
/// unreliable symbol table into an accurate routine map.
///
///   Stage 1  Read the symbol table; drop duplicate, temporary, and
///            debugging labels, labels not on instruction boundaries, and
///            labels that are branch/jump (not call!) targets from the
///            preceding routine — those are probably internal labels.
///   Stage 2  For stripped executables (and Options::NoSymbols), seed the
///            routine set from the eel-infer fixpoint (analysis/Infer.h):
///            heuristic disassembly votes in routine entries — the entry
///            point and first text address always, plus call targets,
///            inferred indirect-transfer targets, and corroborated code
///            pointers — and its resolved dispatch facts are kept for
///            CfgBuild to consume.
///   Stage 3  Control transfers out of a routine, and calls on addresses
///            not in the initial set, add entry points to the routines
///            containing their destinations. This is conservative: it can
///            invent invalid entries when data is decoded as instructions,
///            but it never misses one.
///   Stage 4  Reachability from each routine's entries: an entry that lands
///            on an invalid instruction marks the extent as data (a table
///            carrying a routine-like symbol); unreachable instructions at
///            the end of a routine become a new, hidden routine, which is
///            analyzed in turn and may itself contribute entry points.
///
//===----------------------------------------------------------------------===//

#include "core/Executable.h"

#include "analysis/Infer.h"
#include "support/Metrics.h"
#include "support/Stats.h"
#include "support/ThreadPool.h"
#include "support/Trace.h"

#include <algorithm>
#include <map>
#include <set>

using namespace eel;

namespace {

/// One direct control transfer discovered in the linear scan.
struct TransferSite {
  Addr From = 0;
  Addr To = 0;
  bool IsCall = false;
};

} // namespace

/// Follows control flow from \p Entries within [Lo, Hi), recording reached
/// instruction addresses. Returns false if a reachable word is invalid.
static bool scanReachable(Executable &Exec, const std::vector<Addr> &Entries,
                          Addr Lo, Addr Hi, std::set<Addr> &Reached) {
  bool AllValid = true;
  std::vector<Addr> Worklist(Entries.begin(), Entries.end());
  while (!Worklist.empty()) {
    Addr A = Worklist.back();
    Worklist.pop_back();
    if (A < Lo || A >= Hi || (A & 3) || Reached.count(A))
      continue;
    std::optional<MachWord> W = Exec.fetchWord(A);
    if (!W) {
      AllValid = false;
      continue;
    }
    const Instruction *I = Exec.pool().getAt(A, *W);
    Reached.insert(A);
    if (isa<InvalidInst>(I)) {
      AllValid = false;
      continue;
    }
    if (!I->isControlTransfer()) {
      Worklist.push_back(A + 4);
      continue;
    }
    // The delay-slot instruction is reached whenever it can execute.
    if (I->hasDelaySlot() &&
        I->delayBehavior() != DelayBehavior::AnnulAlways &&
        A + 4 < Hi) {
      std::optional<MachWord> DW = Exec.fetchWord(A + 4);
      if (DW) {
        Reached.insert(A + 4);
        if (isa<InvalidInst>(Exec.pool().getAt(A + 4, *DW)))
          AllValid = false;
      }
    }
    // Fallthrough/continuation address: past the delay slot when one exists.
    Addr Past = A + (I->hasDelaySlot() ? 8 : 4);
    switch (I->kind()) {
    case InstKind::Branch: {
      std::optional<Addr> T = I->directTarget(A);
      if (T && *T >= Lo && *T < Hi)
        Worklist.push_back(*T);
      Worklist.push_back(Past);
      break;
    }
    case InstKind::Jump: {
      std::optional<Addr> T = I->directTarget(A);
      if (T && *T >= Lo && *T < Hi)
        Worklist.push_back(*T);
      break;
    }
    case InstKind::Call:
    case InstKind::IndirectCall:
      Worklist.push_back(Past);
      break;
    case InstKind::Return:
    case InstKind::IndirectJump:
      // Indirect-jump targets are handled during CFG construction; for
      // extent purposes the reachable set stops here.
      break;
    default:
      Worklist.push_back(A + 4);
      break;
    }
  }
  return AllValid;
}

Expected<bool> Executable::readContents() {
  if (Analyzed)
    return true;
  if (!Image.segment(SegKind::Text))
    return Error(ErrorCode::NoTextSegment,
                 "image has no text segment to analyze");
  Analyzed = true;

  EEL_TRACE_SCOPE("readContents");
  // Stages 1-4 below are the symbol-refinement analysis proper; the
  // parallel pre-analysis at the end accounts to time.cfg_build_us /
  // time.liveness_us instead (see DESIGN.md "Timer nesting").
  std::unique_ptr<TraceSpan> RefineSpan;
  if (traceEnabled())
    RefineSpan = std::make_unique<TraceSpan>("symbol_refine");
  auto RefineTimer = std::make_unique<ScopedStatTimer>("time.symbol_refine_us");

  const Addr TB = textBase();
  const Addr TE = textEnd();

  // Linear scan of the text segment for direct transfers (used by stages
  // 1–3). Data decoded as instructions contributes bogus sites; the later
  // stages are designed to tolerate that.
  std::vector<TransferSite> Transfers;
  for (Addr A = TB; A + 4 <= TE; A += 4) {
    std::optional<MachWord> W = fetchWord(A);
    if (!W)
      break;
    const Instruction *I = Pool.get(*W);
    std::optional<Addr> T;
    bool IsCall = false;
    switch (I->kind()) {
    case InstKind::Call:
      T = I->directTarget(A);
      IsCall = true;
      break;
    case InstKind::Branch:
    case InstKind::Jump:
      T = I->directTarget(A);
      break;
    default:
      break;
    }
    if (T && *T >= TB && *T < TE && (*T & 3) == 0)
      Transfers.push_back({A, *T, IsCall});
  }

  // --- Stage 1 / Stage 2: initial candidate set ---------------------------
  std::map<Addr, std::string> Candidates;
  bool Stripped = true;
  if (!Opts.NoSymbols) {
    for (const SxfSymbol &Sym : Image.Symbols) {
      if (Sym.Value < TB || Sym.Value >= TE)
        continue;
      Stripped = false;
      if (Sym.Kind != SymKind::Routine)
        continue; // internal, debugging, and temporary labels
      if (Sym.Value & 3)
        continue; // not on an instruction boundary
      if (!Candidates.count(Sym.Value))
        Candidates[Sym.Value] = Sym.Name; // drop duplicates
    }
  }
  if (Stripped) {
    // No (trusted) symbol table: the eel-infer fixpoint derives routine
    // entries, constant code-pointer cells, and indirect-site resolutions
    // from the bytes alone (analysis/Infer.h). Its seeds subsume the old
    // naive stage 2 — entry point, first text address, call targets — and
    // its cell/site facts persist on the Executable, where backward
    // slicing and CFG construction consult them.
    InferResult Inferred = inferLayout(*this);
    InferenceRan = true;
    InferredSites = std::move(Inferred.Sites);
    for (const InferredRoutine &IR : Inferred.Routines) {
      if (!Candidates.count(IR.Lo))
        Candidates[IR.Lo] = IR.Name;
      InferredConfidence[IR.Lo] = static_cast<uint8_t>(IR.Confidence);
    }
  }
  if (Candidates.empty())
    Candidates[TB] = "text_start";

  // Stage 1 (cont.): drop labels that are branch/jump targets from the
  // preceding routine.
  {
    std::vector<std::pair<Addr, std::string>> Sorted(Candidates.begin(),
                                                     Candidates.end());
    std::map<Addr, std::string> Kept;
    Addr PrevStart = 0;
    for (size_t I = 0; I < Sorted.size(); ++I) {
      Addr C = Sorted[I].first;
      bool Drop = false;
      if (I > 0 && C != Image.Entry) {
        for (const TransferSite &Site : Transfers) {
          if (!Site.IsCall && Site.To == C && Site.From >= PrevStart &&
              Site.From < C) {
            Drop = true;
            break;
          }
        }
      }
      if (Drop)
        continue;
      Kept.insert(Sorted[I]);
      PrevStart = C;
    }
    Candidates = std::move(Kept);
  }

  // --- Build routines from candidate extents --------------------------------
  {
    std::vector<std::pair<Addr, std::string>> Sorted(Candidates.begin(),
                                                     Candidates.end());
    for (size_t I = 0; I < Sorted.size(); ++I) {
      Addr Lo = Sorted[I].first;
      Addr Hi = I + 1 < Sorted.size() ? Sorted[I + 1].first : TE;
      Routines.push_back(
          std::make_unique<Routine>(*this, Sorted[I].second, Lo, Hi));
    }
  }

  // --- Stage 3: entry points from inter-routine transfers -------------------
  for (const TransferSite &Site : Transfers) {
    Routine *From = routineContaining(Site.From);
    Routine *To = routineContaining(Site.To);
    if (!From || !To || From == To)
      continue;
    if (Site.To != To->startAddr())
      To->addEntryPoint(Site.To);
  }

  // --- Stage 4: reachability, data detection, hidden-routine discovery -----
  // Process newly created routines too (a discovered routine may itself
  // have an unreachable tail).
  for (size_t Index = 0; Index < Routines.size(); ++Index) {
    Routine &R = *Routines[Index];
    std::set<Addr> Reached;
    bool AllValid =
        scanReachable(*this, R.entryPoints(), R.startAddr(), R.endAddr(),
                      Reached);
    if (Reached.empty() || (!AllValid && Reached.size() <= R.entryPoints().size())) {
      // Every entry lands on data: this "routine" is a data table.
      R.IsData = true;
      bumpStat("eel.refine.data_tables");
      continue;
    }
    (void)AllValid;
    Addr HighWater = *Reached.rbegin() + 4;
    // Unreachable instructions at the end comprise another routine.
    if (HighWater + 4 <= R.endAddr()) {
      Addr TailLo = HighWater;
      std::optional<MachWord> W = fetchWord(TailLo);
      if (W) {
        auto Hidden = std::make_unique<Routine>(
            *this, "hidden_" + std::to_string(TailLo), TailLo, R.endAddr());
        Hidden->Hidden = true;
        R.Hi = TailLo;
        // Entry points previously attributed to R that now fall in the
        // tail move to the hidden routine.
        std::vector<Addr> Moved;
        for (Addr E : R.Entries)
          if (E >= TailLo)
            Moved.push_back(E);
        if (!Moved.empty()) {
          R.Entries.erase(
              std::remove_if(R.Entries.begin(), R.Entries.end(),
                             [TailLo](Addr E) { return E >= TailLo; }),
              R.Entries.end());
          for (Addr E : Moved)
            Hidden->addEntryPoint(E);
        }
        bumpStat("eel.refine.hidden_routines");
        Routines.push_back(std::move(Hidden));
      }
    }
  }

  // Keep routines sorted by address for deterministic iteration.
  std::sort(Routines.begin(), Routines.end(),
            [](const std::unique_ptr<Routine> &A,
               const std::unique_ptr<Routine> &B) {
              return A->startAddr() < B->startAddr();
            });
  RefineTimer.reset();
  RefineSpan.reset();
  bumpHistogram("refine.routines_per_image", Routines.size());

  // --- Parallel pre-analysis -----------------------------------------------
  // The remaining per-routine analyses — CFG construction with delay-slot
  // normalization, backward slicing of indirect-jump sites (both inside
  // buildCfg), and liveness — are independent across routines, so with
  // Threads != 1 they fan out over the pool now and later edits and layout
  // find them cached. Each routine is touched by exactly one worker; the
  // cross-routine state (instruction pool, stat registry) is sharded. The
  // serial path computes the same results lazily inside layoutRoutine, so
  // only the schedule differs, never the output.
  if (effectiveThreads() > 1 && !Routines.empty()) {
    // "pool." prefix: this span's presence depends on the thread count, so
    // determinism comparisons across 1 vs N threads exclude pool.* names.
    EEL_TRACE_SCOPE("pool.prebuild", "routines", uint64_t(Routines.size()));
    bool WantTranslation = Opts.EnableRuntimeTranslation;
    parallelForEach(effectiveThreads(), Routines.size(),
                    [this, WantTranslation](size_t Index) {
                      Routine &R = *Routines[Index];
                      if (R.isData())
                        return; // layout copies data verbatim, no CFG
                      Cfg *G = R.controlFlowGraph();
                      // Mirror layoutRoutine's condition so the set of
                      // analyses run matches the serial oracle exactly.
                      if (!G->unsupported() &&
                          (G->complete() || WantTranslation))
                        R.liveness();
                    });
  }
  return true;
}
