//===- core/Liveness.cpp - Live-register analysis -----------------------------===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//

#include "core/Liveness.h"

#include "support/Stats.h"
#include "support/Trace.h"

using namespace eel;

Liveness::Liveness(const Cfg &G) : Graph(G) {
  ScopedStatTimer Timer("time.liveness_us");
  EEL_TRACE_SCOPE("liveness", "blocks", uint64_t(G.blocks().size()));
  const TargetInfo &Target = G.target();
  const TargetConventions &Conv = Target.conventions();
  for (unsigned Reg = 1; Reg < Target.numRegisters(); ++Reg)
    All.insert(Reg);
  if (Target.hasConditionCodes())
    All.insert(RegIdCC);
  // At a return: callee-saved registers, return values, and the stack
  // belong to the caller. Condition codes do not survive returns.
  ReturnLive = (All - Conv.CallerSaved) | Conv.RetRegs;
  ReturnLive.insert(Conv.StackPointer);
  ReturnLive.insert(Conv.FramePointer);
  ReturnLive.remove(RegIdCC);
  compute(G);
}

/// Gen/kill transfer for a call-surrogate block.
RegSet Liveness::transferCall(const BasicBlock *B, RegSet LiveOutSet) const {
  const TargetConventions &Conv = Graph.target().conventions();
  (void)B;
  LiveOutSet.remove(Conv.CallerSaved); // clobbered by the callee
  LiveOutSet.insert(Conv.ArgRegs);     // possibly read by the callee
  LiveOutSet.insert(Conv.StackPointer);
  return LiveOutSet;
}

void Liveness::compute(const Cfg &G) {
  size_t N = G.blocks().size();
  In.assign(N, RegSet());
  Out.assign(N, RegSet());

  // Resolve each row's operand masks once up front through the interned
  // table: the backward scans below then run over two dense uint64 arrays
  // instead of chasing an Instruction pointer per row per fixpoint round.
  std::span<const uint32_t> RowOps = G.rowOps();
  const InternedPairTable *Ops = G.operandTable();
  std::vector<uint64_t> RowReads(RowOps.size()), RowWrites(RowOps.size());
  for (size_t I = 0; I < RowOps.size(); ++I) {
    if (Ops && RowOps[I] != Instruction::NoOpIndex) {
      InternedPairTable::Pair P = Ops->get(RowOps[I]);
      RowReads[I] = P.First;
      RowWrites[I] = P.Second;
    } else {
      const Instruction *Inst = G.instRows()[I].Inst;
      RowReads[I] = Inst->reads().mask();
      RowWrites[I] = Inst->writes().mask();
    }
  }

  bool Changed = true;
  while (Changed) {
    Changed = false;
    // Iterate blocks in reverse creation order — close enough to reverse
    // topological order that the fixpoint converges quickly.
    for (size_t Index = N; Index-- > 0;) {
      const BasicBlock *B = G.blocks()[Index];
      RegSet NewOut;
      for (const Edge *E : B->succ()) {
        switch (E->kind()) {
        case EdgeKind::ExitReturn:
          NewOut |= ReturnLive;
          break;
        case EdgeKind::ExitInterJump:
        case EdgeKind::ExitUnresolved:
          // Control leaves for an unknown context: everything may be read.
          NewOut |= All;
          break;
        default:
          NewOut |= In[E->dst()->id()];
          break;
        }
      }
      if (B->kind() == BlockKind::Exit)
        NewOut = ReturnLive;

      RegSet NewIn = NewOut;
      if (B->kind() == BlockKind::CallSurrogate) {
        NewIn = transferCall(B, NewOut);
      } else {
        uint64_t Mask = NewIn.mask();
        const InstrIdx First = B->firstInstr();
        for (InstrIdx I = First + B->size(); I-- > First;)
          Mask = (Mask & ~RowWrites[I]) | RowReads[I];
        NewIn = RegSet::fromMask(Mask);
      }
      if (NewIn != In[Index] || NewOut != Out[Index]) {
        In[Index] = NewIn;
        Out[Index] = NewOut;
        Changed = true;
      }
    }
  }
}

RegSet Liveness::liveBefore(const BasicBlock *B, unsigned InstIndex) const {
  assert(InstIndex <= B->insts().size() && "index out of range");
  RegSet Live = Out[B->id()];
  if (B->kind() == BlockKind::CallSurrogate)
    return transferCall(B, Live);
  for (size_t I = B->insts().size(); I-- > InstIndex;) {
    const Instruction *Inst = B->insts()[I].Inst;
    Live.remove(Inst->writes());
    Live |= Inst->reads();
  }
  return Live;
}

RegSet Liveness::liveAfter(const BasicBlock *B, unsigned InstIndex) const {
  return liveBefore(B, InstIndex + 1);
}

RegSet Liveness::liveOnEdge(const Edge *E) const {
  switch (E->kind()) {
  case EdgeKind::ExitReturn:
    return ReturnLive;
  case EdgeKind::ExitInterJump:
  case EdgeKind::ExitUnresolved:
    return All;
  default:
    return In[E->dst()->id()];
  }
}
