//===- core/CallGraph.h - Interprocedural call graph -------------*- C++ -*-===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The call-graph support the paper mentions alongside CFGs ("EEL also
/// supports interprocedural analysis and call graphs"). Nodes are routines;
/// edges come from direct call sites and from indirect calls whose
/// function-pointer cell the slicer resolved to a statically initialized
/// code address.
///
//===----------------------------------------------------------------------===//

#ifndef EEL_CORE_CALLGRAPH_H
#define EEL_CORE_CALLGRAPH_H

#include "core/Executable.h"

#include <map>
#include <vector>

namespace eel {

class CallGraph {
public:
  struct Node {
    Routine *R = nullptr;
    std::vector<Routine *> Callees; ///< Deduplicated, address order.
    std::vector<Routine *> Callers;
    unsigned DirectCallSites = 0;
    unsigned IndirectCallSites = 0;
    unsigned ResolvedIndirectSites = 0; ///< Via statically known cells.
  };

  /// Builds the graph (runs readContents and per-routine CFGs as needed).
  static CallGraph build(Executable &Exec);

  const Node *node(const Routine *R) const;
  const std::vector<Node> &nodes() const { return Nodes; }

  /// Routines with no callers other than themselves (roots; includes the
  /// entry routine).
  std::vector<Routine *> roots() const;

  /// Post-order over the call DAG from \p Root (cycles visited once).
  std::vector<Routine *> postorderFrom(Routine *Root) const;

private:
  std::vector<Node> Nodes;
  std::map<const Routine *, size_t> Index;
};

} // namespace eel

#endif // EEL_CORE_CALLGRAPH_H
