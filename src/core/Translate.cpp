//===- core/Translate.cpp - Run-time address translation ----------------------===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//

#include "core/Translate.h"

#include "isa/AriscEncoding.h"
#include "isa/MriscEncoding.h"
#include "isa/SriscEncoding.h"

#include <cstdarg>
#include <cstdio>

using namespace eel;

/// Formats an assembly template, substituting %u-style arguments.
static std::string formatAsm(const char *Format, ...) {
  char Buffer[4096];
  va_list Args;
  va_start(Args, Format);
  std::vsnprintf(Buffer, sizeof(Buffer), Format, Args);
  va_end(Args);
  return Buffer;
}

Expected<bool> eel::emitTranslationSite(const TargetInfo &Target,
                                        const IndirectInst &Jump,
                                        MachWord DelayWord,
                                        std::vector<MachWord> &Code,
                                        std::vector<Reloc> &Relocs) {
  const IndirectTargetInfo &Info = Jump.targetInfo();
  const Instruction *Delay = nullptr;
  // The caller passes the raw delay word; decode it for conflict checks.
  // (Allocating through the pool is unnecessary for this one-off check.)
  std::unique_ptr<Instruction> DelayOwned =
      makeInstruction(Target, DelayWord);
  Delay = DelayOwned.get();

  if (Target.arch() == TargetArch::Srisc) {
    using namespace srisc;
    // Protocol registers: g1 carries the target, g2 the translator entry.
    const unsigned G1 = 1, G2 = 2, SP = RegSP;
    unsigned Rd = Info.LinkReg;
    if (Rd == G1 || Rd == G2)
      return Error("indirect transfer links through a protocol register");

    // Where can the original delay instruction go? It must execute after
    // the target value is captured (the original computes its target at
    // issue time, before the delay slot runs).
    bool DelayIsNop = DelayWord == Target.nopWord();
    bool DelayTouchesProtocol = Delay->reads().contains(G1) ||
                                Delay->reads().contains(G2) ||
                                Delay->writes().contains(G1) ||
                                Delay->writes().contains(G2);
    bool DelayWritesSources =
        Delay->writes().contains(Info.BaseReg) ||
        (Info.HasIndex && Delay->writes().contains(Info.IndexReg));
    if (Delay->isControlTransfer())
      return Error("delayed transfer in the delay slot of an indirect jump");

    // Capture the target first: st g1; add base,op2,g1. Reading base/index
    // is unaffected by the g1 save.
    Target.emitStoreWord(G1, SP, -64, Code);
    if (Info.HasIndex)
      Code.push_back(encodeArithReg(Op3Add, G1, Info.BaseReg, Info.IndexReg));
    else
      Code.push_back(encodeArithImm(Op3Add, G1, Info.BaseReg, Info.Offset));

    // Run the delay instruction now (it already follows the target
    // capture, preserving original semantics) unless it conflicts.
    if (!DelayIsNop) {
      if (DelayTouchesProtocol)
        return Error("delay instruction uses translation protocol registers");
      (void)DelayWritesSources; // harmless: target already captured
      Code.push_back(DelayWord);
    }

    Target.emitStoreWord(G2, SP, -68, Code);
    Relocs.push_back({Reloc::Kind::TranslatorHi,
                      static_cast<unsigned>(Code.size()), 0, 0});
    Code.push_back(encodeSethi(G2, 0));
    Relocs.push_back({Reloc::Kind::TranslatorLo,
                      static_cast<unsigned>(Code.size()), 0, 0});
    Code.push_back(encodeArithImm(Op3Or, G2, G2, 0));
    Code.push_back(encodeJmplImm(Rd, G2, 0));
    Code.push_back(nop());
    return true;
  }

  if (Target.arch() == TargetArch::Arisc) {
    using namespace arisc;
    // ARISC: $t14 carries the target, $at the translator entry. Like the
    // MIPS $at/$k0/$k1 contract, no value is live in either across an
    // indirect jump, so there is nothing to save. There is no delay slot;
    // the caller passes a nop as the delay word.
    const unsigned P0 = 27, P1 = RegAT;
    unsigned Rd = Info.LinkReg;
    if (Rd == P0 || Rd == P1)
      return Error("indirect transfer links through a protocol register");
    if (DelayWord != Target.nopWord()) {
      if (Delay->isControlTransfer())
        return Error("delayed transfer in the delay slot of an indirect jump");
      if (Delay->reads().contains(P0) || Delay->reads().contains(P1) ||
          Delay->writes().contains(P0) || Delay->writes().contains(P1))
        return Error("delay instruction uses translation protocol registers");
    }

    if (Info.HasIndex)
      Code.push_back(encodeOperate(Info.BaseReg, Info.IndexReg, P0, FnAdd));
    else
      Code.push_back(encodeIType(OpAddi, Info.BaseReg, P0,
                                 static_cast<uint32_t>(Info.Offset) & 0xFFFF));
    if (DelayWord != Target.nopWord())
      Code.push_back(DelayWord);
    Relocs.push_back({Reloc::Kind::TranslatorHi,
                      static_cast<unsigned>(Code.size()), 0, 0});
    Code.push_back(encodeIType(OpLdih, 0, P1, 0));
    Relocs.push_back({Reloc::Kind::TranslatorLo,
                      static_cast<unsigned>(Code.size()), 0, 0});
    Code.push_back(encodeIType(OpOri, P1, P1, 0));
    Code.push_back(encodeJmp(Rd, P1));
    return true;
  }

  // MRISC: k0 carries the target, k1 the translator entry. Both are
  // reserved registers that generated code never touches, so there is
  // nothing to save and the delay instruction can never conflict.
  using namespace mrisc;
  const unsigned K0 = 26, K1 = 27;
  unsigned Rd = Info.LinkReg;
  if (Rd == K0 || Rd == K1)
    return Error("indirect transfer links through a protocol register");
  if (Delay->isControlTransfer())
    return Error("delayed transfer in the delay slot of an indirect jump");
  if (Delay->reads().contains(K0) || Delay->reads().contains(K1) ||
      Delay->writes().contains(K0) || Delay->writes().contains(K1))
    return Error("delay instruction uses translation protocol registers");

  Code.push_back(encodeRType(Info.BaseReg, 0, K0, 0, FnOr)); // k0 = target
  if (DelayWord != Target.nopWord())
    Code.push_back(DelayWord);
  Relocs.push_back({Reloc::Kind::TranslatorHi,
                    static_cast<unsigned>(Code.size()), 0, 0});
  Code.push_back(encodeIType(OpLui, 0, K1, 0));
  Relocs.push_back({Reloc::Kind::TranslatorLo,
                    static_cast<unsigned>(Code.size()), 0, 0});
  Code.push_back(encodeIType(OpOri, K1, K1, 0));
  if (Rd == 0)
    Code.push_back(encodeRType(K1, 0, 0, 0, FnJr));
  else
    Code.push_back(encodeRType(K1, 0, Rd, 0, FnJalr));
  Code.push_back(nop());
  return true;
}

std::string eel::translatorAsm(const TargetInfo &Target, Addr TableAddr,
                               unsigned EntryCount) {
  if (Target.arch() == TargetArch::Srisc) {
    // In: %g1 = original target; [sp-64] = caller's g1, [sp-68] = g2.
    // Binary search over <EntryCount> (orig, edited) pairs at <TableAddr>.
    return formatAsm(R"(
.text
__eel_translate:
  st %%g3, [%%sp - 72]
  rdcc %%g3
  st %%g3, [%%sp - 76]
  st %%g4, [%%sp - 80]
  st %%g5, [%%sp - 84]
  st %%g6, [%%sp - 88]
  set 0x%x, %%g3        ! table base
  mov 0, %%g4           ! lo
  set %u, %%g5          ! hi = entry count
.Lloop:
  cmp %%g4, %%g5
  bge .Lmiss
  nop
  add %%g4, %%g5, %%g2
  srl %%g2, 1, %%g2     ! mid
  sll %%g2, 3, %%g6
  add %%g3, %%g6, %%g6  ! &pair[mid]
  ld [%%g6 + 0], %%g6   ! pair.orig
  cmp %%g6, %%g1
  be .Lfound
  nop
  bgu .Lhigh
  nop
  ba .Lloop
  add %%g2, 1, %%g4     ! lo = mid + 1
.Lhigh:
  ba .Lloop
  mov %%g2, %%g5        ! hi = mid
.Lfound:
  sll %%g2, 3, %%g6
  add %%g3, %%g6, %%g6
  ld [%%g6 + 4], %%g5   ! edited target
  ld [%%sp - 76], %%g6
  wrcc %%g6             ! restore condition codes
  ld [%%sp - 72], %%g3
  ld [%%sp - 80], %%g4
  ld [%%sp - 88], %%g6
  ld [%%sp - 68], %%g2
  ld [%%sp - 64], %%g1
  jmpl %%g5 + 0, %%g0
  ld [%%sp - 84], %%g5  ! delay slot restores g5
.Lmiss:
  ! Not an original address: it was already rewritten (edited code and
  ! original code occupy disjoint ranges), so jump to it directly.
  ld [%%sp - 76], %%g6
  wrcc %%g6
  ld [%%sp - 72], %%g3
  ld [%%sp - 80], %%g4
  ld [%%sp - 88], %%g6
  ld [%%sp - 68], %%g2
  ld [%%sp - 84], %%g5
  jmpl %%g1 + 0, %%g0
  ld [%%sp - 64], %%g1  ! delay slot restores g1
)",
                     TableAddr, EntryCount);
  }

  if (Target.arch() == TargetArch::Arisc) {
    // In: $t14 = original target; $at is free scratch (protocol contract).
    // The search registers are saved below the stack pointer and restored
    // before the final jump — no delay-slot restore tricks are needed or
    // possible, since ARISC transfers take effect immediately.
    return formatAsm(R"(
.text
__eel_translate:
  stw $t10, -64($sp)
  stw $t11, -68($sp)
  stw $t12, -72($sp)
  stw $t13, -76($sp)
  li $t11, 0x%x         # table base
  li $t12, 0            # lo
  li $t13, %u           # hi = entry count
.Lloop:
  cmplt $at, $t12, $t13
  beq $at, $zero, .Lout # lo >= hi: miss, $t14 already holds the target
  add $t10, $t12, $t13
  srli $t10, $t10, 1    # mid
  slli $at, $t10, 3
  add $at, $t11, $at    # &pair[mid]
  ldw $at, 0($at)       # pair.orig
  beq $at, $t14, .Lfound
  cmplt $at, $t14, $at  # target < pair.orig?
  bne $at, $zero, .Lhigh
  addi $t12, $t10, 1    # lo = mid + 1
  br .Lloop
.Lhigh:
  move $t13, $t10       # hi = mid
  br .Lloop
.Lfound:
  slli $at, $t10, 3
  add $at, $t11, $at
  ldw $t14, 4($at)      # edited target replaces the original in $t14
.Lout:
  ldw $t10, -64($sp)
  ldw $t11, -68($sp)
  ldw $t12, -72($sp)
  ldw $t13, -76($sp)
  jmp ($t14)
)",
                     TableAddr, EntryCount);
  }

  // MRISC. In: $k0 = original target. Uses $at/$t8/$t9 (saved) plus the
  // reserved $k1/$gp as search state.
  return formatAsm(R"(
.text
__eel_translate:
  sw $at, -64($sp)
  sw $t8, -68($sp)
  sw $t9, -72($sp)
  li $at, 0x%x          # table base
  li $t8, 0             # lo
  li $t9, %u            # hi = entry count
.Lloop:
  slt $k1, $t8, $t9
  beq $k1, $zero, .Lmiss
  nop
  add $gp, $t8, $t9
  srl $gp, $gp, 1       # mid
  sll $k1, $gp, 3
  add $k1, $at, $k1     # &pair[mid]
  lw $k1, 0($k1)        # pair.orig
  beq $k1, $k0, .Lfound
  nop
  slt $k1, $k0, $k1
  bne $k1, $zero, .Lhigh
  nop
  j .Lloop
  addi $t8, $gp, 1      # lo = mid + 1
.Lhigh:
  j .Lloop
  move $t9, $gp         # hi = mid
.Lfound:
  sll $k1, $gp, 3
  add $k1, $at, $k1
  lw $k1, 4($k1)        # edited target
  lw $at, -64($sp)
  lw $t8, -68($sp)
  jr $k1
  lw $t9, -72($sp)      # delay slot restores t9
.Lmiss:
  # Already-rewritten (or faithfully wild) address: jump to it directly.
  lw $at, -64($sp)
  lw $t8, -68($sp)
  jr $k0
  lw $t9, -72($sp)
)",
                   TableAddr, EntryCount);
}
