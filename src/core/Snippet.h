//===- core/Snippet.h - Foreign-code snippets -------------------*- C++ -*-===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Code snippets (§3.5 of the paper) encapsulate foreign code added to an
/// executable. A snippet carries its machine-code body, a set of registers
/// that must be assigned unused (dead) registers at the insertion point, a
/// set of registers that must not be used even if free, and an optional
/// call-back invoked after register allocation but before the instructions
/// are placed — used for displacement adjustment and backpatching, exactly
/// the uses the paper lists. TaggedCodeSnippet adds the paper's
/// find_inst(): naming instructions so a tool can customize them per site
/// (e.g. patching a counter address into a sethi/or pair, Figure 5).
///
//===----------------------------------------------------------------------===//

#ifndef EEL_CORE_SNIPPET_H
#define EEL_CORE_SNIPPET_H

#include "isa/Target.h"

#include <array>
#include <functional>
#include <memory>
#include <vector>

namespace eel {

/// The result of instantiating a snippet at one site: register-allocated
/// (and possibly spill-wrapped) code plus the assignment map.
struct SnippetInstance {
  std::vector<MachWord> Words;
  /// Map from placeholder register number to assigned register; identity
  /// for registers not in the snippet's allocation set.
  std::array<uint8_t, 32> RegMap;
  unsigned SpillCount = 0;    ///< Registers spilled to satisfy allocation.
  bool SavedCC = false;       ///< Condition codes saved/restored around it.
  Addr StartAddr = 0;         ///< Final placement (known at callback time).
  /// Indices into Words of the snippet body proper (excluding spill/CC
  /// wrapper code), so callbacks can find their instructions.
  unsigned BodyBegin = 0;
  /// Registers the allocator handed to the snippet, and the subset it had
  /// to spill because they were live. The scavenging audit proves every
  /// granted-but-not-spilled register dead with an independent solver.
  RegSet Granted;
  RegSet Spilled;
};

/// Machine-specific foreign code plus its register-allocation contract.
class CodeSnippet {
public:
  /// \p Body is the snippet's code. \p RegsToAllocate lists placeholder
  /// register numbers appearing in the body that EEL must rebind to dead
  /// registers; \p Forbidden registers are never assigned even if dead.
  explicit CodeSnippet(std::vector<MachWord> Body,
                       RegSet RegsToAllocate = RegSet(),
                       RegSet Forbidden = RegSet());
  virtual ~CodeSnippet();

  const std::vector<MachWord> &body() const { return Body; }
  std::vector<MachWord> &body() { return Body; }
  const RegSet &regsToAllocate() const { return RegsToAllocate; }
  const RegSet &forbidden() const { return Forbidden; }

  /// Declares that the snippet destroys the condition codes; if they are
  /// live at the insertion point EEL wraps the snippet in save/restore
  /// code (a tool can instead query liveness and pick a cheaper snippet —
  /// the Blizzard-S optimization in §5).
  void setClobbersCC(bool Value) { ClobbersCC = Value; }
  bool clobbersCC() const { return ClobbersCC; }

  /// Call-back invoked after register allocation, with the instance's final
  /// start address and register assignment. May modify the instructions but
  /// not their number.
  using Callback = std::function<void(SnippetInstance &Instance)>;
  void setCallback(Callback CB) { Finish = std::move(CB); }
  const Callback &callback() const { return Finish; }

  /// When set, allocation fails with ErrorCode::NoDeadRegisters instead of
  /// spilling live registers around the snippet. Tools that cannot afford
  /// the memory traffic of a spill (e.g. a tracing snippet on a hot path)
  /// opt in and pick a cheaper snippet at sites the error names.
  void setRequireDeadRegs(bool Value) { RequireDeadRegs = Value; }
  bool requireDeadRegs() const { return RequireDeadRegs; }

private:
  std::vector<MachWord> Body;
  RegSet RegsToAllocate;
  RegSet Forbidden;
  bool ClobbersCC = false;
  bool RequireDeadRegs = false;
  Callback Finish;
};

/// A snippet whose instructions are addressable by index for per-site
/// customization before insertion (the paper's tagged_code_snippet).
class TaggedCodeSnippet : public CodeSnippet {
public:
  using CodeSnippet::CodeSnippet;

  /// Reference to the Nth instruction of the body (0-based).
  MachWord &findInst(unsigned Index) {
    assert(Index < body().size() && "findInst index out of range");
    return body()[Index];
  }
};

using SnippetPtr = std::shared_ptr<CodeSnippet>;

/// Picks \p Count distinct placeholder register numbers that collide with
/// neither the reserved registers nor \p Avoid. Snippet bodies must not
/// name a real register whose number equals a placeholder's (the register
/// rewriter could not tell them apart), so tools building per-site snippets
/// pass the site's registers here.
std::vector<unsigned> choosePlaceholderRegs(const TargetInfo &Target,
                                            unsigned Count, RegSet Avoid);

} // namespace eel

#endif // EEL_CORE_SNIPPET_H
