//===- isa/MriscEncoding.h - MRISC instruction encoding --------*- C++ -*-===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Encoding constants and field helpers for MRISC, the project's MIPS-like
/// second target. MRISC demonstrates the paper's machine-independence
/// claim: the EEL core and every tool built on it run unchanged on MRISC.
/// Relative to SRISC it differs in exactly the ways MIPS differs from
/// SPARC — compare-and-branch instead of condition codes, `lui`/`ori`
/// instead of `sethi`/`or`, non-annulled delay slots, and absolute-region
/// `j`/`jal` jumps.
///
/// Formats (op = bits 31:26):
///   op=0          : R-type  rs, rt, rd, shamt, funct
///   op=2, op=3    : J-type  j / jal index26
///   otherwise     : I-type  rs, rt, imm16
///
//===----------------------------------------------------------------------===//

#ifndef EEL_ISA_MRISCENCODING_H
#define EEL_ISA_MRISCENCODING_H

#include "support/BitOps.h"
#include "isa/Target.h"

namespace eel {
namespace mrisc {

// Major opcodes.
enum : uint32_t {
  OpRType = 0x00,
  OpJ = 0x02,
  OpJal = 0x03,
  OpBeq = 0x04,
  OpBne = 0x05,
  OpBlez = 0x06,
  OpBgtz = 0x07,
  OpAddi = 0x08,
  OpSlti = 0x0A,
  OpAndi = 0x0C,
  OpOri = 0x0D,
  OpXori = 0x0E,
  OpLui = 0x0F,
  OpLb = 0x20,
  OpLh = 0x21,
  OpLw = 0x23,
  OpLbu = 0x24,
  OpLhu = 0x25,
  OpSb = 0x28,
  OpSh = 0x29,
  OpSw = 0x2B,
};

// R-type funct values.
enum : uint32_t {
  FnSll = 0x00,
  FnSrl = 0x02,
  FnSra = 0x03,
  FnSllv = 0x04,
  FnSrlv = 0x06,
  FnSrav = 0x07,
  FnJr = 0x08,
  FnJalr = 0x09,
  FnSyscall = 0x0C,
  FnMul = 0x18,
  FnDiv = 0x1A,
  FnRem = 0x1B,
  FnAdd = 0x20,
  FnSub = 0x22,
  FnAnd = 0x24,
  FnOr = 0x25,
  FnXor = 0x26,
  FnSlt = 0x2A,
};

// Well-known registers (MIPS o32 names).
enum : unsigned {
  RegZero = 0,
  RegAT = 1,
  RegV0 = 2,
  RegA0 = 4,
  RegSP = 29,
  RegFP = 30,
  RegRA = 31,
};

// Field accessors.
inline uint32_t fieldOp(MachWord W) { return extractBits(W, 26, 31); }
inline uint32_t fieldRs(MachWord W) { return extractBits(W, 21, 25); }
inline uint32_t fieldRt(MachWord W) { return extractBits(W, 16, 20); }
inline uint32_t fieldRd(MachWord W) { return extractBits(W, 11, 15); }
inline uint32_t fieldShamt(MachWord W) { return extractBits(W, 6, 10); }
inline uint32_t fieldFunct(MachWord W) { return extractBits(W, 0, 5); }
inline uint32_t fieldUimm16(MachWord W) { return extractBits(W, 0, 15); }
inline int32_t fieldSimm16(MachWord W) {
  return signExtend(extractBits(W, 0, 15), 16);
}
inline uint32_t fieldIndex26(MachWord W) { return extractBits(W, 0, 25); }

// Encoders.

inline MachWord encodeRType(unsigned Rs, unsigned Rt, unsigned Rd,
                            unsigned Shamt, uint32_t Funct) {
  MachWord W = 0;
  W = insertBits(W, 26, 31, OpRType);
  W = insertBits(W, 21, 25, Rs);
  W = insertBits(W, 16, 20, Rt);
  W = insertBits(W, 11, 15, Rd);
  W = insertBits(W, 6, 10, Shamt);
  W = insertBits(W, 0, 5, Funct);
  return W;
}

inline MachWord encodeIType(uint32_t Op, unsigned Rs, unsigned Rt,
                            uint32_t Imm16) {
  MachWord W = 0;
  W = insertBits(W, 26, 31, Op);
  W = insertBits(W, 21, 25, Rs);
  W = insertBits(W, 16, 20, Rt);
  W = insertBits(W, 0, 15, Imm16);
  return W;
}

inline MachWord encodeJType(uint32_t Op, uint32_t Index26) {
  MachWord W = 0;
  W = insertBits(W, 26, 31, Op);
  W = insertBits(W, 0, 25, Index26);
  return W;
}

/// The canonical MRISC nop: sll r0, r0, 0 (the all-zero word, as on MIPS).
inline MachWord nop() { return 0; }

} // namespace mrisc
} // namespace eel

#endif // EEL_ISA_MRISCENCODING_H
