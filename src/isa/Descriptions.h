//===- isa/Descriptions.h - Embedded spawn machine descriptions -*- C++ -*-===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The spawn machine descriptions for SRISC and MRISC (the Figure 7
/// language). They are embedded as strings so that the spawn-derived
/// targets need no file-system configuration, and so the machine-description
/// conciseness benchmark (bench_machdesc) can count their lines against the
/// handwritten backends.
///
//===----------------------------------------------------------------------===//

#ifndef EEL_ISA_DESCRIPTIONS_H
#define EEL_ISA_DESCRIPTIONS_H

namespace eel {

/// Spawn description of the SRISC (SPARC-like) instruction set.
const char *sriscDescription();

/// Spawn description of the MRISC (MIPS-like) instruction set.
const char *mriscDescription();

/// Spawn description of the ARISC (Alpha-like, no delay slots) set.
const char *ariscDescription();

} // namespace eel

#endif // EEL_ISA_DESCRIPTIONS_H
