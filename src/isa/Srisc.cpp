//===- isa/Srisc.cpp - Handwritten SRISC target backend ------------------===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The handwritten machine-specific layer for SRISC. This file plays the
/// role of the paper's 2,268 lines of hand-coded SPARC manipulation code:
/// spawn generates an equivalent implementation from the ~150-line machine
/// description in isa/Descriptions.cpp, and the test suite checks the two
/// agree instruction-by-instruction.
///
//===----------------------------------------------------------------------===//

#include "isa/SriscEncoding.h"
#include "isa/Target.h"
#include "support/Error.h"

#include <array>
#include <cinttypes>
#include <cstdio>

using namespace eel;
using namespace eel::srisc;

TargetInfo::~TargetInfo() = default;

TargetInfo::InstMeta TargetInfo::decodeMeta(MachWord Word) const {
  // Generic fallback: one virtual call per fact, each re-decoding the
  // word. Backends override this with a single-decode version.
  InstMeta M;
  M.Category = classify(Word);
  M.Reads = reads(Word);
  M.Writes = writes(Word);
  M.HasDelaySlot = hasDelaySlot(Word);
  M.Delay = delayBehavior(Word);
  M.Conditional = isConditional(Word);
  return M;
}

static bool isValidArithOp3(uint32_t Op3) {
  switch (Op3) {
  case Op3Add:
  case Op3And:
  case Op3Or:
  case Op3Xor:
  case Op3Sub:
  case Op3Sll:
  case Op3Srl:
  case Op3Sra:
  case Op3Smul:
  case Op3Sdiv:
  case Op3Srem:
  case Op3AddCC:
  case Op3AndCC:
  case Op3OrCC:
  case Op3XorCC:
  case Op3SubCC:
  case Op3RdCC:
  case Op3WrCC:
  case Op3Jmpl:
  case Op3Sys:
    return true;
  default:
    return false;
  }
}

static bool isValidMemOp3(uint32_t Op3) {
  switch (Op3) {
  case Op3Ld:
  case Op3Ldub:
  case Op3Lduh:
  case Op3Ldsb:
  case Op3Ldsh:
  case Op3St:
  case Op3Stb:
  case Op3Sth:
    return true;
  default:
    return false;
  }
}

namespace {

/// Handwritten SRISC implementation of the target interface.
class SriscTarget : public TargetInfo {
public:
  SriscTarget() {
    Conv.LinkReg = RegLink;
    Conv.ReturnOffset = 8;
    Conv.StackPointer = RegSP;
    Conv.FramePointer = RegFP;
    Conv.ArgRegs = RegSet{8, 9, 10, 11, 12, 13};
    Conv.RetRegs = RegSet{8};
    // o-registers and g-registers are caller-saved, as are the condition
    // codes; l- and i-registers are callee-saved.
    Conv.CallerSaved =
        RegSet{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 15, RegIdCC};
    Conv.Reserved = RegSet{RegZero, RegSP, RegFP};
    Conv.SyscallNumReg = 0; // immediate field
    Conv.SyscallReads = RegSet{8, 9, 10};
    Conv.SyscallWrites = RegSet{8};
  }

  TargetArch arch() const override { return TargetArch::Srisc; }
  const char *name() const override { return "srisc"; }
  const TargetConventions &conventions() const override { return Conv; }
  unsigned numRegisters() const override { return 32; }
  bool hasConditionCodes() const override { return true; }
  bool branchDelaySlots() const override { return true; }

  std::string regName(unsigned Reg) const override {
    if (Reg == RegIdCC)
      return "%cc";
    if (Reg == RegIdPC)
      return "%pc";
    assert(Reg < 32 && "bad SRISC register id");
    static const char Groups[4] = {'g', 'o', 'l', 'i'};
    char Buf[8];
    std::snprintf(Buf, sizeof(Buf), "%%%c%u", Groups[Reg / 8], Reg % 8);
    return Buf;
  }

  InstCategory classify(MachWord W) const override {
    switch (fieldOp(W)) {
    case OpFormat2:
      switch (fieldOp2(W)) {
      case Op2Sethi:
        return InstCategory::Computation;
      case Op2Bicc: {
        uint32_t C = fieldCond(W);
        if (C == CondN)
          // `bn` never transfers control; with the annul bit it skips the
          // next instruction, which is a (direct) control transfer to PC+8.
          return fieldAnnul(W) ? InstCategory::JumpDirect
                               : InstCategory::Computation;
        // `ba` is an unconditional transfer; conditional branches keep the
        // BranchDirect category.
        return C == CondA ? InstCategory::JumpDirect
                          : InstCategory::BranchDirect;
      }
      default:
        return InstCategory::Invalid;
      }
    case OpCall:
      return InstCategory::CallDirect;
    case OpArith: {
      uint32_t Op3 = fieldOp3(W);
      if (Op3 == Op3Jmpl)
        return InstCategory::IndirectJump;
      if (Op3 == Op3Sys)
        return fieldI(W) ? InstCategory::System : InstCategory::Invalid;
      return isValidArithOp3(Op3) ? InstCategory::Computation
                                  : InstCategory::Invalid;
    }
    case OpMem: {
      uint32_t Op3 = fieldOp3(W);
      if (!isValidMemOp3(Op3))
        return InstCategory::Invalid;
      return Op3 >= Op3St ? InstCategory::Store : InstCategory::Load;
    }
    }
    unreachable("2-bit field out of range");
  }

  RegSet reads(MachWord W) const override {
    RegSet R;
    auto AddReg = [&R](unsigned Reg) {
      if (Reg != RegZero)
        R.insert(Reg);
    };
    if (classify(W) == InstCategory::Invalid)
      return R;
    switch (fieldOp(W)) {
    case OpFormat2:
      if (fieldOp2(W) == Op2Bicc && fieldCond(W) != CondA &&
          fieldCond(W) != CondN)
        R.insert(RegIdCC);
      return R;
    case OpCall:
      return R;
    case OpArith: {
      uint32_t Op3 = fieldOp3(W);
      if (Op3 == Op3Sys) {
        // Trap convention: arguments in o0-o2 (see §4 of the paper: call and
        // trap conventions live outside the machine description).
        return RegSet{8, 9, 10};
      }
      if (Op3 == Op3RdCC) {
        R.insert(RegIdCC);
        return R;
      }
      AddReg(fieldRs1(W));
      if (Op3 != Op3WrCC && !fieldI(W))
        AddReg(fieldRs2(W));
      return R;
    }
    case OpMem: {
      AddReg(fieldRs1(W));
      if (!fieldI(W))
        AddReg(fieldRs2(W));
      if (fieldOp3(W) >= Op3St)
        AddReg(fieldRd(W)); // stored value
      return R;
    }
    }
    unreachable("2-bit field out of range");
  }

  RegSet writes(MachWord W) const override {
    RegSet R;
    auto AddReg = [&R](unsigned Reg) {
      if (Reg != RegZero)
        R.insert(Reg);
    };
    if (classify(W) == InstCategory::Invalid)
      return R;
    switch (fieldOp(W)) {
    case OpFormat2:
      if (fieldOp2(W) == Op2Sethi)
        AddReg(fieldRd(W));
      return R;
    case OpCall:
      R.insert(RegLink);
      return R;
    case OpArith: {
      uint32_t Op3 = fieldOp3(W);
      if (Op3 == Op3Sys) {
        R.insert(8); // trap return value in o0
        return R;
      }
      if (Op3 == Op3WrCC) {
        R.insert(RegIdCC);
        return R;
      }
      AddReg(fieldRd(W));
      if (Op3 >= Op3AddCC && Op3 <= Op3SubCC)
        R.insert(RegIdCC);
      return R;
    }
    case OpMem:
      if (fieldOp3(W) < Op3St)
        AddReg(fieldRd(W));
      return R;
    }
    unreachable("2-bit field out of range");
  }

  bool hasDelaySlot(MachWord W) const override {
    switch (classify(W)) {
    case InstCategory::BranchDirect:
    case InstCategory::JumpDirect:
    case InstCategory::CallDirect:
    case InstCategory::IndirectJump:
      return true;
    default:
      // `bn` without annul classifies as Computation but still occupies a
      // delay slot in hardware; since it neither branches nor annuls, the
      // "delay" instruction is simply the next sequential instruction and
      // needs no special treatment.
      return false;
    }
  }

  DelayBehavior delayBehavior(MachWord W) const override {
    if (!hasDelaySlot(W))
      return DelayBehavior::None;
    if (fieldOp(W) == OpFormat2 && fieldOp2(W) == Op2Bicc) {
      uint32_t C = fieldCond(W);
      if (!fieldAnnul(W))
        return DelayBehavior::Always;
      if (C == CondA || C == CondN)
        return DelayBehavior::AnnulAlways;
      return DelayBehavior::AnnulUntaken;
    }
    return DelayBehavior::Always; // call, jmpl
  }

  bool isConditional(MachWord W) const override {
    if (fieldOp(W) != OpFormat2 || fieldOp2(W) != Op2Bicc)
      return false;
    uint32_t C = fieldCond(W);
    return C != CondA && C != CondN;
  }

  InstMeta decodeMeta(MachWord W) const override {
    // Single-decode path: classify once and derive the delay-slot facts
    // from the category and raw fields instead of re-classifying per query.
    InstMeta M;
    M.Category = classify(W);
    if (M.Category == InstCategory::Invalid)
      return M;
    M.Reads = reads(W);
    M.Writes = writes(W);
    switch (M.Category) {
    case InstCategory::BranchDirect:
    case InstCategory::JumpDirect:
    case InstCategory::CallDirect:
    case InstCategory::IndirectJump:
      M.HasDelaySlot = true;
      if (fieldOp(W) == OpFormat2 && fieldOp2(W) == Op2Bicc) {
        uint32_t C = fieldCond(W);
        if (!fieldAnnul(W))
          M.Delay = DelayBehavior::Always;
        else if (C == CondA || C == CondN)
          M.Delay = DelayBehavior::AnnulAlways;
        else
          M.Delay = DelayBehavior::AnnulUntaken;
      } else {
        M.Delay = DelayBehavior::Always; // call, jmpl
      }
      break;
    default:
      break;
    }
    M.Conditional = isConditional(W);
    return M;
  }

  std::optional<Addr> directTarget(MachWord W, Addr PC) const override {
    switch (classify(W)) {
    case InstCategory::BranchDirect:
    case InstCategory::JumpDirect: {
      if (fieldCond(W) == CondN)
        return PC + 8; // bn,a skips the delay slot
      return PC + static_cast<Addr>(fieldDisp22(W) * 4);
    }
    case InstCategory::CallDirect:
      return PC + static_cast<Addr>(fieldDisp30(W) * 4);
    default:
      return std::nullopt;
    }
  }

  std::optional<IndirectTargetInfo> indirectTarget(MachWord W) const override {
    if (classify(W) != InstCategory::IndirectJump)
      return std::nullopt;
    IndirectTargetInfo Info;
    Info.BaseReg = fieldRs1(W);
    if (fieldI(W)) {
      Info.Offset = fieldSimm13(W);
    } else {
      Info.HasIndex = true;
      Info.IndexReg = fieldRs2(W);
    }
    Info.LinkReg = fieldRd(W);
    return Info;
  }

  DataOp dataOp(MachWord W) const override {
    DataOp Op;
    if (fieldOp(W) == OpFormat2 && fieldOp2(W) == Op2Sethi) {
      Op.Kind = DataOpKind::LoadImmHi;
      Op.Rd = fieldRd(W);
      Op.HasImm = true;
      Op.Imm = static_cast<int32_t>(fieldImm22(W) << 10);
      return Op;
    }
    if (fieldOp(W) != OpArith)
      return Op;
    switch (fieldOp3(W)) {
    case Op3Add:
      Op.Kind = DataOpKind::Add;
      break;
    case Op3And:
      Op.Kind = DataOpKind::And;
      break;
    case Op3Or:
      Op.Kind = DataOpKind::Or;
      break;
    case Op3Xor:
      Op.Kind = DataOpKind::Xor;
      break;
    case Op3Sub:
      Op.Kind = DataOpKind::Sub;
      break;
    case Op3Sll:
      Op.Kind = DataOpKind::Sll;
      break;
    case Op3Srl:
      Op.Kind = DataOpKind::Srl;
      break;
    case Op3Sra:
      Op.Kind = DataOpKind::Sra;
      break;
    case Op3Smul:
      Op.Kind = DataOpKind::Mul;
      break;
    case Op3Sdiv:
      Op.Kind = DataOpKind::Div;
      break;
    case Op3Srem:
      Op.Kind = DataOpKind::Rem;
      break;
    case Op3AddCC:
      Op.Kind = DataOpKind::Add;
      Op.SetsCC = true;
      break;
    case Op3AndCC:
      Op.Kind = DataOpKind::And;
      Op.SetsCC = true;
      break;
    case Op3OrCC:
      Op.Kind = DataOpKind::Or;
      Op.SetsCC = true;
      break;
    case Op3XorCC:
      Op.Kind = DataOpKind::Xor;
      Op.SetsCC = true;
      break;
    case Op3SubCC:
      Op.Kind = DataOpKind::Sub;
      Op.SetsCC = true;
      break;
    default:
      return Op; // jmpl, sys, rdcc, wrcc, invalid: not simple dataflow
    }
    Op.Rd = fieldRd(W);
    Op.Rs1 = fieldRs1(W);
    if (fieldI(W)) {
      Op.HasImm = true;
      Op.Imm = fieldSimm13(W);
    } else {
      Op.Rs2 = fieldRs2(W);
    }
    return Op;
  }

  std::optional<MemOp> memOp(MachWord W) const override {
    if (fieldOp(W) != OpMem || !isValidMemOp3(fieldOp3(W)))
      return std::nullopt;
    MemOp M;
    uint32_t Op3 = fieldOp3(W);
    M.IsLoad = Op3 < Op3St;
    M.IsStore = !M.IsLoad;
    switch (Op3) {
    case Op3Ld:
    case Op3St:
      M.Width = 4;
      break;
    case Op3Lduh:
    case Op3Ldsh:
    case Op3Sth:
      M.Width = 2;
      break;
    default:
      M.Width = 1;
      break;
    }
    M.SignExtendLoad = Op3 == Op3Ldsb || Op3 == Op3Ldsh;
    M.AddrBase = fieldRs1(W);
    if (fieldI(W)) {
      M.Offset = fieldSimm13(W);
    } else {
      M.HasIndex = true;
      M.AddrIndex = fieldRs2(W);
    }
    M.DataReg = fieldRd(W);
    return M;
  }

  std::optional<unsigned> syscallNumber(MachWord W) const override {
    if (classify(W) != InstCategory::System)
      return std::nullopt;
    // Trap numbers are small non-negative values in the low 13 bits.
    return extractBits(W, 0, 12);
  }

  std::optional<MachWord> retargetDirect(MachWord W, Addr NewPC,
                                         Addr NewTarget) const override {
    int64_t DispBytes =
        static_cast<int64_t>(NewTarget) - static_cast<int64_t>(NewPC);
    assert(DispBytes % 4 == 0 && "misaligned branch target");
    int64_t DispWords = DispBytes / 4;
    switch (classify(W)) {
    case InstCategory::BranchDirect:
    case InstCategory::JumpDirect:
      if (fieldCond(W) == CondN)
        return std::nullopt; // target is implicit (PC+8), not encodable
      if (!fitsSigned(DispWords, 22))
        return std::nullopt;
      return insertBits(W, 0, 21, static_cast<uint32_t>(DispWords));
    case InstCategory::CallDirect:
      if (!fitsSigned(DispWords, 30))
        return std::nullopt;
      return insertBits(W, 0, 29, static_cast<uint32_t>(DispWords));
    default:
      return std::nullopt;
    }
  }

  std::optional<MachWord>
  rewriteRegisters(MachWord W,
                   const std::function<unsigned(unsigned)> &Map) const override {
    auto MapField = [&](MachWord Word, unsigned Lo, unsigned Hi) {
      unsigned NewReg = Map(extractBits(Word, Lo, Hi));
      assert(NewReg < 32 && "register map produced a bad id");
      return insertBits(Word, Lo, Hi, NewReg);
    };
    switch (fieldOp(W)) {
    case OpFormat2:
      if (fieldOp2(W) == Op2Sethi)
        return MapField(W, 25, 29); // rd
      return W;                     // branches name no registers
    case OpCall:
      // The link register is implicit and cannot be renamed.
      return Map(RegLink) == RegLink ? std::optional<MachWord>(W)
                                     : std::nullopt;
    case OpArith: {
      uint32_t Op3 = fieldOp3(W);
      if (Op3 == Op3Sys)
        return W; // traps use fixed conventional registers
      MachWord Out = W;
      if (Op3 != Op3WrCC)
        Out = MapField(Out, 25, 29); // rd
      if (Op3 != Op3RdCC)
        Out = MapField(Out, 14, 18); // rs1
      if (Op3 != Op3RdCC && Op3 != Op3WrCC && !fieldI(W))
        Out = MapField(Out, 0, 4); // rs2
      return Out;
    }
    case OpMem: {
      MachWord Out = MapField(W, 25, 29);
      Out = MapField(Out, 14, 18);
      if (!fieldI(W))
        Out = MapField(Out, 0, 4);
      return Out;
    }
    }
    unreachable("2-bit field out of range");
  }

  MachWord nopWord() const override { return nop(); }

  bool emitJump(Addr PC, Addr Target, std::vector<MachWord> &Out) const override {
    int64_t DispWords =
        (static_cast<int64_t>(Target) - static_cast<int64_t>(PC)) / 4;
    if (!fitsSigned(DispWords, 22))
      return false;
    Out.push_back(encodeBicc(false, CondA, static_cast<int32_t>(DispWords)));
    Out.push_back(nop());
    return true;
  }

  bool emitCall(Addr PC, Addr Target, std::vector<MachWord> &Out) const override {
    int64_t DispWords =
        (static_cast<int64_t>(Target) - static_cast<int64_t>(PC)) / 4;
    if (!fitsSigned(DispWords, 30))
      return false;
    Out.push_back(encodeCall(static_cast<int32_t>(DispWords)));
    Out.push_back(nop());
    return true;
  }

  void emitLoadConst(unsigned Reg, uint32_t Value,
                     std::vector<MachWord> &Out) const override {
    if (fitsSigned(static_cast<int32_t>(Value), 13)) {
      Out.push_back(encodeArithImm(Op3Or, Reg, RegZero,
                                   static_cast<int32_t>(Value)));
      return;
    }
    Out.push_back(encodeSethi(Reg, Value >> 10));
    if (Value & 0x3FF)
      Out.push_back(encodeArithImm(Op3Or, Reg, Reg,
                                   static_cast<int32_t>(Value & 0x3FF)));
  }

  void emitLoadWord(unsigned DataReg, unsigned Base, int32_t Offset,
                    std::vector<MachWord> &Out) const override {
    assert(fitsSigned(Offset, 13) && "load offset out of range");
    Out.push_back(encodeMemImm(Op3Ld, DataReg, Base, Offset));
  }

  void emitStoreWord(unsigned DataReg, unsigned Base, int32_t Offset,
                     std::vector<MachWord> &Out) const override {
    assert(fitsSigned(Offset, 13) && "store offset out of range");
    Out.push_back(encodeMemImm(Op3St, DataReg, Base, Offset));
  }

  void emitAddImm(unsigned Rd, unsigned Rs1, int32_t Imm,
                  std::vector<MachWord> &Out) const override {
    assert(fitsSigned(Imm, 13) && "immediate out of range");
    Out.push_back(encodeArithImm(Op3Add, Rd, Rs1, Imm));
  }

  void emitAddReg(unsigned Rd, unsigned Rs1, unsigned Rs2,
                  std::vector<MachWord> &Out) const override {
    Out.push_back(encodeArithReg(Op3Add, Rd, Rs1, Rs2));
  }

  void emitAluImm(DataOpKind Op, unsigned Rd, unsigned Rs1, int32_t Imm,
                  std::vector<MachWord> &Out) const override {
    assert(fitsSigned(Imm, 13) && "immediate out of range");
    uint32_t Op3;
    switch (Op) {
    case DataOpKind::Add: Op3 = Op3Add; break;
    case DataOpKind::And: Op3 = Op3And; break;
    case DataOpKind::Or: Op3 = Op3Or; break;
    case DataOpKind::Xor: Op3 = Op3Xor; break;
    case DataOpKind::Sll: Op3 = Op3Sll; break;
    case DataOpKind::Srl: Op3 = Op3Srl; break;
    default: unreachable("unsupported ALU-immediate operation");
    }
    Out.push_back(encodeArithImm(Op3, Rd, Rs1, Imm));
  }

  void emitIndirectJump(unsigned Reg, std::vector<MachWord> &Out,
                        std::optional<MachWord> DelayWord) const override {
    Out.push_back(encodeJmplImm(RegZero, Reg, 0));
    Out.push_back(DelayWord ? *DelayWord : nop());
  }

  bool emitSkipIfEqual(unsigned Ra, unsigned Rb, unsigned SkipWords,
                       std::vector<MachWord> &Out) const override {
    // subcc ra, rb, %g0 ; be +(2+skip) ; nop   — clobbers CC.
    Out.push_back(encodeArithReg(Op3SubCC, RegZero, Ra, Rb));
    Out.push_back(encodeBicc(false, CondE,
                             static_cast<int32_t>(SkipWords) + 2));
    Out.push_back(nop());
    return true;
  }

  bool emitSkipIfNotEqual(unsigned Ra, unsigned Rb, unsigned SkipWords,
                          std::vector<MachWord> &Out) const override {
    Out.push_back(encodeArithReg(Op3SubCC, RegZero, Ra, Rb));
    Out.push_back(encodeBicc(false, CondNE,
                             static_cast<int32_t>(SkipWords) + 2));
    Out.push_back(nop());
    return true;
  }

  bool emitSkipIfLess(unsigned Ra, unsigned Rb, unsigned Scratch,
                      unsigned SkipWords,
                      std::vector<MachWord> &Out) const override {
    (void)Scratch; // condition codes suffice
    Out.push_back(encodeArithReg(Op3SubCC, RegZero, Ra, Rb));
    Out.push_back(encodeBicc(false, CondL,
                             static_cast<int32_t>(SkipWords) + 2));
    Out.push_back(nop());
    return true;
  }

  bool emitSaveCC(unsigned ScratchReg, std::vector<MachWord> &Out) const override {
    Out.push_back(encodeRdCC(ScratchReg));
    return true;
  }

  bool emitRestoreCC(unsigned ScratchReg,
                     std::vector<MachWord> &Out) const override {
    Out.push_back(encodeWrCC(ScratchReg));
    return true;
  }

  std::string disassemble(MachWord W, Addr PC) const override;

private:
  TargetConventions Conv;
};

} // namespace

std::string SriscTarget::disassemble(MachWord W, Addr PC) const {
  char Buf[128];
  auto R = [this](unsigned Reg) { return regName(Reg); };
  switch (fieldOp(W)) {
  case OpFormat2:
    if (fieldOp2(W) == Op2Sethi) {
      if (W == nop())
        return "nop";
      std::snprintf(Buf, sizeof(Buf), "sethi 0x%x, %s", fieldImm22(W),
                    R(fieldRd(W)).c_str());
      return Buf;
    }
    if (fieldOp2(W) == Op2Bicc) {
      static const char *Names[16] = {"bn",  "be",  "ble", "bl",  "bleu",
                                      "bcs", "bneg", "bvs", "ba",  "bne",
                                      "bg",  "bge", "bgu", "bcc", "bpos",
                                      "bvc"};
      Addr Target = PC + static_cast<Addr>(fieldDisp22(W) * 4);
      std::snprintf(Buf, sizeof(Buf), "%s%s 0x%" PRIx32, Names[fieldCond(W)],
                    fieldAnnul(W) ? ",a" : "", Target);
      return Buf;
    }
    return "<invalid>";
  case OpCall: {
    Addr Target = PC + static_cast<Addr>(fieldDisp30(W) * 4);
    std::snprintf(Buf, sizeof(Buf), "call 0x%" PRIx32, Target);
    return Buf;
  }
  case OpArith: {
    uint32_t Op3 = fieldOp3(W);
    static const struct {
      uint32_t Op3;
      const char *Name;
    } Ops[] = {{Op3Add, "add"},     {Op3And, "and"},     {Op3Or, "or"},
               {Op3Xor, "xor"},     {Op3Sub, "sub"},     {Op3Sll, "sll"},
               {Op3Srl, "srl"},     {Op3Sra, "sra"},     {Op3Smul, "smul"},
               {Op3Sdiv, "sdiv"},   {Op3Srem, "srem"},   {Op3AddCC, "addcc"},
               {Op3AndCC, "andcc"}, {Op3OrCC, "orcc"},   {Op3XorCC, "xorcc"},
               {Op3SubCC, "subcc"}};
    if (Op3 == Op3Sys) {
      std::snprintf(Buf, sizeof(Buf), "sys %d", fieldSimm13(W));
      return Buf;
    }
    if (Op3 == Op3RdCC) {
      std::snprintf(Buf, sizeof(Buf), "rdcc %s", R(fieldRd(W)).c_str());
      return Buf;
    }
    if (Op3 == Op3WrCC) {
      std::snprintf(Buf, sizeof(Buf), "wrcc %s", R(fieldRs1(W)).c_str());
      return Buf;
    }
    if (Op3 == Op3Jmpl) {
      if (fieldI(W))
        std::snprintf(Buf, sizeof(Buf), "jmpl %s%+d, %s",
                      R(fieldRs1(W)).c_str(), fieldSimm13(W),
                      R(fieldRd(W)).c_str());
      else
        std::snprintf(Buf, sizeof(Buf), "jmpl %s+%s, %s",
                      R(fieldRs1(W)).c_str(), R(fieldRs2(W)).c_str(),
                      R(fieldRd(W)).c_str());
      return Buf;
    }
    for (const auto &Entry : Ops) {
      if (Entry.Op3 != Op3)
        continue;
      if (fieldI(W))
        std::snprintf(Buf, sizeof(Buf), "%s %s, %d, %s", Entry.Name,
                      R(fieldRs1(W)).c_str(), fieldSimm13(W),
                      R(fieldRd(W)).c_str());
      else
        std::snprintf(Buf, sizeof(Buf), "%s %s, %s, %s", Entry.Name,
                      R(fieldRs1(W)).c_str(), R(fieldRs2(W)).c_str(),
                      R(fieldRd(W)).c_str());
      return Buf;
    }
    return "<invalid>";
  }
  case OpMem: {
    uint32_t Op3 = fieldOp3(W);
    static const struct {
      uint32_t Op3;
      const char *Name;
    } Ops[] = {{Op3Ld, "ld"},     {Op3Ldub, "ldub"}, {Op3Lduh, "lduh"},
               {Op3Ldsb, "ldsb"}, {Op3Ldsh, "ldsh"}, {Op3St, "st"},
               {Op3Stb, "stb"},   {Op3Sth, "sth"}};
    for (const auto &Entry : Ops) {
      if (Entry.Op3 != Op3)
        continue;
      std::string AddrStr;
      if (fieldI(W)) {
        char A[48];
        std::snprintf(A, sizeof(A), "[%s%+d]", R(fieldRs1(W)).c_str(),
                      fieldSimm13(W));
        AddrStr = A;
      } else {
        AddrStr = "[" + R(fieldRs1(W)) + "+" + R(fieldRs2(W)) + "]";
      }
      if (Op3 >= Op3St)
        std::snprintf(Buf, sizeof(Buf), "%s %s, %s", Entry.Name,
                      R(fieldRd(W)).c_str(), AddrStr.c_str());
      else
        std::snprintf(Buf, sizeof(Buf), "%s %s, %s", Entry.Name,
                      AddrStr.c_str(), R(fieldRd(W)).c_str());
      return Buf;
    }
    return "<invalid>";
  }
  }
  return "<invalid>";
}

const TargetInfo &eel::sriscTarget() {
  static SriscTarget Target;
  return Target;
}
