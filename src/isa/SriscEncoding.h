//===- isa/SriscEncoding.h - SRISC instruction encoding --------*- C++ -*-===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Encoding constants and field helpers for SRISC, the project's SPARC-like
/// synthetic ISA. SRISC keeps every property of SPARC V8 that makes
/// executable editing interesting — one-cycle delay slots on branches,
/// calls, and indirect jumps; annulled conditional branches; `sethi`/`or`
/// address materialization; condition codes; and a `jmpl` overloaded as
/// indirect jump, indirect call, and return — while dropping register
/// windows and floating point, which the paper's analyses do not depend on.
///
/// Instruction formats (op = bits 31:30):
///   op=0, op2=4 : sethi   rd, imm22          rd := imm22 << 10
///   op=0, op2=2 : Bicc    a, cond, disp22    PC-relative conditional branch
///   op=1        : call    disp30             r15 := PC; PC-relative call
///   op=2        : format3 rd, op3, rs1, i, (rs2 | simm13)   ALU / jmpl / sys
///   op=3        : format3 memory loads and stores
///
/// Registers: r0 is hard zero. Aliases follow SPARC: g0-g7 = r0-r7,
/// o0-o7 = r8-r15 (o6 = sp, o7 = link), l0-l7 = r16-r23, i0-i7 = r24-r31
/// (i6 = fp). The 4-bit condition-code register (N,Z,V,C) is register id 32
/// and is readable/writable with the unprivileged rdcc/wrcc instructions.
///
//===----------------------------------------------------------------------===//

#ifndef EEL_ISA_SRISCENCODING_H
#define EEL_ISA_SRISCENCODING_H

#include "support/BitOps.h"
#include "isa/Target.h"

namespace eel {
namespace srisc {

// Major opcode (bits 31:30).
enum : uint32_t { OpFormat2 = 0, OpCall = 1, OpArith = 2, OpMem = 3 };

// Format-2 op2 field (bits 24:22).
enum : uint32_t { Op2Bicc = 2, Op2Sethi = 4 };

// Format-3 op3 field (bits 24:19) for OpArith.
enum : uint32_t {
  Op3Add = 0x00,
  Op3And = 0x01,
  Op3Or = 0x02,
  Op3Xor = 0x03,
  Op3Sub = 0x04,
  Op3Sll = 0x05,
  Op3Srl = 0x06,
  Op3Sra = 0x07,
  Op3Smul = 0x08,
  Op3Sdiv = 0x09,
  Op3Srem = 0x0A,
  Op3AddCC = 0x10,
  Op3AndCC = 0x11,
  Op3OrCC = 0x12,
  Op3XorCC = 0x13,
  Op3SubCC = 0x14,
  Op3RdCC = 0x30,
  Op3WrCC = 0x31,
  Op3Jmpl = 0x38,
  Op3Sys = 0x3A,
};

// Format-3 op3 field for OpMem.
enum : uint32_t {
  Op3Ld = 0x00,
  Op3Ldub = 0x01,
  Op3Lduh = 0x02,
  Op3Ldsb = 0x03,
  Op3Ldsh = 0x04,
  Op3St = 0x08,
  Op3Stb = 0x09,
  Op3Sth = 0x0A,
};

// Branch condition codes (bits 28:25 of a Bicc), SPARC icc ordering.
enum Cond : uint32_t {
  CondN = 0,    // never
  CondE = 1,    // Z
  CondLE = 2,   // Z | (N ^ V)
  CondL = 3,    // N ^ V
  CondLEU = 4,  // C | Z
  CondCS = 5,   // C
  CondNEG = 6,  // N
  CondVS = 7,   // V
  CondA = 8,    // always
  CondNE = 9,   // !Z
  CondG = 10,   // !(Z | (N ^ V))
  CondGE = 11,  // !(N ^ V)
  CondGU = 12,  // !(C | Z)
  CondCC = 13,  // !C
  CondPOS = 14, // !N
  CondVC = 15,  // !V
};

// Condition-code register bits.
enum : uint32_t { CCFlagC = 1, CCFlagV = 2, CCFlagZ = 4, CCFlagN = 8 };

// Well-known registers.
enum : unsigned {
  RegZero = 0,
  RegSP = 14,   // o6
  RegLink = 15, // o7, written by call and conventional jmpl links
  RegFP = 30,   // i6
};

// Field accessors. Field names match the machine description in
// isa/Descriptions.cpp.
inline uint32_t fieldOp(MachWord W) { return extractBits(W, 30, 31); }
inline uint32_t fieldRd(MachWord W) { return extractBits(W, 25, 29); }
inline uint32_t fieldOp2(MachWord W) { return extractBits(W, 22, 24); }
inline uint32_t fieldOp3(MachWord W) { return extractBits(W, 19, 24); }
inline uint32_t fieldRs1(MachWord W) { return extractBits(W, 14, 18); }
inline uint32_t fieldI(MachWord W) { return extractBits(W, 13, 13); }
inline uint32_t fieldRs2(MachWord W) { return extractBits(W, 0, 4); }
inline int32_t fieldSimm13(MachWord W) {
  return signExtend(extractBits(W, 0, 12), 13);
}
inline uint32_t fieldImm22(MachWord W) { return extractBits(W, 0, 21); }
inline int32_t fieldDisp22(MachWord W) {
  return signExtend(extractBits(W, 0, 21), 22);
}
inline int32_t fieldDisp30(MachWord W) {
  return signExtend(extractBits(W, 0, 29), 30);
}
inline uint32_t fieldCond(MachWord W) { return extractBits(W, 25, 28); }
inline uint32_t fieldAnnul(MachWord W) { return extractBits(W, 29, 29); }

// Encoders.

inline MachWord encodeSethi(unsigned Rd, uint32_t Imm22) {
  MachWord W = 0;
  W = insertBits(W, 30, 31, OpFormat2);
  W = insertBits(W, 25, 29, Rd);
  W = insertBits(W, 22, 24, Op2Sethi);
  W = insertBits(W, 0, 21, Imm22);
  return W;
}

inline MachWord encodeBicc(bool Annul, Cond C, int32_t Disp22) {
  MachWord W = 0;
  W = insertBits(W, 30, 31, OpFormat2);
  W = insertBits(W, 29, 29, Annul ? 1 : 0);
  W = insertBits(W, 25, 28, C);
  W = insertBits(W, 22, 24, Op2Bicc);
  W = insertBits(W, 0, 21, static_cast<uint32_t>(Disp22));
  return W;
}

inline MachWord encodeCall(int32_t Disp30) {
  MachWord W = 0;
  W = insertBits(W, 30, 31, OpCall);
  W = insertBits(W, 0, 29, static_cast<uint32_t>(Disp30));
  return W;
}

inline MachWord encodeArithReg(uint32_t Op3, unsigned Rd, unsigned Rs1,
                               unsigned Rs2) {
  MachWord W = 0;
  W = insertBits(W, 30, 31, OpArith);
  W = insertBits(W, 25, 29, Rd);
  W = insertBits(W, 19, 24, Op3);
  W = insertBits(W, 14, 18, Rs1);
  W = insertBits(W, 13, 13, 0);
  W = insertBits(W, 0, 4, Rs2);
  return W;
}

inline MachWord encodeArithImm(uint32_t Op3, unsigned Rd, unsigned Rs1,
                               int32_t Simm13) {
  MachWord W = 0;
  W = insertBits(W, 30, 31, OpArith);
  W = insertBits(W, 25, 29, Rd);
  W = insertBits(W, 19, 24, Op3);
  W = insertBits(W, 14, 18, Rs1);
  W = insertBits(W, 13, 13, 1);
  W = insertBits(W, 0, 12, static_cast<uint32_t>(Simm13));
  return W;
}

inline MachWord encodeMemReg(uint32_t Op3, unsigned RdData, unsigned Rs1,
                             unsigned Rs2) {
  MachWord W = encodeArithReg(Op3, RdData, Rs1, Rs2);
  return insertBits(W, 30, 31, OpMem);
}

inline MachWord encodeMemImm(uint32_t Op3, unsigned RdData, unsigned Rs1,
                             int32_t Simm13) {
  MachWord W = encodeArithImm(Op3, RdData, Rs1, Simm13);
  return insertBits(W, 30, 31, OpMem);
}

inline MachWord encodeJmplImm(unsigned Rd, unsigned Rs1, int32_t Simm13) {
  return encodeArithImm(Op3Jmpl, Rd, Rs1, Simm13);
}

inline MachWord encodeJmplReg(unsigned Rd, unsigned Rs1, unsigned Rs2) {
  return encodeArithReg(Op3Jmpl, Rd, Rs1, Rs2);
}

inline MachWord encodeSys(unsigned Num) {
  return encodeArithImm(Op3Sys, 0, 0, static_cast<int32_t>(Num));
}

inline MachWord encodeRdCC(unsigned Rd) {
  return encodeArithImm(Op3RdCC, Rd, 0, 0);
}

inline MachWord encodeWrCC(unsigned Rs1) {
  return encodeArithReg(Op3WrCC, 0, Rs1, 0);
}

/// The canonical SRISC nop: sethi 0, r0.
inline MachWord nop() { return encodeSethi(0, 0); }

/// Branch-condition predicate over a 4-bit condition-code value.
inline bool evalCond(Cond C, uint32_t CC) {
  bool N = (CC & CCFlagN) != 0;
  bool Z = (CC & CCFlagZ) != 0;
  bool V = (CC & CCFlagV) != 0;
  bool Cf = (CC & CCFlagC) != 0;
  switch (C) {
  case CondN:
    return false;
  case CondE:
    return Z;
  case CondLE:
    return Z || (N != V);
  case CondL:
    return N != V;
  case CondLEU:
    return Cf || Z;
  case CondCS:
    return Cf;
  case CondNEG:
    return N;
  case CondVS:
    return V;
  case CondA:
    return true;
  case CondNE:
    return !Z;
  case CondG:
    return !(Z || (N != V));
  case CondGE:
    return N == V;
  case CondGU:
    return !(Cf || Z);
  case CondCC:
    return !Cf;
  case CondPOS:
    return !N;
  case CondVC:
    return !V;
  }
  return false;
}

/// Condition codes produced by addcc.
inline uint32_t ccForAdd(uint32_t A, uint32_t B) {
  uint32_t R = A + B;
  uint32_t CC = 0;
  if (R & 0x80000000u)
    CC |= CCFlagN;
  if (R == 0)
    CC |= CCFlagZ;
  if (((A ^ R) & (B ^ R)) & 0x80000000u)
    CC |= CCFlagV;
  if (R < A)
    CC |= CCFlagC;
  return CC;
}

/// Condition codes produced by subcc (A - B). Carry is the borrow flag.
inline uint32_t ccForSub(uint32_t A, uint32_t B) {
  uint32_t R = A - B;
  uint32_t CC = 0;
  if (R & 0x80000000u)
    CC |= CCFlagN;
  if (R == 0)
    CC |= CCFlagZ;
  if (((A ^ B) & (A ^ R)) & 0x80000000u)
    CC |= CCFlagV;
  if (A < B)
    CC |= CCFlagC;
  return CC;
}

/// Condition codes produced by the logical *cc forms.
inline uint32_t ccForLogic(uint32_t R) {
  uint32_t CC = 0;
  if (R & 0x80000000u)
    CC |= CCFlagN;
  if (R == 0)
    CC |= CCFlagZ;
  return CC;
}

} // namespace srisc
} // namespace eel

#endif // EEL_ISA_SRISCENCODING_H
