//===- isa/Arisc.cpp - Handwritten ARISC target backend ------------------===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The handwritten machine-specific layer for ARISC, the Alpha-like third
/// target. Its distinguishing property is the *absence* of delay slots:
/// every control transfer takes effect immediately, so this backend answers
/// "no" to every delay query and its emit helpers produce single-word
/// transfers with no trailing nop. Any machine-independent code that still
/// works correctly on ARISC genuinely contains no SPARC-isms.
///
//===----------------------------------------------------------------------===//

#include "isa/AriscEncoding.h"
#include "isa/Target.h"
#include "support/Error.h"

#include <cinttypes>
#include <cstdio>

using namespace eel;
using namespace eel::arisc;

namespace {

/// Handwritten ARISC implementation of the target interface.
class AriscTarget : public TargetInfo {
public:
  AriscTarget() {
    Conv.LinkReg = RegRA;
    Conv.ReturnOffset = 0;
    Conv.StackPointer = RegSP;
    Conv.FramePointer = RegFP;
    Conv.ArgRegs = RegSet{16, 17, 18, 19};
    Conv.RetRegs = RegSet{RegV0};
    Conv.CallerSaved = RegSet{1,  2,  3,  4,  5,  6,  7,  8,  9,  16, 17,
                              18, 19, 20, 21, 22, 23, 24, 25, 26, 27};
    Conv.Reserved = RegSet{RegZero, RegFP, RegAT, RegGP, RegSP};
    Conv.SyscallNumReg = 0; // trap number is an immediate field, like SRISC
    Conv.SyscallReads = RegSet{16, 17, 18};
    Conv.SyscallWrites = RegSet{RegV0};
  }

  TargetArch arch() const override { return TargetArch::Arisc; }
  const char *name() const override { return "arisc"; }
  const TargetConventions &conventions() const override { return Conv; }
  unsigned numRegisters() const override { return 32; }
  bool hasConditionCodes() const override { return false; }
  bool branchDelaySlots() const override { return false; }

  std::string regName(unsigned Reg) const override {
    if (Reg == RegIdPC)
      return "$pc";
    assert(Reg < 32 && "bad ARISC register id");
    static const char *Names[32] = {
        "$zero", "$v0",  "$t0",  "$t1",  "$t2",  "$t3",  "$t4",  "$t5",
        "$t6",   "$t7",  "$s0",  "$s1",  "$s2",  "$s3",  "$s4",  "$fp",
        "$a0",   "$a1",  "$a2",  "$a3",  "$t8",  "$t9",  "$t10", "$t11",
        "$t12",  "$t13", "$ra",  "$t14", "$at",  "$gp",  "$sp",  "$s5"};
    return Names[Reg];
  }

  InstCategory classify(MachWord W) const override {
    switch (fieldOp(W)) {
    case OpOperate:
      return fieldFunc(W) <= FnCmplt ? InstCategory::Computation
                                     : InstCategory::Invalid;
    case OpAddi:
    case OpAndi:
    case OpOri:
    case OpXori:
    case OpSlli:
    case OpSrli:
    case OpSrai:
    case OpCmplti:
      return InstCategory::Computation;
    case OpLdih:
      return fieldRa(W) == 0 ? InstCategory::Computation
                             : InstCategory::Invalid;
    case OpLdw:
    case OpLdb:
    case OpLdbu:
    case OpLdh:
    case OpLdhu:
      return InstCategory::Load;
    case OpStw:
    case OpStb:
    case OpSth:
      return InstCategory::Store;
    case OpBeq:
    case OpBne:
    case OpBlt:
    case OpBle:
      return InstCategory::BranchDirect;
    case OpBr:
      return InstCategory::JumpDirect;
    case OpBsr:
      return InstCategory::CallDirect;
    case OpJmp:
      return fieldUimm16(W) == 0 ? InstCategory::IndirectJump
                                 : InstCategory::Invalid;
    case OpSys:
      return fieldRa(W) == 0 && fieldRb(W) == 0 ? InstCategory::System
                                                : InstCategory::Invalid;
    default:
      return InstCategory::Invalid;
    }
  }

  RegSet reads(MachWord W) const override {
    RegSet R;
    auto AddReg = [&R](unsigned Reg) {
      if (Reg != RegZero)
        R.insert(Reg);
    };
    if (classify(W) == InstCategory::Invalid)
      return R;
    switch (fieldOp(W)) {
    case OpOperate:
      AddReg(fieldRa(W));
      AddReg(fieldRb(W));
      return R;
    case OpLdih:
    case OpBr:
    case OpBsr:
      return R;
    case OpBeq:
    case OpBne:
    case OpBlt:
    case OpBle:
      AddReg(fieldRa(W));
      AddReg(fieldRb(W));
      return R;
    case OpStw:
    case OpStb:
    case OpSth:
      AddReg(fieldRa(W)); // stored value
      AddReg(fieldRb(W)); // base
      return R;
    case OpLdw:
    case OpLdb:
    case OpLdbu:
    case OpLdh:
    case OpLdhu:
    case OpJmp:
      AddReg(fieldRb(W)); // base
      return R;
    case OpSys:
      // Trap convention: number is an immediate; arguments in a0-a2.
      return RegSet{16, 17, 18};
    default: // ALU-immediate forms read ra.
      AddReg(fieldRa(W));
      return R;
    }
  }

  RegSet writes(MachWord W) const override {
    RegSet R;
    auto AddReg = [&R](unsigned Reg) {
      if (Reg != RegZero)
        R.insert(Reg);
    };
    if (classify(W) == InstCategory::Invalid)
      return R;
    switch (fieldOp(W)) {
    case OpOperate:
      AddReg(fieldRc(W));
      return R;
    case OpBeq:
    case OpBne:
    case OpBlt:
    case OpBle:
    case OpBr:
    case OpStw:
    case OpStb:
    case OpSth:
      return R;
    case OpBsr:
      R.insert(RegRA);
      return R;
    case OpJmp:
      AddReg(fieldRa(W)); // link, when nonzero
      return R;
    case OpSys:
      R.insert(RegV0);
      return R;
    case OpLdw:
    case OpLdb:
    case OpLdbu:
    case OpLdh:
    case OpLdhu:
      AddReg(fieldRa(W)); // loaded-into register
      return R;
    default: // ALU-immediate and ldih write rb.
      AddReg(fieldRb(W));
      return R;
    }
  }

  bool hasDelaySlot(MachWord W) const override {
    (void)W;
    return false; // the defining ARISC property
  }

  DelayBehavior delayBehavior(MachWord W) const override {
    (void)W;
    return DelayBehavior::None;
  }

  bool isConditional(MachWord W) const override {
    switch (fieldOp(W)) {
    case OpBeq:
    case OpBne:
    case OpBlt:
    case OpBle:
      return true;
    default:
      return false;
    }
  }

  InstMeta decodeMeta(MachWord W) const override {
    // Single-decode path: no ARISC transfer has a delay slot, so only the
    // conditional bit varies with the category.
    InstMeta M;
    M.Category = classify(W);
    if (M.Category == InstCategory::Invalid)
      return M;
    M.Reads = reads(W);
    M.Writes = writes(W);
    M.Conditional = M.Category == InstCategory::BranchDirect;
    return M;
  }

  std::optional<Addr> directTarget(MachWord W, Addr PC) const override {
    switch (classify(W)) {
    case InstCategory::BranchDirect:
      return PC + 4 + static_cast<Addr>(fieldSimm16(W) * 4);
    case InstCategory::JumpDirect:
    case InstCategory::CallDirect:
      // All ARISC transfers are PC-relative; no MRISC-style region jumps.
      return PC + 4 + static_cast<Addr>(fieldSdisp26(W) * 4);
    default:
      return std::nullopt;
    }
  }

  std::optional<IndirectTargetInfo> indirectTarget(MachWord W) const override {
    if (classify(W) != InstCategory::IndirectJump)
      return std::nullopt;
    IndirectTargetInfo Info;
    Info.BaseReg = fieldRb(W);
    Info.Offset = 0;
    Info.LinkReg = fieldRa(W);
    return Info;
  }

  DataOp dataOp(MachWord W) const override {
    DataOp Op;
    if (classify(W) != InstCategory::Computation)
      return Op;
    if (fieldOp(W) == OpOperate) {
      switch (fieldFunc(W)) {
      case FnAdd:
        Op.Kind = DataOpKind::Add;
        break;
      case FnSub:
        Op.Kind = DataOpKind::Sub;
        break;
      case FnAnd:
        Op.Kind = DataOpKind::And;
        break;
      case FnOr:
        Op.Kind = DataOpKind::Or;
        break;
      case FnXor:
        Op.Kind = DataOpKind::Xor;
        break;
      case FnSll:
        Op.Kind = DataOpKind::Sll;
        break;
      case FnSrl:
        Op.Kind = DataOpKind::Srl;
        break;
      case FnSra:
        Op.Kind = DataOpKind::Sra;
        break;
      case FnMul:
        Op.Kind = DataOpKind::Mul;
        break;
      case FnDiv:
        Op.Kind = DataOpKind::Div;
        break;
      case FnRem:
        Op.Kind = DataOpKind::Rem;
        break;
      case FnCmplt:
        Op.Kind = DataOpKind::SetLess;
        break;
      default:
        return Op;
      }
      Op.Rd = fieldRc(W);
      Op.Rs1 = fieldRa(W);
      Op.Rs2 = fieldRb(W);
      return Op;
    }
    switch (fieldOp(W)) {
    case OpLdih:
      Op.Kind = DataOpKind::LoadImmHi;
      Op.Rd = fieldRb(W);
      Op.HasImm = true;
      Op.Imm = static_cast<int32_t>(fieldUimm16(W) << 16);
      return Op;
    case OpAddi:
      Op.Kind = DataOpKind::Add;
      Op.Imm = fieldSimm16(W);
      break;
    case OpCmplti:
      Op.Kind = DataOpKind::SetLess;
      Op.Imm = fieldSimm16(W);
      break;
    case OpAndi:
      Op.Kind = DataOpKind::And;
      Op.Imm = static_cast<int32_t>(fieldUimm16(W));
      break;
    case OpOri:
      Op.Kind = DataOpKind::Or;
      Op.Imm = static_cast<int32_t>(fieldUimm16(W));
      break;
    case OpXori:
      Op.Kind = DataOpKind::Xor;
      Op.Imm = static_cast<int32_t>(fieldUimm16(W));
      break;
    case OpSlli:
      Op.Kind = DataOpKind::Sll;
      Op.Imm = static_cast<int32_t>(fieldUimm16(W));
      break;
    case OpSrli:
      Op.Kind = DataOpKind::Srl;
      Op.Imm = static_cast<int32_t>(fieldUimm16(W));
      break;
    case OpSrai:
      Op.Kind = DataOpKind::Sra;
      Op.Imm = static_cast<int32_t>(fieldUimm16(W));
      break;
    default:
      return Op;
    }
    Op.Rd = fieldRb(W);
    Op.Rs1 = fieldRa(W);
    Op.HasImm = true;
    return Op;
  }

  std::optional<MemOp> memOp(MachWord W) const override {
    InstCategory Cat = classify(W);
    if (Cat != InstCategory::Load && Cat != InstCategory::Store)
      return std::nullopt;
    MemOp M;
    M.IsLoad = Cat == InstCategory::Load;
    M.IsStore = !M.IsLoad;
    switch (fieldOp(W)) {
    case OpLdb:
    case OpLdbu:
    case OpStb:
      M.Width = 1;
      break;
    case OpLdh:
    case OpLdhu:
    case OpSth:
      M.Width = 2;
      break;
    default:
      M.Width = 4;
      break;
    }
    M.SignExtendLoad = fieldOp(W) == OpLdb || fieldOp(W) == OpLdh;
    M.AddrBase = fieldRb(W);
    M.Offset = fieldSimm16(W);
    M.DataReg = fieldRa(W);
    return M;
  }

  std::optional<unsigned> syscallNumber(MachWord W) const override {
    if (classify(W) != InstCategory::System)
      return std::nullopt;
    return fieldUimm16(W);
  }

  std::optional<MachWord> retargetDirect(MachWord W, Addr NewPC,
                                         Addr NewTarget) const override {
    int64_t DispWords = (static_cast<int64_t>(NewTarget) -
                         (static_cast<int64_t>(NewPC) + 4)) /
                        4;
    switch (classify(W)) {
    case InstCategory::BranchDirect:
      if (!fitsSigned(DispWords, 16))
        return std::nullopt;
      return insertBits(W, 0, 15, static_cast<uint32_t>(DispWords));
    case InstCategory::JumpDirect:
    case InstCategory::CallDirect:
      if (!fitsSigned(DispWords, 26))
        return std::nullopt;
      return insertBits(W, 0, 25, static_cast<uint32_t>(DispWords));
    default:
      return std::nullopt;
    }
  }

  std::optional<MachWord>
  rewriteRegisters(MachWord W,
                   const std::function<unsigned(unsigned)> &Map) const override {
    auto MapField = [&](MachWord Word, unsigned Lo, unsigned Hi) {
      unsigned NewReg = Map(extractBits(Word, Lo, Hi));
      assert(NewReg < 32 && "register map produced a bad id");
      return insertBits(Word, Lo, Hi, NewReg);
    };
    switch (fieldOp(W)) {
    case OpOperate: {
      MachWord Out = MapField(W, 21, 25);
      Out = MapField(Out, 16, 20);
      return MapField(Out, 11, 15);
    }
    case OpLdih:
      // Only rb is a register; ra is a fixed zero field.
      return MapField(W, 16, 20);
    case OpBr:
      return W;
    case OpBsr:
      return Map(RegRA) == RegRA ? std::optional<MachWord>(W) : std::nullopt;
    case OpSys:
      return W;
    default: {
      // Everything else (ALU-immediate, memory, branches, jmp) uses ra + rb.
      MachWord Out = MapField(W, 21, 25);
      return MapField(Out, 16, 20);
    }
    }
  }

  MachWord nopWord() const override { return nop(); }

  bool emitJump(Addr PC, Addr Target, std::vector<MachWord> &Out) const override {
    int64_t DispWords = (static_cast<int64_t>(Target) -
                         (static_cast<int64_t>(PC) + 4)) /
                        4;
    if (!fitsSigned(DispWords, 26))
      return false;
    Out.push_back(encodeBrType(OpBr, static_cast<int32_t>(DispWords)));
    return true; // single word: no delay-slot nop on ARISC
  }

  bool emitCall(Addr PC, Addr Target, std::vector<MachWord> &Out) const override {
    int64_t DispWords = (static_cast<int64_t>(Target) -
                         (static_cast<int64_t>(PC) + 4)) /
                        4;
    if (!fitsSigned(DispWords, 26))
      return false;
    Out.push_back(encodeBrType(OpBsr, static_cast<int32_t>(DispWords)));
    return true;
  }

  void emitLoadConst(unsigned Reg, uint32_t Value,
                     std::vector<MachWord> &Out) const override {
    if (Value <= 0xFFFFu) {
      Out.push_back(encodeIType(OpOri, RegZero, Reg, Value));
      return;
    }
    Out.push_back(encodeIType(OpLdih, 0, Reg, Value >> 16));
    if (Value & 0xFFFFu)
      Out.push_back(encodeIType(OpOri, Reg, Reg, Value & 0xFFFFu));
  }

  void emitLoadWord(unsigned DataReg, unsigned Base, int32_t Offset,
                    std::vector<MachWord> &Out) const override {
    assert(fitsSigned(Offset, 16) && "load offset out of range");
    Out.push_back(encodeIType(OpLdw, DataReg, Base,
                              static_cast<uint32_t>(Offset) & 0xFFFFu));
  }

  void emitStoreWord(unsigned DataReg, unsigned Base, int32_t Offset,
                     std::vector<MachWord> &Out) const override {
    assert(fitsSigned(Offset, 16) && "store offset out of range");
    Out.push_back(encodeIType(OpStw, DataReg, Base,
                              static_cast<uint32_t>(Offset) & 0xFFFFu));
  }

  void emitAddImm(unsigned Rd, unsigned Rs1, int32_t Imm,
                  std::vector<MachWord> &Out) const override {
    assert(fitsSigned(Imm, 16) && "immediate out of range");
    Out.push_back(encodeIType(OpAddi, Rs1, Rd,
                              static_cast<uint32_t>(Imm) & 0xFFFFu));
  }

  void emitAddReg(unsigned Rd, unsigned Rs1, unsigned Rs2,
                  std::vector<MachWord> &Out) const override {
    Out.push_back(encodeOperate(Rs1, Rs2, Rd, FnAdd));
  }

  void emitAluImm(DataOpKind Op, unsigned Rd, unsigned Rs1, int32_t Imm,
                  std::vector<MachWord> &Out) const override {
    switch (Op) {
    case DataOpKind::Add:
      assert(fitsSigned(Imm, 16) && "immediate out of range");
      Out.push_back(encodeIType(OpAddi, Rs1, Rd,
                                static_cast<uint32_t>(Imm) & 0xFFFFu));
      return;
    case DataOpKind::And:
    case DataOpKind::Or:
    case DataOpKind::Xor: {
      assert(fitsUnsigned(static_cast<uint32_t>(Imm), 16) &&
             "immediate out of range");
      uint32_t OpCode = Op == DataOpKind::And  ? OpAndi
                        : Op == DataOpKind::Or ? OpOri
                                               : OpXori;
      Out.push_back(encodeIType(OpCode, Rs1, Rd,
                                static_cast<uint32_t>(Imm) & 0xFFFFu));
      return;
    }
    case DataOpKind::Sll:
      Out.push_back(encodeIType(OpSlli, Rs1, Rd,
                                static_cast<unsigned>(Imm) & 31));
      return;
    case DataOpKind::Srl:
      Out.push_back(encodeIType(OpSrli, Rs1, Rd,
                                static_cast<unsigned>(Imm) & 31));
      return;
    default:
      unreachable("unsupported ALU-immediate operation");
    }
  }

  void emitIndirectJump(unsigned Reg, std::vector<MachWord> &Out,
                        std::optional<MachWord> DelayWord) const override {
    // No delay slot to fill: when the caller supplies a "delay" word, it
    // wants that word executed with the transfer, so place it before.
    if (DelayWord)
      Out.push_back(*DelayWord);
    Out.push_back(encodeJmp(0, Reg));
  }

  bool emitSkipIfEqual(unsigned Ra, unsigned Rb, unsigned SkipWords,
                       std::vector<MachWord> &Out) const override {
    // beq ra, rb, +skip — single word, no condition codes, no nop.
    Out.push_back(encodeBranch(OpBeq, Ra, Rb, static_cast<int32_t>(SkipWords)));
    return false;
  }

  bool emitSkipIfNotEqual(unsigned Ra, unsigned Rb, unsigned SkipWords,
                          std::vector<MachWord> &Out) const override {
    Out.push_back(encodeBranch(OpBne, Ra, Rb, static_cast<int32_t>(SkipWords)));
    return false;
  }

  bool emitSkipIfLess(unsigned Ra, unsigned Rb, unsigned Scratch,
                      unsigned SkipWords,
                      std::vector<MachWord> &Out) const override {
    // Compare-and-branch makes this a single word; Scratch is not needed.
    (void)Scratch;
    Out.push_back(encodeBranch(OpBlt, Ra, Rb, static_cast<int32_t>(SkipWords)));
    return false;
  }

  bool emitSaveCC(unsigned, std::vector<MachWord> &) const override {
    return false; // no condition codes
  }

  bool emitRestoreCC(unsigned, std::vector<MachWord> &) const override {
    return false;
  }

  std::string disassemble(MachWord W, Addr PC) const override;

private:
  TargetConventions Conv;
};

} // namespace

std::string AriscTarget::disassemble(MachWord W, Addr PC) const {
  char Buf[128];
  auto R = [this](unsigned Reg) { return regName(Reg); };
  if (W == nop())
    return "nop";
  switch (fieldOp(W)) {
  case OpOperate: {
    static const char *FnNames[] = {"add", "sub", "and", "or",
                                    "xor", "sll", "srl", "sra",
                                    "mul", "div", "rem", "cmplt"};
    if (fieldFunc(W) > FnCmplt)
      return "<invalid>";
    std::snprintf(Buf, sizeof(Buf), "%s %s, %s, %s", FnNames[fieldFunc(W)],
                  R(fieldRc(W)).c_str(), R(fieldRa(W)).c_str(),
                  R(fieldRb(W)).c_str());
    return Buf;
  }
  case OpLdih:
    if (fieldRa(W) != 0)
      return "<invalid>";
    std::snprintf(Buf, sizeof(Buf), "ldih %s, 0x%x", R(fieldRb(W)).c_str(),
                  fieldUimm16(W));
    return Buf;
  case OpAddi:
  case OpAndi:
  case OpOri:
  case OpXori:
  case OpSlli:
  case OpSrli:
  case OpSrai:
  case OpCmplti: {
    static const struct {
      uint32_t Op;
      const char *Name;
    } INames[] = {{OpAddi, "addi"}, {OpAndi, "andi"},   {OpOri, "ori"},
                  {OpXori, "xori"}, {OpSlli, "slli"},   {OpSrli, "srli"},
                  {OpSrai, "srai"}, {OpCmplti, "cmplti"}};
    for (const auto &Entry : INames) {
      if (Entry.Op != fieldOp(W))
        continue;
      std::snprintf(Buf, sizeof(Buf), "%s %s, %s, %d", Entry.Name,
                    R(fieldRb(W)).c_str(), R(fieldRa(W)).c_str(),
                    fieldSimm16(W));
      return Buf;
    }
    return "<invalid>";
  }
  case OpLdw:
  case OpLdb:
  case OpLdbu:
  case OpLdh:
  case OpLdhu:
  case OpStw:
  case OpStb:
  case OpSth: {
    static const struct {
      uint32_t Op;
      const char *Name;
    } MNames[] = {{OpLdw, "ldw"},   {OpLdb, "ldb"}, {OpLdbu, "ldbu"},
                  {OpLdh, "ldh"},   {OpLdhu, "ldhu"}, {OpStw, "stw"},
                  {OpStb, "stb"},   {OpSth, "sth"}};
    for (const auto &Entry : MNames) {
      if (Entry.Op != fieldOp(W))
        continue;
      std::snprintf(Buf, sizeof(Buf), "%s %s, %d(%s)", Entry.Name,
                    R(fieldRa(W)).c_str(), fieldSimm16(W),
                    R(fieldRb(W)).c_str());
      return Buf;
    }
    return "<invalid>";
  }
  case OpBeq:
  case OpBne:
  case OpBlt:
  case OpBle: {
    static const struct {
      uint32_t Op;
      const char *Name;
    } BNames[] = {{OpBeq, "beq"}, {OpBne, "bne"}, {OpBlt, "blt"},
                  {OpBle, "ble"}};
    Addr Target = PC + 4 + static_cast<Addr>(fieldSimm16(W) * 4);
    for (const auto &Entry : BNames) {
      if (Entry.Op != fieldOp(W))
        continue;
      std::snprintf(Buf, sizeof(Buf), "%s %s, %s, 0x%" PRIx32, Entry.Name,
                    R(fieldRa(W)).c_str(), R(fieldRb(W)).c_str(), Target);
      return Buf;
    }
    return "<invalid>";
  }
  case OpBr:
  case OpBsr: {
    Addr Target = PC + 4 + static_cast<Addr>(fieldSdisp26(W) * 4);
    std::snprintf(Buf, sizeof(Buf), "%s 0x%" PRIx32,
                  fieldOp(W) == OpBr ? "br" : "bsr", Target);
    return Buf;
  }
  case OpJmp:
    if (fieldUimm16(W) != 0)
      return "<invalid>";
    if (fieldRa(W) == 0) {
      std::snprintf(Buf, sizeof(Buf), "jmp (%s)", R(fieldRb(W)).c_str());
      return Buf;
    }
    std::snprintf(Buf, sizeof(Buf), "jmp %s, (%s)", R(fieldRa(W)).c_str(),
                  R(fieldRb(W)).c_str());
    return Buf;
  case OpSys:
    if (fieldRa(W) != 0 || fieldRb(W) != 0)
      return "<invalid>";
    std::snprintf(Buf, sizeof(Buf), "sys %u", fieldUimm16(W));
    return Buf;
  default:
    return "<invalid>";
  }
}

const TargetInfo &eel::ariscTarget() {
  static AriscTarget Target;
  return Target;
}
