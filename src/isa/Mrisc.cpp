//===- isa/Mrisc.cpp - Handwritten MRISC target backend ------------------===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The handwritten machine-specific layer for MRISC (the MIPS-like target),
/// analogous to the paper's 128-line MIPS R2000 port.
///
//===----------------------------------------------------------------------===//

#include "isa/MriscEncoding.h"
#include "isa/Target.h"
#include "support/Error.h"

#include <cinttypes>
#include <cstdio>

using namespace eel;
using namespace eel::mrisc;

static bool isValidRType(MachWord W) {
  uint32_t Funct = fieldFunct(W);
  uint32_t Shamt = fieldShamt(W);
  switch (Funct) {
  case FnSll:
  case FnSrl:
  case FnSra:
    return fieldRs(W) == 0; // immediate shifts leave rs clear
  case FnJalr:
    return Shamt == 0 && fieldRt(W) == 0;
  case FnSllv:
  case FnSrlv:
  case FnSrav:
  case FnMul:
  case FnDiv:
  case FnRem:
  case FnAdd:
  case FnSub:
  case FnAnd:
  case FnOr:
  case FnXor:
  case FnSlt:
    return Shamt == 0;
  case FnJr:
    return Shamt == 0 && fieldRt(W) == 0 && fieldRd(W) == 0;
  case FnSyscall:
    return Shamt == 0 && fieldRs(W) == 0 && fieldRt(W) == 0 && fieldRd(W) == 0;
  default:
    return false;
  }
}

namespace {

/// Handwritten MRISC implementation of the target interface.
class MriscTarget : public TargetInfo {
public:
  MriscTarget() {
    Conv.LinkReg = RegRA;
    Conv.ReturnOffset = 0;
    Conv.StackPointer = RegSP;
    Conv.FramePointer = RegFP;
    Conv.ArgRegs = RegSet{4, 5, 6, 7};
    Conv.RetRegs = RegSet{2, 3};
    Conv.CallerSaved = RegSet{1,  2,  3,  4,  5,  6,  7, 8, 9,
                              10, 11, 12, 13, 14, 15, 24, 25, 31};
    Conv.Reserved = RegSet{RegZero, 26, 27, 28, RegSP, RegFP};
    Conv.SyscallNumReg = RegV0;
    Conv.SyscallReads = RegSet{RegV0, 4, 5, 6};
    Conv.SyscallWrites = RegSet{RegV0};
  }

  TargetArch arch() const override { return TargetArch::Mrisc; }
  const char *name() const override { return "mrisc"; }
  const TargetConventions &conventions() const override { return Conv; }
  unsigned numRegisters() const override { return 32; }
  bool hasConditionCodes() const override { return false; }
  bool branchDelaySlots() const override { return true; }

  std::string regName(unsigned Reg) const override {
    if (Reg == RegIdPC)
      return "$pc";
    assert(Reg < 32 && "bad MRISC register id");
    static const char *Names[32] = {
        "$zero", "$at", "$v0", "$v1", "$a0", "$a1", "$a2", "$a3",
        "$t0",   "$t1", "$t2", "$t3", "$t4", "$t5", "$t6", "$t7",
        "$s0",   "$s1", "$s2", "$s3", "$s4", "$s5", "$s6", "$s7",
        "$t8",   "$t9", "$k0", "$k1", "$gp", "$sp", "$fp", "$ra"};
    return Names[Reg];
  }

  InstCategory classify(MachWord W) const override {
    switch (fieldOp(W)) {
    case OpRType:
      if (!isValidRType(W))
        return InstCategory::Invalid;
      switch (fieldFunct(W)) {
      case FnJr:
      case FnJalr:
        return InstCategory::IndirectJump;
      case FnSyscall:
        return InstCategory::System;
      default:
        return InstCategory::Computation;
      }
    case OpJ:
      return InstCategory::JumpDirect;
    case OpJal:
      return InstCategory::CallDirect;
    case OpBeq:
    case OpBne:
      return InstCategory::BranchDirect;
    case OpBlez:
    case OpBgtz:
      return fieldRt(W) == 0 ? InstCategory::BranchDirect
                             : InstCategory::Invalid;
    case OpAddi:
    case OpSlti:
    case OpAndi:
    case OpOri:
    case OpXori:
      return InstCategory::Computation;
    case OpLui:
      return fieldRs(W) == 0 ? InstCategory::Computation
                             : InstCategory::Invalid;
    case OpLb:
    case OpLh:
    case OpLw:
    case OpLbu:
    case OpLhu:
      return InstCategory::Load;
    case OpSb:
    case OpSh:
    case OpSw:
      return InstCategory::Store;
    default:
      return InstCategory::Invalid;
    }
  }

  RegSet reads(MachWord W) const override {
    RegSet R;
    auto AddReg = [&R](unsigned Reg) {
      if (Reg != RegZero)
        R.insert(Reg);
    };
    if (classify(W) == InstCategory::Invalid)
      return R;
    switch (fieldOp(W)) {
    case OpRType:
      switch (fieldFunct(W)) {
      case FnSll:
      case FnSrl:
      case FnSra:
        AddReg(fieldRt(W));
        return R;
      case FnJr:
        AddReg(fieldRs(W));
        return R;
      case FnJalr:
        AddReg(fieldRs(W));
        return R;
      case FnSyscall:
        // Trap convention: number in v0, arguments in a0-a2.
        return RegSet{RegV0, 4, 5, 6};
      default:
        AddReg(fieldRs(W));
        AddReg(fieldRt(W));
        return R;
      }
    case OpJ:
    case OpJal:
      return R;
    case OpBeq:
    case OpBne:
      AddReg(fieldRs(W));
      AddReg(fieldRt(W));
      return R;
    case OpBlez:
    case OpBgtz:
      AddReg(fieldRs(W));
      return R;
    case OpLui:
      return R;
    case OpSb:
    case OpSh:
    case OpSw:
      AddReg(fieldRs(W));
      AddReg(fieldRt(W)); // stored value
      return R;
    default: // ALU-immediate and loads read the base/source register.
      AddReg(fieldRs(W));
      return R;
    }
  }

  RegSet writes(MachWord W) const override {
    RegSet R;
    auto AddReg = [&R](unsigned Reg) {
      if (Reg != RegZero)
        R.insert(Reg);
    };
    if (classify(W) == InstCategory::Invalid)
      return R;
    switch (fieldOp(W)) {
    case OpRType:
      switch (fieldFunct(W)) {
      case FnJr:
        return R;
      case FnJalr:
        AddReg(fieldRd(W));
        return R;
      case FnSyscall:
        R.insert(RegV0);
        return R;
      default:
        AddReg(fieldRd(W));
        return R;
      }
    case OpJ:
      return R;
    case OpJal:
      R.insert(RegRA);
      return R;
    case OpBeq:
    case OpBne:
    case OpBlez:
    case OpBgtz:
    case OpSb:
    case OpSh:
    case OpSw:
      return R;
    default: // ALU-immediate, lui, loads write rt.
      AddReg(fieldRt(W));
      return R;
    }
  }

  bool hasDelaySlot(MachWord W) const override {
    switch (classify(W)) {
    case InstCategory::BranchDirect:
    case InstCategory::JumpDirect:
    case InstCategory::CallDirect:
    case InstCategory::IndirectJump:
      return true;
    default:
      return false;
    }
  }

  DelayBehavior delayBehavior(MachWord W) const override {
    return hasDelaySlot(W) ? DelayBehavior::Always : DelayBehavior::None;
  }

  bool isConditional(MachWord W) const override {
    switch (fieldOp(W)) {
    case OpBeq:
    case OpBne:
    case OpBlez:
    case OpBgtz:
      return classify(W) == InstCategory::BranchDirect;
    default:
      return false;
    }
  }

  InstMeta decodeMeta(MachWord W) const override {
    // Single-decode path: every MRISC transfer has an unconditionally
    // executed delay slot, so the category determines the delay facts.
    InstMeta M;
    M.Category = classify(W);
    if (M.Category == InstCategory::Invalid)
      return M;
    M.Reads = reads(W);
    M.Writes = writes(W);
    switch (M.Category) {
    case InstCategory::BranchDirect:
      M.Conditional = true;
      [[fallthrough]];
    case InstCategory::JumpDirect:
    case InstCategory::CallDirect:
    case InstCategory::IndirectJump:
      M.HasDelaySlot = true;
      M.Delay = DelayBehavior::Always;
      break;
    default:
      break;
    }
    return M;
  }

  std::optional<Addr> directTarget(MachWord W, Addr PC) const override {
    switch (classify(W)) {
    case InstCategory::BranchDirect:
      // MIPS branch displacements are relative to the delay slot.
      return PC + 4 + static_cast<Addr>(fieldSimm16(W) * 4);
    case InstCategory::JumpDirect:
    case InstCategory::CallDirect:
      return (PC & 0xF0000000u) | (fieldIndex26(W) << 2);
    default:
      return std::nullopt;
    }
  }

  std::optional<IndirectTargetInfo> indirectTarget(MachWord W) const override {
    if (classify(W) != InstCategory::IndirectJump)
      return std::nullopt;
    IndirectTargetInfo Info;
    Info.BaseReg = fieldRs(W);
    Info.Offset = 0;
    Info.LinkReg = fieldFunct(W) == FnJalr ? fieldRd(W) : 0;
    return Info;
  }

  DataOp dataOp(MachWord W) const override {
    DataOp Op;
    if (classify(W) != InstCategory::Computation)
      return Op;
    if (fieldOp(W) == OpRType) {
      uint32_t Funct = fieldFunct(W);
      switch (Funct) {
      case FnSll:
      case FnSrl:
      case FnSra:
        Op.Kind = Funct == FnSll   ? DataOpKind::Sll
                  : Funct == FnSrl ? DataOpKind::Srl
                                   : DataOpKind::Sra;
        Op.Rd = fieldRd(W);
        Op.Rs1 = fieldRt(W);
        Op.HasImm = true;
        Op.Imm = static_cast<int32_t>(fieldShamt(W));
        return Op;
      case FnSllv:
        Op.Kind = DataOpKind::Sll;
        break;
      case FnSrlv:
        Op.Kind = DataOpKind::Srl;
        break;
      case FnSrav:
        Op.Kind = DataOpKind::Sra;
        break;
      case FnMul:
        Op.Kind = DataOpKind::Mul;
        break;
      case FnDiv:
        Op.Kind = DataOpKind::Div;
        break;
      case FnRem:
        Op.Kind = DataOpKind::Rem;
        break;
      case FnAdd:
        Op.Kind = DataOpKind::Add;
        break;
      case FnSub:
        Op.Kind = DataOpKind::Sub;
        break;
      case FnAnd:
        Op.Kind = DataOpKind::And;
        break;
      case FnOr:
        Op.Kind = DataOpKind::Or;
        break;
      case FnXor:
        Op.Kind = DataOpKind::Xor;
        break;
      case FnSlt:
        Op.Kind = DataOpKind::SetLess;
        break;
      default:
        return Op;
      }
      Op.Rd = fieldRd(W);
      if (Funct == FnSllv || Funct == FnSrlv || Funct == FnSrav) {
        // Variable shifts: rd := rt shifted by rs.
        Op.Rs1 = fieldRt(W);
        Op.Rs2 = fieldRs(W);
      } else {
        Op.Rs1 = fieldRs(W);
        Op.Rs2 = fieldRt(W);
      }
      return Op;
    }
    switch (fieldOp(W)) {
    case OpLui:
      Op.Kind = DataOpKind::LoadImmHi;
      Op.Rd = fieldRt(W);
      Op.HasImm = true;
      Op.Imm = static_cast<int32_t>(fieldUimm16(W) << 16);
      return Op;
    case OpAddi:
      Op.Kind = DataOpKind::Add;
      Op.Imm = fieldSimm16(W);
      break;
    case OpSlti:
      Op.Kind = DataOpKind::SetLess;
      Op.Imm = fieldSimm16(W);
      break;
    case OpAndi:
      Op.Kind = DataOpKind::And;
      Op.Imm = static_cast<int32_t>(fieldUimm16(W));
      break;
    case OpOri:
      Op.Kind = DataOpKind::Or;
      Op.Imm = static_cast<int32_t>(fieldUimm16(W));
      break;
    case OpXori:
      Op.Kind = DataOpKind::Xor;
      Op.Imm = static_cast<int32_t>(fieldUimm16(W));
      break;
    default:
      return Op;
    }
    Op.Rd = fieldRt(W);
    Op.Rs1 = fieldRs(W);
    Op.HasImm = true;
    return Op;
  }

  std::optional<MemOp> memOp(MachWord W) const override {
    InstCategory Cat = classify(W);
    if (Cat != InstCategory::Load && Cat != InstCategory::Store)
      return std::nullopt;
    MemOp M;
    M.IsLoad = Cat == InstCategory::Load;
    M.IsStore = !M.IsLoad;
    switch (fieldOp(W)) {
    case OpLb:
    case OpLbu:
    case OpSb:
      M.Width = 1;
      break;
    case OpLh:
    case OpLhu:
    case OpSh:
      M.Width = 2;
      break;
    default:
      M.Width = 4;
      break;
    }
    M.SignExtendLoad = fieldOp(W) == OpLb || fieldOp(W) == OpLh;
    M.AddrBase = fieldRs(W);
    M.Offset = fieldSimm16(W);
    M.DataReg = fieldRt(W);
    return M;
  }

  std::optional<unsigned> syscallNumber(MachWord W) const override {
    // The trap number lives in v0, not in an instruction field.
    (void)W;
    return std::nullopt;
  }

  std::optional<MachWord> retargetDirect(MachWord W, Addr NewPC,
                                         Addr NewTarget) const override {
    switch (classify(W)) {
    case InstCategory::BranchDirect: {
      int64_t DispWords = (static_cast<int64_t>(NewTarget) -
                           (static_cast<int64_t>(NewPC) + 4)) /
                          4;
      if (!fitsSigned(DispWords, 16))
        return std::nullopt;
      return insertBits(W, 0, 15, static_cast<uint32_t>(DispWords));
    }
    case InstCategory::JumpDirect:
    case InstCategory::CallDirect:
      if ((NewPC & 0xF0000000u) != (NewTarget & 0xF0000000u))
        return std::nullopt;
      return insertBits(W, 0, 25, NewTarget >> 2);
    default:
      return std::nullopt;
    }
  }

  std::optional<MachWord>
  rewriteRegisters(MachWord W,
                   const std::function<unsigned(unsigned)> &Map) const override {
    auto MapField = [&](MachWord Word, unsigned Lo, unsigned Hi) {
      unsigned NewReg = Map(extractBits(Word, Lo, Hi));
      assert(NewReg < 32 && "register map produced a bad id");
      return insertBits(Word, Lo, Hi, NewReg);
    };
    switch (fieldOp(W)) {
    case OpRType:
      switch (fieldFunct(W)) {
      case FnSyscall:
        return W;
      case FnJr:
        return MapField(W, 21, 25);
      case FnJalr: {
        MachWord Out = MapField(W, 21, 25);
        return MapField(Out, 11, 15);
      }
      case FnSll:
      case FnSrl:
      case FnSra: {
        MachWord Out = MapField(W, 16, 20);
        return MapField(Out, 11, 15);
      }
      default: {
        MachWord Out = MapField(W, 21, 25);
        Out = MapField(Out, 16, 20);
        return MapField(Out, 11, 15);
      }
      }
    case OpJ:
      return W;
    case OpBlez:
    case OpBgtz:
      // Only rs is a register; rt is a fixed zero field.
      return MapField(W, 21, 25);
    case OpJal:
      return Map(RegRA) == RegRA ? std::optional<MachWord>(W) : std::nullopt;
    case OpLui: {
      return MapField(W, 16, 20);
    }
    default: {
      MachWord Out = MapField(W, 21, 25);
      return MapField(Out, 16, 20);
    }
    }
  }

  MachWord nopWord() const override { return nop(); }

  bool emitJump(Addr PC, Addr Target, std::vector<MachWord> &Out) const override {
    if ((PC & 0xF0000000u) != (Target & 0xF0000000u))
      return false;
    Out.push_back(encodeJType(OpJ, Target >> 2));
    Out.push_back(nop());
    return true;
  }

  bool emitCall(Addr PC, Addr Target, std::vector<MachWord> &Out) const override {
    if ((PC & 0xF0000000u) != (Target & 0xF0000000u))
      return false;
    Out.push_back(encodeJType(OpJal, Target >> 2));
    Out.push_back(nop());
    return true;
  }

  void emitLoadConst(unsigned Reg, uint32_t Value,
                     std::vector<MachWord> &Out) const override {
    if (Value <= 0xFFFFu) {
      Out.push_back(encodeIType(OpOri, RegZero, Reg, Value));
      return;
    }
    Out.push_back(encodeIType(OpLui, 0, Reg, Value >> 16));
    if (Value & 0xFFFFu)
      Out.push_back(encodeIType(OpOri, Reg, Reg, Value & 0xFFFFu));
  }

  void emitLoadWord(unsigned DataReg, unsigned Base, int32_t Offset,
                    std::vector<MachWord> &Out) const override {
    assert(fitsSigned(Offset, 16) && "load offset out of range");
    Out.push_back(encodeIType(OpLw, Base, DataReg,
                              static_cast<uint32_t>(Offset) & 0xFFFFu));
  }

  void emitStoreWord(unsigned DataReg, unsigned Base, int32_t Offset,
                     std::vector<MachWord> &Out) const override {
    assert(fitsSigned(Offset, 16) && "store offset out of range");
    Out.push_back(encodeIType(OpSw, Base, DataReg,
                              static_cast<uint32_t>(Offset) & 0xFFFFu));
  }

  void emitAddImm(unsigned Rd, unsigned Rs1, int32_t Imm,
                  std::vector<MachWord> &Out) const override {
    assert(fitsSigned(Imm, 16) && "immediate out of range");
    Out.push_back(encodeIType(OpAddi, Rs1, Rd,
                              static_cast<uint32_t>(Imm) & 0xFFFFu));
  }

  void emitAddReg(unsigned Rd, unsigned Rs1, unsigned Rs2,
                  std::vector<MachWord> &Out) const override {
    Out.push_back(encodeRType(Rs1, Rs2, Rd, 0, FnAdd));
  }

  void emitAluImm(DataOpKind Op, unsigned Rd, unsigned Rs1, int32_t Imm,
                  std::vector<MachWord> &Out) const override {
    switch (Op) {
    case DataOpKind::Add:
      assert(fitsSigned(Imm, 16) && "immediate out of range");
      Out.push_back(encodeIType(OpAddi, Rs1, Rd,
                                static_cast<uint32_t>(Imm) & 0xFFFFu));
      return;
    case DataOpKind::And:
    case DataOpKind::Or:
    case DataOpKind::Xor: {
      assert(fitsUnsigned(static_cast<uint32_t>(Imm), 16) &&
             "immediate out of range");
      uint32_t OpCode = Op == DataOpKind::And  ? OpAndi
                        : Op == DataOpKind::Or ? OpOri
                                               : OpXori;
      Out.push_back(encodeIType(OpCode, Rs1, Rd,
                                static_cast<uint32_t>(Imm) & 0xFFFFu));
      return;
    }
    case DataOpKind::Sll:
      Out.push_back(encodeRType(0, Rs1, Rd, static_cast<unsigned>(Imm) & 31,
                                FnSll));
      return;
    case DataOpKind::Srl:
      Out.push_back(encodeRType(0, Rs1, Rd, static_cast<unsigned>(Imm) & 31,
                                FnSrl));
      return;
    default:
      unreachable("unsupported ALU-immediate operation");
    }
  }

  void emitIndirectJump(unsigned Reg, std::vector<MachWord> &Out,
                        std::optional<MachWord> DelayWord) const override {
    Out.push_back(encodeRType(Reg, 0, 0, 0, FnJr));
    Out.push_back(DelayWord ? *DelayWord : nop());
  }

  bool emitSkipIfEqual(unsigned Ra, unsigned Rb, unsigned SkipWords,
                       std::vector<MachWord> &Out) const override {
    // beq ra, rb, +(1+skip) ; nop   — no condition codes involved.
    Out.push_back(encodeIType(OpBeq, Ra, Rb,
                              (SkipWords + 1) & 0xFFFFu));
    Out.push_back(nop());
    return false;
  }

  bool emitSkipIfNotEqual(unsigned Ra, unsigned Rb, unsigned SkipWords,
                          std::vector<MachWord> &Out) const override {
    Out.push_back(encodeIType(OpBne, Ra, Rb,
                              (SkipWords + 1) & 0xFFFFu));
    Out.push_back(nop());
    return false;
  }

  bool emitSkipIfLess(unsigned Ra, unsigned Rb, unsigned Scratch,
                      unsigned SkipWords,
                      std::vector<MachWord> &Out) const override {
    Out.push_back(encodeRType(Ra, Rb, Scratch, 0, FnSlt));
    Out.push_back(encodeIType(OpBne, Scratch, 0, (SkipWords + 1) & 0xFFFFu));
    Out.push_back(nop());
    return false;
  }

  bool emitSaveCC(unsigned, std::vector<MachWord> &) const override {
    return false; // no condition codes
  }

  bool emitRestoreCC(unsigned, std::vector<MachWord> &) const override {
    return false;
  }

  std::string disassemble(MachWord W, Addr PC) const override;

private:
  TargetConventions Conv;
};

} // namespace

std::string MriscTarget::disassemble(MachWord W, Addr PC) const {
  char Buf[128];
  auto R = [this](unsigned Reg) { return regName(Reg); };
  if (W == nop())
    return "nop";
  switch (fieldOp(W)) {
  case OpRType: {
    if (!isValidRType(W))
      return "<invalid>";
    uint32_t Funct = fieldFunct(W);
    static const struct {
      uint32_t Funct;
      const char *Name;
    } RNames[] = {{FnSllv, "sllv"}, {FnSrlv, "srlv"}, {FnSrav, "srav"},
                  {FnMul, "mul"},   {FnDiv, "div"},   {FnRem, "rem"},
                  {FnAdd, "add"},   {FnSub, "sub"},   {FnAnd, "and"},
                  {FnOr, "or"},     {FnXor, "xor"},   {FnSlt, "slt"}};
    switch (Funct) {
    case FnSll:
    case FnSrl:
    case FnSra: {
      const char *Name = Funct == FnSll ? "sll" : Funct == FnSrl ? "srl" : "sra";
      std::snprintf(Buf, sizeof(Buf), "%s %s, %s, %u", Name,
                    R(fieldRd(W)).c_str(), R(fieldRt(W)).c_str(),
                    fieldShamt(W));
      return Buf;
    }
    case FnJr:
      std::snprintf(Buf, sizeof(Buf), "jr %s", R(fieldRs(W)).c_str());
      return Buf;
    case FnJalr:
      std::snprintf(Buf, sizeof(Buf), "jalr %s, %s", R(fieldRd(W)).c_str(),
                    R(fieldRs(W)).c_str());
      return Buf;
    case FnSyscall:
      return "syscall";
    default:
      for (const auto &Entry : RNames) {
        if (Entry.Funct != Funct)
          continue;
        std::snprintf(Buf, sizeof(Buf), "%s %s, %s, %s", Entry.Name,
                      R(fieldRd(W)).c_str(), R(fieldRs(W)).c_str(),
                      R(fieldRt(W)).c_str());
        return Buf;
      }
      return "<invalid>";
    }
  }
  case OpJ:
  case OpJal:
    std::snprintf(Buf, sizeof(Buf), "%s 0x%" PRIx32,
                  fieldOp(W) == OpJ ? "j" : "jal",
                  (PC & 0xF0000000u) | (fieldIndex26(W) << 2));
    return Buf;
  case OpBeq:
  case OpBne: {
    Addr Target = PC + 4 + static_cast<Addr>(fieldSimm16(W) * 4);
    std::snprintf(Buf, sizeof(Buf), "%s %s, %s, 0x%" PRIx32,
                  fieldOp(W) == OpBeq ? "beq" : "bne", R(fieldRs(W)).c_str(),
                  R(fieldRt(W)).c_str(), Target);
    return Buf;
  }
  case OpBlez:
  case OpBgtz: {
    if (fieldRt(W) != 0)
      return "<invalid>";
    Addr Target = PC + 4 + static_cast<Addr>(fieldSimm16(W) * 4);
    std::snprintf(Buf, sizeof(Buf), "%s %s, 0x%" PRIx32,
                  fieldOp(W) == OpBlez ? "blez" : "bgtz",
                  R(fieldRs(W)).c_str(), Target);
    return Buf;
  }
  case OpLui:
    if (fieldRs(W) != 0)
      return "<invalid>";
    std::snprintf(Buf, sizeof(Buf), "lui %s, 0x%x", R(fieldRt(W)).c_str(),
                  fieldUimm16(W));
    return Buf;
  case OpAddi:
  case OpSlti:
  case OpAndi:
  case OpOri:
  case OpXori: {
    static const struct {
      uint32_t Op;
      const char *Name;
    } INames[] = {{OpAddi, "addi"},
                  {OpSlti, "slti"},
                  {OpAndi, "andi"},
                  {OpOri, "ori"},
                  {OpXori, "xori"}};
    for (const auto &Entry : INames) {
      if (Entry.Op != fieldOp(W))
        continue;
      std::snprintf(Buf, sizeof(Buf), "%s %s, %s, %d", Entry.Name,
                    R(fieldRt(W)).c_str(), R(fieldRs(W)).c_str(),
                    fieldSimm16(W));
      return Buf;
    }
    return "<invalid>";
  }
  case OpLb:
  case OpLh:
  case OpLw:
  case OpLbu:
  case OpLhu:
  case OpSb:
  case OpSh:
  case OpSw: {
    static const struct {
      uint32_t Op;
      const char *Name;
    } MNames[] = {{OpLb, "lb"},   {OpLh, "lh"},   {OpLw, "lw"},
                  {OpLbu, "lbu"}, {OpLhu, "lhu"}, {OpSb, "sb"},
                  {OpSh, "sh"},   {OpSw, "sw"}};
    for (const auto &Entry : MNames) {
      if (Entry.Op != fieldOp(W))
        continue;
      std::snprintf(Buf, sizeof(Buf), "%s %s, %d(%s)", Entry.Name,
                    R(fieldRt(W)).c_str(), fieldSimm16(W),
                    R(fieldRs(W)).c_str());
      return Buf;
    }
    return "<invalid>";
  }
  default:
    return "<invalid>";
  }
}

const TargetInfo &eel::mriscTarget() {
  static MriscTarget Target;
  return Target;
}

const TargetInfo &eel::targetFor(TargetArch Arch) {
  switch (Arch) {
  case TargetArch::Srisc:
    return sriscTarget();
  case TargetArch::Mrisc:
    return mriscTarget();
  case TargetArch::Arisc:
    return ariscTarget();
  }
  unreachable("unknown target architecture");
}
