//===- isa/Descriptions.cpp - Embedded spawn machine descriptions --------===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Machine descriptions in the spawn description language (see
/// spawn/DescParser.h for the grammar). Comments start with `--`. Structure
/// follows Figure 7 of the paper: resource definitions (fields, registers),
/// then encoding patterns, then semantic functions bound to instructions
/// with `sem ... is fn @ [args]` zips. A `;` inside a semantic expression
/// separates issue-time statements from the delayed control transfer, which
/// is how spawn learns an instruction has a delay slot.
///
//===----------------------------------------------------------------------===//

#include "isa/Descriptions.h"

const char *eel::sriscDescription() {
  return R"(
-- SRISC: a SPARC-like 32-bit RISC.
arch srisc
wordsize 32

-- Instruction field definitions (bit lo:hi, bit 0 is the LSB).
fields
  op 30:31, rd 25:29, op2 22:24, op3 19:24, rs1 14:18,
  i 13:13, simm13 0:12, rs2 0:4, imm22 0:21, disp22 0:21,
  disp30 0:29, cond 25:28, a 29:29, sysnum 0:12

-- Register resources. R[0] is hard zero; CC is the condition-code register.
register int{32} R[32]
zero R[0]
register cc{4} CC

-- Encoding patterns (the instruction-name matrices of Figure 7).
pat sethi is op=0 && op2=4
pat [ bn be ble bl bleu bcs bneg bvs ba bne bg bge bgu bcc bpos bvc ]
  is op=0 && op2=2 && cond=[0 1 2 3 4 5 6 7 8 9 10 11 12 13 14 15]
pat call is op=1
pat [ add and or xor sub sll srl sra smul sdiv srem ]
  is op=2 && op3=[0x00 0x01 0x02 0x03 0x04 0x05 0x06 0x07 0x08 0x09 0x0a]
pat [ addcc andcc orcc xorcc subcc ]
  is op=2 && op3=[0x10 0x11 0x12 0x13 0x14]
pat rdcc is op=2 && op3=0x30
pat wrcc is op=2 && op3=0x31
pat jmpl is op=2 && op3=0x38
pat sys is op=2 && op3=0x3a && i=1
pat [ ld ldub lduh ldsb ldsh st stb sth ]
  is op=3 && op3=[0x00 0x01 0x02 0x03 0x04 0x08 0x09 0x0a]

-- Semantics. `op2val` is the classic SPARC reg-or-imm second operand.
val op2val is i = 1 ? sx(simm13) : R[rs2]
val alu(f) is R[rd] := f(R[rs1], op2val)
val alucc(f, c) is R[rd] := f(R[rs1], op2val), CC := c(R[rs1], op2val)

sem [ add and or xor sub sll srl sra smul sdiv srem ]
  is alu @ [ add and or xor sub sll srl sra mul div rem ]
sem [ addcc andcc orcc xorcc subcc ]
  is alucc @ [ (add cc_add) (and cc_and) (or cc_or) (xor cc_xor) (sub cc_sub) ]
sem sethi is R[rd] := imm22 << 10
sem rdcc is R[rd] := CC
sem wrcc is CC := R[rs1]

-- Control transfers: statements after `;` overlap the delay slot.
val branch(t) is
  tgt := PC + (sx(disp22) << 2) ; t(CC) ? pc := tgt : a = 1 ? annul
sem [ be ble bl bleu bcs bneg bvs bne bg bge bgu bcc bpos bvc ]
  is branch @ [ cond_e cond_le cond_l cond_leu cond_cs cond_neg cond_vs
                cond_ne cond_g cond_ge cond_gu cond_cc cond_pos cond_vc ]
sem ba is tgt := PC + (sx(disp22) << 2) ; pc := tgt, a = 1 ? annul
sem bn is skip ; a = 1 ? annul
sem call is tgt := PC + (sx(disp30) << 2), R[15] := PC ; pc := tgt
sem jmpl is tgt := R[rs1] + op2val, R[rd] := PC ; pc := tgt
sem sys is trap sysnum

-- Memory.
val lod(w, s) is R[rd] := mem(R[rs1] + op2val, w, s)
val sto(w) is mem(R[rs1] + op2val, w) := R[rd]
sem [ ld ldub lduh ldsb ldsh ] is lod @ [ (4 0) (1 0) (2 0) (1 1) (2 1) ]
sem [ st stb sth ] is sto @ [ 4 1 2 ]
)";
}

const char *eel::mriscDescription() {
  return R"(
-- MRISC: a MIPS-like 32-bit RISC.
arch mrisc
wordsize 32

fields
  op 26:31, rs 21:25, rt 16:20, rd 11:15, shamt 6:10, funct 0:5,
  imm16 0:15, index26 0:25

register int{32} R[32]
zero R[0]

pat [ sll srl sra ] is op=0 && rs=0 && funct=[0x00 0x02 0x03]
pat [ sllv srlv srav ] is op=0 && shamt=0 && funct=[0x04 0x06 0x07]
pat jr is op=0 && rt=0 && rd=0 && shamt=0 && funct=0x08
pat jalr is op=0 && rt=0 && shamt=0 && funct=0x09
pat syscall is op=0 && rs=0 && rt=0 && rd=0 && shamt=0 && funct=0x0c
pat [ mul div rem ] is op=0 && shamt=0 && funct=[0x18 0x1a 0x1b]
pat [ add sub and or xor slt ]
  is op=0 && shamt=0 && funct=[0x20 0x22 0x24 0x25 0x26 0x2a]
pat j is op=0x02
pat jal is op=0x03
pat [ beq bne ] is op=[0x04 0x05]
pat [ blez bgtz ] is op=[0x06 0x07] && rt=0
pat [ addi slti ] is op=[0x08 0x0a]
pat [ andi ori xori ] is op=[0x0c 0x0d 0x0e]
pat lui is op=0x0f && rs=0
pat [ lb lh lw lbu lhu ] is op=[0x20 0x21 0x23 0x24 0x25]
pat [ sb sh sw ] is op=[0x28 0x29 0x2b]

val alur(f) is R[rd] := f(R[rs], R[rt])
sem [ add sub and or xor slt mul div rem ]
  is alur @ [ add sub and or xor setless mul div rem ]
val alus(f) is R[rd] := f(R[rt], shamt)
sem [ sll srl sra ] is alus @ [ sll srl sra ]
val aluv(f) is R[rd] := f(R[rt], R[rs])
sem [ sllv srlv srav ] is aluv @ [ sll srl sra ]
val alui(f) is R[rt] := f(R[rs], sx(imm16))
sem [ addi slti ] is alui @ [ add setless ]
val aluz(f) is R[rt] := f(R[rs], imm16)
sem [ andi ori xori ] is aluz @ [ and or xor ]
sem lui is R[rt] := imm16 << 16

-- Branch displacements are relative to the delay slot, as on MIPS.
val brc(t) is tgt := PC + 4 + (sx(imm16) << 2) ; t(R[rs], R[rt]) ? pc := tgt
sem [ beq bne ] is brc @ [ eq ne ]
val brz(t) is tgt := PC + 4 + (sx(imm16) << 2) ; t(R[rs], 0) ? pc := tgt
sem [ blez bgtz ] is brz @ [ les gts ]
sem j is tgt := (PC & 0xf0000000) | (index26 << 2) ; pc := tgt
sem jal is tgt := (PC & 0xf0000000) | (index26 << 2), R[31] := PC + 8 ; pc := tgt
sem jr is tgt := R[rs] ; pc := tgt
sem jalr is tgt := R[rs], R[rd] := PC + 8 ; pc := tgt
sem syscall is trap R[2]

val lod(w, s) is R[rt] := mem(R[rs] + sx(imm16), w, s)
sem [ lb lh lw lbu lhu ] is lod @ [ (1 1) (2 1) (4 0) (1 0) (2 0) ]
val sto(w) is mem(R[rs] + sx(imm16), w) := R[rt]
sem [ sb sh sw ] is sto @ [ 1 2 4 ]
)";
}

const char *eel::ariscDescription() {
  return R"(
-- ARISC: an Alpha-like 32-bit RISC. No delay slots, no annul bits, no
-- condition codes: every transfer takes effect immediately, so no semantic
-- expression below contains a `;` delay mark.
arch arisc
wordsize 32

fields
  op 26:31, ra 21:25, rb 16:20, rc 11:15, func 0:10,
  imm16 0:15, disp26 0:25

register int{32} R[32]
zero R[0]

pat [ add sub and or xor sll srl sra mul div rem cmplt ]
  is op=0x10 && func=[0x00 0x01 0x02 0x03 0x04 0x05
                      0x06 0x07 0x08 0x09 0x0a 0x0b]
pat [ addi cmplti ] is op=[0x11 0x18]
pat [ andi ori xori ] is op=[0x12 0x13 0x14]
pat [ slli srli srai ] is op=[0x15 0x16 0x17]
pat ldih is op=0x19 && ra=0
pat [ ldw ldb ldbu ldh ldhu ] is op=[0x20 0x21 0x22 0x23 0x24]
pat [ stw stb sth ] is op=[0x28 0x29 0x2a]
pat [ beq bne blt ble ] is op=[0x30 0x31 0x32 0x33]
pat br is op=0x34
pat bsr is op=0x35
pat jmp is op=0x36 && imm16=0
pat sys is op=0x3f && ra=0 && rb=0

val alur(f) is R[rc] := f(R[ra], R[rb])
sem [ add sub and or xor sll srl sra mul div rem cmplt ]
  is alur @ [ add sub and or xor sll srl sra mul div rem setless ]
val alui(f) is R[rb] := f(R[ra], sx(imm16))
sem [ addi cmplti ] is alui @ [ add setless ]
val aluz(f) is R[rb] := f(R[ra], imm16)
sem [ andi ori xori ] is aluz @ [ and or xor ]
val alus(f) is R[rb] := f(R[ra], imm16)
sem [ slli srli srai ] is alus @ [ sll srl sra ]
sem ldih is R[rb] := imm16 << 16

-- Branch displacements are relative to the next instruction (there is no
-- delay slot for them to be relative to).
val brc(t) is tgt := PC + 4 + (sx(imm16) << 2), t(R[ra], R[rb]) ? pc := tgt
sem [ beq bne blt ble ] is brc @ [ eq ne setless les ]
sem br is tgt := PC + 4 + (sx(disp26) << 2), pc := tgt
sem bsr is tgt := PC + 4 + (sx(disp26) << 2), R[26] := PC + 4, pc := tgt
sem jmp is tgt := R[rb], R[ra] := PC + 4, pc := tgt
sem sys is trap imm16

val lod(w, s) is R[ra] := mem(R[rb] + sx(imm16), w, s)
sem [ ldw ldb ldbu ldh ldhu ] is lod @ [ (4 0) (1 1) (1 0) (2 1) (2 0) ]
val sto(w) is mem(R[rb] + sx(imm16), w) := R[ra]
sem [ stw stb sth ] is sto @ [ 4 1 2 ]
)";
}
