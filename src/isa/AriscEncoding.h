//===- isa/AriscEncoding.h - ARISC instruction encoding --------*- C++ -*-===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Encoding constants and field helpers for ARISC, the project's Alpha-like
/// third target. ARISC stresses the machine-independence claim from the
/// opposite direction to SRISC/MRISC: it has *no* branch delay slots and no
/// annul bits, so every transfer takes effect immediately and the CFG
/// normalization's "nothing to normalize" path must actually work. Relative
/// to MRISC it also differs in exactly the ways Alpha differs from MIPS —
/// all transfers are PC-relative (no absolute-region jumps), the call is a
/// `bsr` writing PC+4, the one overloaded indirect is `jmp ra,(rb)`, and
/// constants materialize via `ldih`/`ori`.
///
/// Formats (op = bits 31:26):
///   op=0x10          : operate   ra, rb, rc, func    rc := ra <func> rb
///   op=0x11..0x19    : opr-imm   ra, rb, imm16       rb := ra <op> imm
///   op=0x20.., 0x28..: memory    ra, rb, disp16      data ra, base rb
///   op=0x30..0x33    : branch    ra, rb, disp16      PC + 4 + disp*4
///   op=0x34, 0x35    : br / bsr  disp26              PC + 4 + disp*4
///   op=0x36          : jmp       ra, rb              R[ra] := PC+4; pc := rb
///   op=0x3f          : sys       imm16               trap number immediate
///
/// One deliberate deviation from Alpha: the hard-zero register is r0 (not
/// r31), matching the other two targets' conventions.
///
//===----------------------------------------------------------------------===//

#ifndef EEL_ISA_ARISCENCODING_H
#define EEL_ISA_ARISCENCODING_H

#include "support/BitOps.h"
#include "isa/Target.h"

namespace eel {
namespace arisc {

// Major opcodes.
enum : uint32_t {
  OpOperate = 0x10,
  OpAddi = 0x11,
  OpAndi = 0x12,
  OpOri = 0x13,
  OpXori = 0x14,
  OpSlli = 0x15,
  OpSrli = 0x16,
  OpSrai = 0x17,
  OpCmplti = 0x18,
  OpLdih = 0x19,
  OpLdw = 0x20,
  OpLdb = 0x21,
  OpLdbu = 0x22,
  OpLdh = 0x23,
  OpLdhu = 0x24,
  OpStw = 0x28,
  OpStb = 0x29,
  OpSth = 0x2A,
  OpBeq = 0x30,
  OpBne = 0x31,
  OpBlt = 0x32,
  OpBle = 0x33,
  OpBr = 0x34,
  OpBsr = 0x35,
  OpJmp = 0x36,
  OpSys = 0x3F,
};

// Operate-format func values.
enum : uint32_t {
  FnAdd = 0x00,
  FnSub = 0x01,
  FnAnd = 0x02,
  FnOr = 0x03,
  FnXor = 0x04,
  FnSll = 0x05,
  FnSrl = 0x06,
  FnSra = 0x07,
  FnMul = 0x08,
  FnDiv = 0x09,
  FnRem = 0x0A,
  FnCmplt = 0x0B,
};

// Well-known registers (Alpha-flavored names; r0 is hard zero).
enum : unsigned {
  RegZero = 0,
  RegV0 = 1,
  RegFP = 15,
  RegA0 = 16,
  RegRA = 26,
  RegAT = 28,
  RegGP = 29,
  RegSP = 30,
};

// Field accessors.
inline uint32_t fieldOp(MachWord W) { return extractBits(W, 26, 31); }
inline uint32_t fieldRa(MachWord W) { return extractBits(W, 21, 25); }
inline uint32_t fieldRb(MachWord W) { return extractBits(W, 16, 20); }
inline uint32_t fieldRc(MachWord W) { return extractBits(W, 11, 15); }
inline uint32_t fieldFunc(MachWord W) { return extractBits(W, 0, 10); }
inline uint32_t fieldUimm16(MachWord W) { return extractBits(W, 0, 15); }
inline int32_t fieldSimm16(MachWord W) {
  return signExtend(extractBits(W, 0, 15), 16);
}
inline int32_t fieldSdisp26(MachWord W) {
  return signExtend(extractBits(W, 0, 25), 26);
}

// Encoders.

inline MachWord encodeOperate(unsigned Ra, unsigned Rb, unsigned Rc,
                              uint32_t Func) {
  MachWord W = 0;
  W = insertBits(W, 26, 31, OpOperate);
  W = insertBits(W, 21, 25, Ra);
  W = insertBits(W, 16, 20, Rb);
  W = insertBits(W, 11, 15, Rc);
  W = insertBits(W, 0, 10, Func);
  return W;
}

inline MachWord encodeIType(uint32_t Op, unsigned Ra, unsigned Rb,
                            uint32_t Imm16) {
  MachWord W = 0;
  W = insertBits(W, 26, 31, Op);
  W = insertBits(W, 21, 25, Ra);
  W = insertBits(W, 16, 20, Rb);
  W = insertBits(W, 0, 15, Imm16);
  return W;
}

inline MachWord encodeBranch(uint32_t Op, unsigned Ra, unsigned Rb,
                             int32_t DispWords) {
  return encodeIType(Op, Ra, Rb, static_cast<uint32_t>(DispWords) & 0xFFFFu);
}

inline MachWord encodeBrType(uint32_t Op, int32_t DispWords) {
  MachWord W = 0;
  W = insertBits(W, 26, 31, Op);
  W = insertBits(W, 0, 25, static_cast<uint32_t>(DispWords));
  return W;
}

inline MachWord encodeJmp(unsigned RaLink, unsigned RbBase) {
  return encodeIType(OpJmp, RaLink, RbBase, 0);
}

inline MachWord encodeSys(unsigned Num) {
  return encodeIType(OpSys, 0, 0, Num);
}

/// The canonical ARISC nop: ori r0, r0, 0.
inline MachWord nop() { return encodeIType(OpOri, 0, 0, 0); }

} // namespace arisc
} // namespace eel

#endif // EEL_ISA_ARISCENCODING_H
