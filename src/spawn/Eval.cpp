//===- spawn/Eval.cpp - Concrete RTL execution ------------------------------===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//

#include "spawn/Eval.h"

#include "support/BitOps.h"
#include "support/Error.h"

#include <map>

using namespace eel;
using namespace eel::spawn;

namespace {

// 4-bit NZVC condition-code helpers (semantics of the cc_* builtins; these
// duplicate the SRISC encoding helpers deliberately — the evaluator must not
// depend on any handwritten backend).
enum : uint32_t { FlagC = 1, FlagV = 2, FlagZ = 4, FlagN = 8 };

static uint32_t ccAdd(uint32_t A, uint32_t B) {
  uint32_t R = A + B;
  uint32_t CC = 0;
  if (R & 0x80000000u)
    CC |= FlagN;
  if (R == 0)
    CC |= FlagZ;
  if (((A ^ R) & (B ^ R)) & 0x80000000u)
    CC |= FlagV;
  if (R < A)
    CC |= FlagC;
  return CC;
}

static uint32_t ccSub(uint32_t A, uint32_t B) {
  uint32_t R = A - B;
  uint32_t CC = 0;
  if (R & 0x80000000u)
    CC |= FlagN;
  if (R == 0)
    CC |= FlagZ;
  if (((A ^ B) & (A ^ R)) & 0x80000000u)
    CC |= FlagV;
  if (A < B)
    CC |= FlagC;
  return CC;
}

static uint32_t ccLogic(uint32_t R) {
  uint32_t CC = 0;
  if (R & 0x80000000u)
    CC |= FlagN;
  if (R == 0)
    CC |= FlagZ;
  return CC;
}

static uint32_t evalBuiltin(RtlFn Fn, const std::vector<uint32_t> &Args) {
  auto A = [&](size_t I) { return Args[I]; };
  auto SA = [&](size_t I) { return static_cast<int32_t>(Args[I]); };
  bool N, Z, V, C;
  auto UnpackCC = [&](uint32_t CC) {
    N = CC & FlagN;
    Z = CC & FlagZ;
    V = CC & FlagV;
    C = CC & FlagC;
  };
  switch (Fn) {
  case RtlFn::Add:
    return A(0) + A(1);
  case RtlFn::Sub:
    return A(0) - A(1);
  case RtlFn::And:
    return A(0) & A(1);
  case RtlFn::Or:
    return A(0) | A(1);
  case RtlFn::Xor:
    return A(0) ^ A(1);
  case RtlFn::Sll:
    return A(0) << (A(1) & 31);
  case RtlFn::Srl:
    return A(0) >> (A(1) & 31);
  case RtlFn::Sra:
    return static_cast<uint32_t>(SA(0) >> (A(1) & 31));
  case RtlFn::Mul:
    // Wrapping semantics; unsigned multiply has the same low 32 bits and
    // no signed-overflow UB.
    return A(0) * A(1);
  case RtlFn::Div:
    if (SA(1) == 0)
      return 0;
    if (SA(0) == INT32_MIN && SA(1) == -1)
      return static_cast<uint32_t>(INT32_MIN);
    return static_cast<uint32_t>(SA(0) / SA(1));
  case RtlFn::Rem:
    if (SA(1) == 0)
      return A(0);
    if (SA(0) == INT32_MIN && SA(1) == -1)
      return 0;
    return static_cast<uint32_t>(SA(0) % SA(1));
  case RtlFn::SetLess:
    return SA(0) < SA(1) ? 1 : 0;
  case RtlFn::Eq:
    return A(0) == A(1) ? 1 : 0;
  case RtlFn::Ne:
    return A(0) != A(1) ? 1 : 0;
  case RtlFn::Les:
    return SA(0) <= SA(1) ? 1 : 0;
  case RtlFn::Gts:
    return SA(0) > SA(1) ? 1 : 0;
  case RtlFn::CcAdd:
    return ccAdd(A(0), A(1));
  case RtlFn::CcSub:
    return ccSub(A(0), A(1));
  case RtlFn::CcAnd:
    return ccLogic(A(0) & A(1));
  case RtlFn::CcOr:
    return ccLogic(A(0) | A(1));
  case RtlFn::CcXor:
    return ccLogic(A(0) ^ A(1));
  case RtlFn::CondE:
    UnpackCC(A(0));
    return Z;
  case RtlFn::CondLe:
    UnpackCC(A(0));
    return Z || (N != V);
  case RtlFn::CondL:
    UnpackCC(A(0));
    return N != V;
  case RtlFn::CondLeu:
    UnpackCC(A(0));
    return C || Z;
  case RtlFn::CondCs:
    UnpackCC(A(0));
    return C;
  case RtlFn::CondNeg:
    UnpackCC(A(0));
    return N;
  case RtlFn::CondVs:
    UnpackCC(A(0));
    return V;
  case RtlFn::CondNe:
    UnpackCC(A(0));
    return !Z;
  case RtlFn::CondG:
    UnpackCC(A(0));
    return !(Z || (N != V));
  case RtlFn::CondGe:
    UnpackCC(A(0));
    return N == V;
  case RtlFn::CondGu:
    UnpackCC(A(0));
    return !(C || Z);
  case RtlFn::CondCc:
    UnpackCC(A(0));
    return !C;
  case RtlFn::CondPos:
    UnpackCC(A(0));
    return !N;
  case RtlFn::CondVc:
    UnpackCC(A(0));
    return !V;
  case RtlFn::Sx:
    unreachable("sx handled at the Apply site");
  }
  unreachable("unhandled builtin");
}

/// One instruction's concrete execution.
class Evaluator {
public:
  Evaluator(const MachineDesc &Desc, Machine &M, Addr PC, MachWord Word)
      : Desc(Desc), M(M), PC(PC), Word(Word) {}

  StepOutcome run();

private:
  struct PendingRegWrite {
    unsigned Id;
    uint32_t Value;
  };
  struct PendingMemWrite {
    Addr A;
    unsigned Width;
    uint32_t Value;
  };

  uint32_t evalExpr(const ExprP &E);
  unsigned regId(const Expr &Reg);
  void execStmts(const std::vector<StmtP> &Stmts);
  void execStmt(const Stmt &S);
  void commit();

  const MachineDesc &Desc;
  Machine &M;
  Addr PC;
  MachWord Word;
  StepOutcome Out;
  std::map<std::string, uint32_t> Locals;
  std::vector<PendingRegWrite> RegWrites;
  std::vector<PendingMemWrite> MemWrites;
  bool PendingTrap = false;
  uint32_t TrapNumber = 0;
};

} // namespace

unsigned Evaluator::regId(const Expr &Reg) {
  const RegFileDef &RF = Desc.RegFiles[Reg.FileIndex];
  if (RF.Count == 0)
    return RF.BaseId;
  return RF.BaseId + (evalExpr(Reg.Args[0]) % RF.Count);
}

uint32_t Evaluator::evalExpr(const ExprP &E) {
  switch (E->K) {
  case Expr::Kind::Const:
    return static_cast<uint32_t>(E->IntVal);
  case Expr::Kind::Field: {
    const FieldDef *F = Desc.field(E->Name);
    assert(F && "unknown field");
    return Desc.fieldValue(*F, Word);
  }
  case Expr::Kind::Pc:
    return PC;
  case Expr::Kind::Local: {
    auto It = Locals.find(E->Name);
    if (It == Locals.end())
      reportFatalError("semantics read unbound temporary '" + E->Name + "'");
    return It->second;
  }
  case Expr::Kind::Reg:
    return M.cpu().Regs[regId(*E)];
  case Expr::Kind::Mem: {
    Addr A = evalExpr(E->Args[0]);
    if (A & (E->MemWidth - 1)) {
      Out.BadAlign = true;
      return 0;
    }
    if (M.OnMemory)
      M.OnMemory(PC, A, E->MemWidth, /*IsStore=*/false);
    uint32_t Raw;
    switch (E->MemWidth) {
    case 1:
      Raw = M.memory().readByte(A);
      break;
    case 2:
      Raw = M.memory().readHalf(A);
      break;
    default:
      Raw = M.memory().readWord(A);
      break;
    }
    if (E->MemSignExtend)
      Raw = static_cast<uint32_t>(signExtend(Raw, E->MemWidth * 8));
    return Raw;
  }
  case Expr::Kind::Binary: {
    uint32_t L = evalExpr(E->Args[0]);
    uint32_t R = evalExpr(E->Args[1]);
    switch (E->Op) {
    case RtlBinOp::Add:
      return L + R;
    case RtlBinOp::Sub:
      return L - R;
    case RtlBinOp::Mul:
      return L * R;
    case RtlBinOp::And:
      return L & R;
    case RtlBinOp::Or:
      return L | R;
    case RtlBinOp::Xor:
      return L ^ R;
    case RtlBinOp::Shl:
      return L << (R & 31);
    case RtlBinOp::Eq:
      return L == R ? 1 : 0;
    case RtlBinOp::Ne:
      return L != R ? 1 : 0;
    }
    unreachable("unhandled binary operator");
  }
  case Expr::Kind::Ternary:
    return evalExpr(E->Args[0]) ? evalExpr(E->Args[1]) : evalExpr(E->Args[2]);
  case Expr::Kind::Apply: {
    if (E->Fn == RtlFn::Sx) {
      const FieldDef *F = Desc.field(E->Args[0]->Name);
      assert(F && "sx of unknown field");
      return static_cast<uint32_t>(
          signExtend(Desc.fieldValue(*F, Word), F->width()));
    }
    std::vector<uint32_t> Args;
    Args.reserve(E->Args.size());
    for (const ExprP &Arg : E->Args)
      Args.push_back(evalExpr(Arg));
    return evalBuiltin(E->Fn, Args);
  }
  }
  unreachable("unhandled expression kind");
}

void Evaluator::execStmt(const Stmt &S) {
  switch (S.K) {
  case Stmt::Kind::Skip:
    return;
  case Stmt::Kind::AssignLocal:
    Locals[S.Name] = evalExpr(S.Rhs);
    return;
  case Stmt::Kind::AssignReg: {
    unsigned Id = regId(*S.Lhs);
    uint32_t Value = evalExpr(S.Rhs);
    if (static_cast<int>(Id) != Desc.ZeroRegId)
      RegWrites.push_back({Id, Value});
    return;
  }
  case Stmt::Kind::AssignPc: {
    Out.Branch = true;
    Out.Target = evalExpr(S.Rhs);
    return;
  }
  case Stmt::Kind::AssignMem: {
    Addr A = evalExpr(S.Lhs->Args[0]);
    unsigned Width = S.Lhs->MemWidth;
    uint32_t Value = evalExpr(S.Rhs);
    if (A & (Width - 1)) {
      Out.BadAlign = true;
      return;
    }
    if (M.OnMemory)
      M.OnMemory(PC, A, Width, /*IsStore=*/true);
    MemWrites.push_back({A, Width, Value});
    return;
  }
  case Stmt::Kind::Annul:
    Out.Annul = true;
    return;
  case Stmt::Kind::Trap:
    PendingTrap = true;
    TrapNumber = evalExpr(S.Rhs);
    return;
  case Stmt::Kind::Guard:
    if (evalExpr(S.Cond))
      execStmts(S.Then);
    else
      execStmts(S.Else);
    return;
  }
}

void Evaluator::execStmts(const std::vector<StmtP> &Stmts) {
  for (const StmtP &S : Stmts) {
    execStmt(*S);
    if (Out.BadAlign)
      return;
  }
}

void Evaluator::commit() {
  for (const PendingRegWrite &W : RegWrites)
    M.cpu().Regs[W.Id] = W.Value;
  RegWrites.clear();
  for (const PendingMemWrite &W : MemWrites) {
    switch (W.Width) {
    case 1:
      M.memory().writeByte(W.A, static_cast<uint8_t>(W.Value));
      break;
    case 2:
      M.memory().writeHalf(W.A, static_cast<uint16_t>(W.Value));
      break;
    default:
      M.memory().writeWord(W.A, W.Value);
      break;
    }
  }
  MemWrites.clear();
}

StepOutcome Evaluator::run() {
  int Index = Desc.decode(Word);
  if (Index < 0) {
    Out.Invalid = true;
    return Out;
  }
  const Semantics &Sem = Desc.Sems[Desc.Patterns[Index].SemIndex];

  // Issue-time statements: parallel reads of the old state, then commit.
  execStmts(Sem.Before);
  if (Out.BadAlign)
    return Out;
  commit();
  // Delayed statements (the control transfer). Register effects here are
  // still issue-time on our targets; only the PC update is delayed, which
  // the run loop models with the (PC, NPC) pair.
  execStmts(Sem.After);
  if (Out.BadAlign)
    return Out;
  commit();

  if (PendingTrap) {
    // Trap conventions live outside the description (paper §4); fetch them
    // from the handwritten backend for this architecture.
    TargetArch Arch = Desc.ArchName == "mrisc"   ? TargetArch::Mrisc
                      : Desc.ArchName == "arisc" ? TargetArch::Arisc
                                                 : TargetArch::Srisc;
    const TargetConventions &Conv = targetFor(Arch).conventions();
    // Gather up to three argument registers in id order.
    uint32_t Args[3] = {0, 0, 0};
    unsigned N = 0;
    for (unsigned Reg : Conv.ArgRegs) {
      if (N >= 3)
        break;
      Args[N++] = M.cpu().Regs[Reg];
    }
    bool Exited = false;
    int Code = 0;
    uint32_t Ret = M.doSyscall(TrapNumber, Args, Exited, Code);
    if (Exited) {
      Out.Exited = true;
      Out.ExitCode = Code;
    } else {
      M.cpu().Regs[Conv.RetRegs.first()] = Ret;
    }
  }
  return Out;
}

StepOutcome spawn::executeWord(const MachineDesc &Desc, Machine &M, Addr PC,
                               MachWord Word) {
  Evaluator E(Desc, M, PC, Word);
  return E.run();
}

RunResult spawn::runWithDescription(const MachineDesc &Desc,
                                    const SxfFile &File, uint64_t MaxSteps) {
  Machine M(File);
  return M.runGeneric(
      [&Desc](Machine &Mach, Addr PC, MachWord Word) {
        return executeWord(Desc, Mach, PC, Word);
      },
      MaxSteps);
}
