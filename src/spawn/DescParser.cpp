//===- spawn/DescParser.cpp - Machine-description parser -------------------===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses the spawn description language into a MachineDesc. The language
/// (modelled on Figure 7 of the paper):
///
///   arch NAME
///   wordsize N
///   fields  name lo:hi (, name lo:hi)*
///   register TYPE{W} NAME            -- single register
///   register TYPE{W} NAME[N]         -- register file
///   zero NAME[K]                     -- hard-zero register
///   pat NAME is f=V && g=V ...       -- encoding pattern
///   pat [A B C] is f=[1 2 3] && g=V  -- pattern matrix (element-wise)
///   val NAME(params) is TOKENS       -- semantic function (token macro)
///   sem NAME is STMTS                -- bind semantics
///   sem [A B] is FN @ [x y]          -- bind by zipping FN over arguments
///
/// Semantic statements: `lhs := e`, `cond ? stmt : stmt`, `annul`,
/// `trap e`, `skip`; `,` separates parallel statements and `;` separates
/// issue-time statements from the delayed control transfer. `val` macros
/// expand textually (hygienically parenthesized for expression macros), as
/// the paper's lambda-bindings do.
///
//===----------------------------------------------------------------------===//

#include "spawn/MachineDesc.h"

#include "spawn/Lexer.h"
#include "support/BitOps.h"

#include <set>

using namespace eel;
using namespace eel::spawn;

namespace {

const std::set<std::string> &clauseKeywords() {
  static const std::set<std::string> Keywords = {
      "arch", "wordsize", "fields", "register", "zero", "pat", "val", "sem"};
  return Keywords;
}

struct MacroDef {
  std::string Name;
  std::vector<std::string> Params;
  std::vector<Token> Body;
  bool IsStatement = false; ///< Body contains ':=' (assignments).
};

/// Expands macro references and parameter substitutions in a token stream.
/// Expression-valued macros and multi-token arguments are wrapped in
/// parentheses to preserve precedence.
Expected<std::vector<Token>>
expandTokens(const std::vector<Token> &In,
             const std::map<std::string, MacroDef> &Macros,
             const std::map<std::string, std::vector<Token>> &Subst,
             int Depth) {
  if (Depth > 32)
    return Error("machine description: macro expansion too deep (cycle?)");
  std::vector<Token> Out;
  auto Paren = [](const Token &Like, const char *Text) {
    Token T;
    T.Kind = TokKind::Punct;
    T.Text = Text;
    T.Line = Like.Line;
    return T;
  };

  for (size_t I = 0; I < In.size(); ++I) {
    const Token &T = In[I];
    if (T.Kind != TokKind::Ident) {
      Out.push_back(T);
      continue;
    }
    if (auto It = Subst.find(T.Text); It != Subst.end()) {
      const std::vector<Token> &Arg = It->second;
      if (Arg.size() > 1)
        Out.push_back(Paren(T, "("));
      Out.insert(Out.end(), Arg.begin(), Arg.end());
      if (Arg.size() > 1)
        Out.push_back(Paren(T, ")"));
      continue;
    }
    auto MacroIt = Macros.find(T.Text);
    if (MacroIt == Macros.end()) {
      Out.push_back(T);
      continue;
    }
    const MacroDef &Macro = MacroIt->second;
    // Collect call arguments if present.
    std::vector<std::vector<Token>> Args;
    if (I + 1 < In.size() && In[I + 1].is("(")) {
      size_t J = I + 2;
      int Balance = 1;
      std::vector<Token> Current;
      for (; J < In.size(); ++J) {
        const Token &A = In[J];
        if (A.is("("))
          ++Balance;
        else if (A.is(")")) {
          --Balance;
          if (Balance == 0)
            break;
        }
        if (A.is(",") && Balance == 1) {
          Args.push_back(Current);
          Current.clear();
          continue;
        }
        Current.push_back(A);
      }
      if (Balance != 0)
        return Error("machine description line " + std::to_string(T.Line) +
                     ": unbalanced parentheses in call to '" + T.Text + "'");
      Args.push_back(Current);
      I = J; // consume through ')'
    }
    if (Args.size() != Macro.Params.size())
      return Error("machine description line " + std::to_string(T.Line) +
                   ": '" + T.Text + "' expects " +
                   std::to_string(Macro.Params.size()) + " argument(s), got " +
                   std::to_string(Args.size()));
    std::map<std::string, std::vector<Token>> Inner;
    for (size_t K = 0; K < Args.size(); ++K) {
      Expected<std::vector<Token>> Expanded =
          expandTokens(Args[K], Macros, Subst, Depth + 1);
      if (Expanded.hasError())
        return Expanded.error();
      Inner[Macro.Params[K]] = Expanded.takeValue();
    }
    Expected<std::vector<Token>> Body =
        expandTokens(Macro.Body, Macros, Inner, Depth + 1);
    if (Body.hasError())
      return Body.error();
    std::vector<Token> BodyTokens = Body.takeValue();
    if (!Macro.IsStatement)
      Out.push_back(Paren(T, "("));
    Out.insert(Out.end(), BodyTokens.begin(), BodyTokens.end());
    if (!Macro.IsStatement)
      Out.push_back(Paren(T, ")"));
  }
  return Out;
}

/// Recursive-descent parser for RTL statement lists over expanded tokens.
class RtlParser {
public:
  RtlParser(std::vector<Token> Tokens, const MachineDesc &Desc)
      : Toks(std::move(Tokens)), Desc(Desc) {}

  Expected<Semantics> parseDelaySem();

private:
  const Token &peek(unsigned Ahead = 0) const {
    size_t I = Pos + Ahead;
    return I < Toks.size() ? Toks[I] : Toks.back();
  }
  Token next() { return Pos < Toks.size() ? Toks[Pos++] : Toks.back(); }
  bool eat(const char *S) {
    if (!peek().is(S))
      return false;
    ++Pos;
    return true;
  }
  bool atEnd() const {
    return Pos >= Toks.size() || Toks[Pos].Kind == TokKind::End;
  }
  Error err(const std::string &Message) const {
    return Error("machine description line " + std::to_string(peek().Line) +
                 ": " + Message);
  }

  Expected<std::vector<StmtP>> parseStmtList();
  Expected<StmtP> parseStmt();
  Expected<ExprP> parseExpr(bool AllowTernary);
  Expected<ExprP> parseOr(bool AllowTernary);
  Expected<ExprP> parseXor(bool AllowTernary);
  Expected<ExprP> parseAnd(bool AllowTernary);
  Expected<ExprP> parseEq(bool AllowTernary);
  Expected<ExprP> parseShift(bool AllowTernary);
  Expected<ExprP> parseAdd(bool AllowTernary);
  Expected<ExprP> parseMul(bool AllowTernary);
  Expected<ExprP> parseUnary();
  Expected<ExprP> parsePrimary();

  std::vector<Token> Toks;
  const MachineDesc &Desc;
  size_t Pos = 0;
};

} // namespace

Expected<Semantics> RtlParser::parseDelaySem() {
  Semantics Sem;
  Expected<std::vector<StmtP>> Before = parseStmtList();
  if (Before.hasError())
    return Before.error();
  Sem.Before = Before.takeValue();
  if (eat(";")) {
    Sem.HasDelayMark = true;
    Expected<std::vector<StmtP>> After = parseStmtList();
    if (After.hasError())
      return After.error();
    Sem.After = After.takeValue();
  }
  if (!atEnd())
    return err("unexpected '" + peek().Text + "' after semantics");
  return Sem;
}

Expected<std::vector<StmtP>> RtlParser::parseStmtList() {
  std::vector<StmtP> Stmts;
  for (;;) {
    Expected<StmtP> S = parseStmt();
    if (S.hasError())
      return S.error();
    Stmts.push_back(S.takeValue());
    if (!eat(","))
      break;
  }
  return Stmts;
}

Expected<StmtP> RtlParser::parseStmt() {
  auto Make = [] { return std::make_shared<Stmt>(); };
  if (eat("(")) {
    // Parenthesized statement (a statement-macro expansion artifact is not
    // expected here, but accept `( stmt )` for symmetry).
    Expected<StmtP> Inner = parseStmt();
    if (Inner.hasError())
      return Inner;
    if (!eat(")"))
      return err("expected ')' after statement");
    return Inner;
  }
  if (peek().isIdent()) {
    if (peek().is("skip")) {
      next();
      auto S = Make();
      S->K = Stmt::Kind::Skip;
      return StmtP(S);
    }
    if (peek().is("annul")) {
      next();
      auto S = Make();
      S->K = Stmt::Kind::Annul;
      return StmtP(S);
    }
    if (peek().is("trap")) {
      next();
      Expected<ExprP> E = parseExpr(/*AllowTernary=*/false);
      if (E.hasError())
        return E.error();
      auto S = Make();
      S->K = Stmt::Kind::Trap;
      S->Rhs = E.takeValue();
      return StmtP(S);
    }
  }
  Expected<ExprP> Head = parseExpr(/*AllowTernary=*/false);
  if (Head.hasError())
    return Head.error();
  ExprP E = Head.takeValue();
  if (eat(":=")) {
    Expected<ExprP> Rhs = parseExpr(/*AllowTernary=*/false);
    if (Rhs.hasError())
      return Rhs.error();
    auto S = Make();
    S->Rhs = Rhs.takeValue();
    switch (E->K) {
    case Expr::Kind::Reg:
      S->K = Stmt::Kind::AssignReg;
      S->Lhs = E;
      return StmtP(S);
    case Expr::Kind::Pc:
      S->K = Stmt::Kind::AssignPc;
      return StmtP(S);
    case Expr::Kind::Mem:
      S->K = Stmt::Kind::AssignMem;
      S->Lhs = E;
      return StmtP(S);
    case Expr::Kind::Local:
      S->K = Stmt::Kind::AssignLocal;
      S->Name = E->Name;
      return StmtP(S);
    default:
      return err("left side of ':=' must be a register, pc, memory, or a "
                 "temporary");
    }
  }
  if (eat("?")) {
    auto S = Make();
    S->K = Stmt::Kind::Guard;
    S->Cond = E;
    Expected<StmtP> Then = parseStmt();
    if (Then.hasError())
      return Then;
    S->Then.push_back(Then.takeValue());
    if (eat(":")) {
      Expected<StmtP> Else = parseStmt();
      if (Else.hasError())
        return Else;
      S->Else.push_back(Else.takeValue());
    }
    return StmtP(S);
  }
  return err("expected ':=' or '?' in statement");
}

Expected<ExprP> RtlParser::parseExpr(bool AllowTernary) {
  Expected<ExprP> L = parseOr(AllowTernary);
  if (L.hasError() || !AllowTernary || !peek().is("?"))
    return L;
  next(); // '?'
  Expected<ExprP> T = parseExpr(true);
  if (T.hasError())
    return T;
  if (!eat(":"))
    return err("expected ':' in conditional expression");
  Expected<ExprP> F = parseExpr(true);
  if (F.hasError())
    return F;
  return Expr::makeTernary(L.takeValue(), T.takeValue(), F.takeValue());
}

Expected<ExprP> RtlParser::parseOr(bool AllowTernary) {
  Expected<ExprP> L = parseXor(AllowTernary);
  while (L.hasValue() && peek().is("|")) {
    next();
    Expected<ExprP> R = parseXor(AllowTernary);
    if (R.hasError())
      return R;
    L = Expr::makeBinary(RtlBinOp::Or, L.takeValue(), R.takeValue());
  }
  return L;
}

Expected<ExprP> RtlParser::parseXor(bool AllowTernary) {
  Expected<ExprP> L = parseAnd(AllowTernary);
  while (L.hasValue() && peek().is("^")) {
    next();
    Expected<ExprP> R = parseAnd(AllowTernary);
    if (R.hasError())
      return R;
    L = Expr::makeBinary(RtlBinOp::Xor, L.takeValue(), R.takeValue());
  }
  return L;
}

Expected<ExprP> RtlParser::parseAnd(bool AllowTernary) {
  Expected<ExprP> L = parseEq(AllowTernary);
  while (L.hasValue() && peek().is("&")) {
    next();
    Expected<ExprP> R = parseEq(AllowTernary);
    if (R.hasError())
      return R;
    L = Expr::makeBinary(RtlBinOp::And, L.takeValue(), R.takeValue());
  }
  return L;
}

Expected<ExprP> RtlParser::parseEq(bool AllowTernary) {
  Expected<ExprP> L = parseShift(AllowTernary);
  if (L.hasError())
    return L;
  if (peek().is("=") || peek().is("!=")) {
    RtlBinOp Op = peek().is("=") ? RtlBinOp::Eq : RtlBinOp::Ne;
    next();
    Expected<ExprP> R = parseShift(AllowTernary);
    if (R.hasError())
      return R;
    return Expr::makeBinary(Op, L.takeValue(), R.takeValue());
  }
  return L;
}

Expected<ExprP> RtlParser::parseShift(bool AllowTernary) {
  Expected<ExprP> L = parseAdd(AllowTernary);
  while (L.hasValue() && peek().is("<<")) {
    next();
    Expected<ExprP> R = parseAdd(AllowTernary);
    if (R.hasError())
      return R;
    L = Expr::makeBinary(RtlBinOp::Shl, L.takeValue(), R.takeValue());
  }
  return L;
}

Expected<ExprP> RtlParser::parseAdd(bool AllowTernary) {
  Expected<ExprP> L = parseMul(AllowTernary);
  while (L.hasValue() && (peek().is("+") || peek().is("-"))) {
    RtlBinOp Op = peek().is("+") ? RtlBinOp::Add : RtlBinOp::Sub;
    next();
    Expected<ExprP> R = parseMul(AllowTernary);
    if (R.hasError())
      return R;
    L = Expr::makeBinary(Op, L.takeValue(), R.takeValue());
  }
  return L;
}

Expected<ExprP> RtlParser::parseMul(bool AllowTernary) {
  Expected<ExprP> L = parseUnary();
  while (L.hasValue() && peek().is("*")) {
    next();
    Expected<ExprP> R = parseUnary();
    if (R.hasError())
      return R;
    L = Expr::makeBinary(RtlBinOp::Mul, L.takeValue(), R.takeValue());
  }
  (void)AllowTernary;
  return L;
}

Expected<ExprP> RtlParser::parseUnary() {
  if (eat("-")) {
    Expected<ExprP> E = parseUnary();
    if (E.hasError())
      return E;
    return Expr::makeBinary(RtlBinOp::Sub, Expr::makeConst(0), E.takeValue());
  }
  if (eat("~")) {
    Expected<ExprP> E = parseUnary();
    if (E.hasError())
      return E;
    return Expr::makeBinary(RtlBinOp::Xor, E.takeValue(),
                            Expr::makeConst(-1));
  }
  return parsePrimary();
}

Expected<ExprP> RtlParser::parsePrimary() {
  const Token &T = peek();
  if (T.isNumber()) {
    next();
    return Expr::makeConst(T.Value);
  }
  if (T.is("(")) {
    next();
    Expected<ExprP> E = parseExpr(/*AllowTernary=*/true);
    if (E.hasError())
      return E;
    if (!eat(")"))
      return err("expected ')'");
    return E;
  }
  if (!T.isIdent())
    return err("unexpected '" + T.Text + "' in expression");
  std::string Name = next().Text;

  if (Name == "PC" || Name == "pc")
    return Expr::makePc();

  if (Name == "mem") {
    if (!eat("("))
      return err("expected '(' after mem");
    Expected<ExprP> AddrE = parseExpr(true);
    if (AddrE.hasError())
      return AddrE;
    if (!eat(","))
      return err("expected ',' in mem()");
    const Token &WidthTok = peek();
    if (!WidthTok.isNumber())
      return err("mem() width must be a constant");
    unsigned Width = static_cast<unsigned>(next().Value);
    bool SignExtend = false;
    if (eat(",")) {
      const Token &SxTok = peek();
      if (!SxTok.isNumber())
        return err("mem() sign-extend flag must be a constant");
      SignExtend = next().Value != 0;
    }
    if (!eat(")"))
      return err("expected ')' after mem()");
    return Expr::makeMem(AddrE.takeValue(), Width, SignExtend);
  }

  // Register file?
  for (unsigned FI = 0; FI < Desc.RegFiles.size(); ++FI) {
    if (Desc.RegFiles[FI].Name != Name)
      continue;
    if (Desc.RegFiles[FI].Count == 0)
      return Expr::makeReg(FI, nullptr);
    if (!eat("["))
      return err("register file '" + Name + "' needs an index");
    Expected<ExprP> Index = parseExpr(true);
    if (Index.hasError())
      return Index;
    if (!eat("]"))
      return err("expected ']' after register index");
    return Expr::makeReg(FI, Index.takeValue());
  }

  // Instruction field?
  if (Desc.field(Name))
    return Expr::makeField(Name);

  // Builtin function?
  RtlFn Fn;
  if (lookupRtlFn(Name, Fn)) {
    if (!eat("("))
      return err("builtin '" + Name + "' must be called");
    std::vector<ExprP> Args;
    if (!peek().is(")")) {
      for (;;) {
        Expected<ExprP> Arg = parseExpr(true);
        if (Arg.hasError())
          return Arg;
        Args.push_back(Arg.takeValue());
        if (!eat(","))
          break;
      }
    }
    if (!eat(")"))
      return err("expected ')' after builtin arguments");
    if (Fn == RtlFn::Sx &&
        (Args.size() != 1 || Args[0]->K != Expr::Kind::Field))
      return err("sx() takes exactly one instruction field");
    return Expr::makeApply(Fn, std::move(Args));
  }

  // Otherwise a local temporary reference.
  return Expr::makeLocal(Name);
}

// --- MachineDesc methods -------------------------------------------------------

const FieldDef *MachineDesc::field(const std::string &Name) const {
  for (const FieldDef &F : Fields)
    if (F.Name == Name)
      return &F;
  return nullptr;
}

uint32_t MachineDesc::fieldValue(const FieldDef &F, MachWord Word) const {
  return extractBits(Word, F.Lo, F.Hi);
}

std::vector<std::string> MachineDesc::regFileNames() const {
  std::vector<std::string> Names;
  for (const RegFileDef &RF : RegFiles)
    Names.push_back(RF.Name);
  return Names;
}

int MachineDesc::decode(MachWord Word) const {
  if (DecodeProgram.empty())
    return decodeLinear(Word);
  size_t Node = 0;
  for (;;) {
    int32_t Header = DecodeProgram[Node];
    if (Header < 0) {
      // Scan node: -Header candidates that could not be split further.
      for (int32_t I = 0; I < -Header; ++I) {
        int32_t PI = DecodeProgram[Node + 1 + I];
        if ((Word & Patterns[PI].Mask) == Patterns[PI].Match)
          return PI;
      }
      return -1;
    }
    unsigned Lo = static_cast<unsigned>(Header) >> 8;
    unsigned Width = static_cast<unsigned>(Header) & 0xFF;
    uint32_t Value = (Word >> Lo) & ((1u << Width) - 1u);
    int32_t Entry = DecodeProgram[Node + 1 + Value];
    if (Entry == -1)
      return -1;
    if (Entry >= 0)
      return (Word & Patterns[Entry].Mask) == Patterns[Entry].Match ? Entry
                                                                    : -1;
    Node = static_cast<size_t>(-(Entry + 2));
  }
}

int MachineDesc::decodeLinear(MachWord Word) const {
  if (BucketFieldIndex >= 0) {
    const FieldDef &F = Fields[BucketFieldIndex];
    auto It = Buckets.find(fieldValue(F, Word));
    if (It == Buckets.end())
      return -1;
    for (int Index : It->second)
      if ((Word & Patterns[Index].Mask) == Patterns[Index].Match)
        return Index;
    return -1;
  }
  for (size_t I = 0; I < Patterns.size(); ++I)
    if ((Word & Patterns[I].Mask) == Patterns[I].Match)
      return static_cast<int>(I);
  return -1;
}

Expected<bool> MachineDesc::finalize() {
  // Every pattern needs semantics.
  for (const InstPattern &P : Patterns)
    if (P.SemIndex < 0)
      return Error("machine description: pattern '" + P.Name +
                   "' has no semantics");
  // Patterns must be pairwise disjoint: two patterns may not match the same
  // word. Overlap exists iff they agree on every commonly constrained bit.
  for (size_t I = 0; I < Patterns.size(); ++I) {
    for (size_t J = I + 1; J < Patterns.size(); ++J) {
      uint32_t Common = Patterns[I].Mask & Patterns[J].Mask;
      if ((Patterns[I].Match & Common) == (Patterns[J].Match & Common))
        return Error("machine description: patterns '" + Patterns[I].Name +
                     "' and '" + Patterns[J].Name + "' overlap");
    }
  }
  // Find a field constrained by every pattern to bucket the decoder.
  for (size_t FI = 0; FI < Fields.size(); ++FI) {
    bool InAll = !Patterns.empty();
    for (const InstPattern &P : Patterns) {
      bool Found = false;
      for (const PatternConstraint &C : P.Constraints)
        if (C.Field == Fields[FI].Name)
          Found = true;
      if (!Found) {
        InAll = false;
        break;
      }
    }
    if (InAll) {
      BucketFieldIndex = static_cast<int>(FI);
      break;
    }
  }
  if (BucketFieldIndex >= 0) {
    for (size_t PI = 0; PI < Patterns.size(); ++PI) {
      for (const PatternConstraint &C : Patterns[PI].Constraints)
        if (C.Field == Fields[BucketFieldIndex].Name)
          Buckets[C.Value].push_back(static_cast<int>(PI));
    }
  }
  buildDecodeProgram();
  return true;
}

void MachineDesc::buildDecodeProgram() {
  DecodeProgram.clear();
  if (Patterns.size() < 2)
    return;

  // Recursive splitter in the binutils opcodes style: at each node pick the
  // most discriminating field constrained by *every* pattern in the subset
  // and expand a dense 2^width child table over its values. Subsets that no
  // unused field separates fall back to a small scan node.
  struct Builder {
    MachineDesc &D;

    uint32_t constraintOn(int PI, size_t FI, bool &Found) const {
      for (const PatternConstraint &C : D.Patterns[PI].Constraints)
        if (C.Field == D.Fields[FI].Name) {
          Found = true;
          return C.Value;
        }
      Found = false;
      return 0;
    }

    /// Returns the entry value encoding this subset: a leaf, a child-node
    /// reference, or a scan node when no field splits it.
    int32_t build(const std::vector<int> &Subset, uint64_t UsedFields) {
      if (Subset.empty())
        return -1;
      if (Subset.size() == 1)
        return Subset[0];
      // Pick the unused field constrained by all patterns here with the
      // most distinct values; cap the width so tables stay dense.
      int Best = -1;
      size_t BestDistinct = 1;
      for (size_t FI = 0; FI < D.Fields.size() && FI < 64; ++FI) {
        if ((UsedFields >> FI) & 1)
          continue;
        if (D.Fields[FI].width() > 12)
          continue;
        std::set<uint32_t> Values;
        bool InAll = true;
        for (int PI : Subset) {
          bool Found = false;
          uint32_t V = constraintOn(PI, FI, Found);
          if (!Found) {
            InAll = false;
            break;
          }
          Values.insert(V);
        }
        if (InAll && Values.size() > BestDistinct) {
          BestDistinct = Values.size();
          Best = static_cast<int>(FI);
        }
      }
      if (Best < 0) {
        int32_t Node = static_cast<int32_t>(D.DecodeProgram.size());
        D.DecodeProgram.push_back(-static_cast<int32_t>(Subset.size()));
        for (int PI : Subset)
          D.DecodeProgram.push_back(PI);
        return -(Node + 2);
      }
      const FieldDef &F = D.Fields[Best];
      unsigned Width = F.width();
      int32_t Node = static_cast<int32_t>(D.DecodeProgram.size());
      D.DecodeProgram.push_back(
          static_cast<int32_t>((F.Lo << 8) | Width));
      size_t Base = D.DecodeProgram.size();
      D.DecodeProgram.resize(Base + (size_t(1) << Width), -1);
      std::map<uint32_t, std::vector<int>> Groups;
      for (int PI : Subset) {
        bool Found = false;
        Groups[constraintOn(PI, Best, Found)].push_back(PI);
      }
      for (const auto &[Value, Group] : Groups)
        D.DecodeProgram[Base + Value] =
            build(Group, UsedFields | (uint64_t(1) << Best));
      return -(Node + 2);
    }
  };

  std::vector<int> All(Patterns.size());
  for (size_t I = 0; I < All.size(); ++I)
    All[I] = static_cast<int>(I);
  Builder B{*this};
  B.build(All, 0);
}

// --- Clause parser --------------------------------------------------------------

namespace {

/// Driver that walks clauses and assembles the MachineDesc.
class DescParser {
public:
  explicit DescParser(std::vector<Token> Tokens) : Toks(std::move(Tokens)) {}

  Expected<std::shared_ptr<MachineDesc>> run();

private:
  const Token &peek(unsigned Ahead = 0) const {
    size_t I = Pos + Ahead;
    return I < Toks.size() ? Toks[I] : Toks.back();
  }
  Token next() { return Pos < Toks.size() ? Toks[Pos++] : Toks.back(); }
  bool eat(const char *S) {
    if (!peek().is(S))
      return false;
    ++Pos;
    return true;
  }
  bool atClauseStart() const {
    const Token &T = peek();
    return T.Kind == TokKind::End ||
           (T.isIdent() && T.StartOfLine && clauseKeywords().count(T.Text));
  }
  Error err(const std::string &Message) const {
    return Error("machine description line " + std::to_string(peek().Line) +
                 ": " + Message);
  }

  /// Collects raw tokens until the next clause boundary.
  std::vector<Token> collectBody() {
    std::vector<Token> Body;
    while (!atClauseStart())
      Body.push_back(next());
    return Body;
  }

  Expected<std::vector<std::string>> parseNameList();
  Expected<bool> parseFields();
  Expected<bool> parseRegister();
  Expected<bool> parsePat();
  Expected<bool> parseVal();
  Expected<bool> parseSem();

  Expected<bool> bindSemantics(const std::string &PatternName,
                               std::vector<Token> Body);

  std::vector<Token> Toks;
  size_t Pos = 0;
  std::shared_ptr<MachineDesc> Desc = std::make_shared<MachineDesc>();
  std::map<std::string, MacroDef> Macros;
  unsigned NextRegId = 0;
};

} // namespace

Expected<std::vector<std::string>> DescParser::parseNameList() {
  std::vector<std::string> Names;
  if (eat("[")) {
    while (!peek().is("]")) {
      if (!peek().isIdent())
        return err("expected a name in list");
      Names.push_back(next().Text);
    }
    next(); // ']'
    if (Names.empty())
      return err("empty name list");
    return Names;
  }
  if (!peek().isIdent())
    return err("expected a name");
  Names.push_back(next().Text);
  return Names;
}

Expected<bool> DescParser::parseFields() {
  for (;;) {
    if (atClauseStart())
      break;
    if (!peek().isIdent())
      return err("expected a field name");
    FieldDef F;
    F.Name = next().Text;
    if (!peek().isNumber())
      return err("expected field low bit");
    F.Lo = static_cast<unsigned>(next().Value);
    if (!eat(":"))
      return err("expected ':' in field range");
    if (!peek().isNumber())
      return err("expected field high bit");
    F.Hi = static_cast<unsigned>(next().Value);
    if (F.Lo > F.Hi || F.Hi > 31)
      return err("malformed bit range for field '" + F.Name + "'");
    if (Desc->field(F.Name))
      return err("duplicate field '" + F.Name + "'");
    Desc->Fields.push_back(F);
    if (!eat(","))
      break;
  }
  return true;
}

Expected<bool> DescParser::parseRegister() {
  if (!peek().isIdent())
    return err("expected a register type name");
  next(); // type name (int, cc, ...) is documentation only
  if (!eat("{"))
    return err("expected '{' in register declaration");
  if (!peek().isNumber())
    return err("expected register width");
  unsigned Width = static_cast<unsigned>(next().Value);
  if (!eat("}"))
    return err("expected '}' in register declaration");
  if (!peek().isIdent())
    return err("expected a register name");
  RegFileDef RF;
  RF.Name = next().Text;
  RF.Width = Width;
  if (eat("[")) {
    if (!peek().isNumber())
      return err("expected register count");
    RF.Count = static_cast<unsigned>(next().Value);
    if (!eat("]"))
      return err("expected ']' in register declaration");
    RF.BaseId = NextRegId;
    NextRegId += RF.Count;
  } else {
    RF.Count = 0;
    RF.BaseId = NextRegId >= 32 ? NextRegId : 32; // singles start at id 32
    NextRegId = RF.BaseId + 1;
  }
  Desc->RegFiles.push_back(RF);
  return true;
}

Expected<bool> DescParser::parsePat() {
  Expected<std::vector<std::string>> Names = parseNameList();
  if (Names.hasError())
    return Names.error();
  if (!eat("is"))
    return err("expected 'is' in pattern");
  size_t Count = Names.value().size();

  // Per-name constraint values.
  std::vector<std::vector<PatternConstraint>> All(Count);
  for (;;) {
    if (!peek().isIdent())
      return err("expected a field name in pattern constraint");
    std::string FieldName = next().Text;
    const FieldDef *F = Desc->field(FieldName);
    if (!F)
      return err("unknown field '" + FieldName + "' in pattern");
    if (!eat("="))
      return err("expected '=' in pattern constraint");
    std::vector<uint32_t> Values;
    if (eat("[")) {
      while (!peek().is("]")) {
        if (!peek().isNumber())
          return err("expected a value in constraint list");
        Values.push_back(static_cast<uint32_t>(next().Value));
      }
      next(); // ']'
      if (Values.size() != Count)
        return err("constraint list for '" + FieldName + "' has " +
                   std::to_string(Values.size()) + " values for " +
                   std::to_string(Count) + " patterns");
    } else {
      if (!peek().isNumber())
        return err("expected a value in pattern constraint");
      Values.assign(Count, static_cast<uint32_t>(next().Value));
    }
    for (size_t I = 0; I < Count; ++I) {
      if (!fitsUnsigned(Values[I], F->width()))
        return err("constraint value does not fit field '" + FieldName + "'");
      All[I].push_back({FieldName, Values[I]});
    }
    if (!eat("&&"))
      break;
  }

  for (size_t I = 0; I < Count; ++I) {
    InstPattern P;
    P.Name = Names.value()[I];
    for (const InstPattern &Existing : Desc->Patterns)
      if (Existing.Name == P.Name)
        return err("duplicate pattern name '" + P.Name + "'");
    P.Constraints = All[I];
    for (const PatternConstraint &C : P.Constraints) {
      const FieldDef *F = Desc->field(C.Field);
      P.Mask |= insertBits(0, F->Lo, F->Hi, 0xFFFFFFFFu);
      P.Match |= insertBits(0, F->Lo, F->Hi, C.Value);
    }
    Desc->Patterns.push_back(std::move(P));
  }
  return true;
}

Expected<bool> DescParser::parseVal() {
  if (!peek().isIdent())
    return err("expected a name after 'val'");
  MacroDef Macro;
  Macro.Name = next().Text;
  if (Macros.count(Macro.Name))
    return err("duplicate val '" + Macro.Name + "'");
  if (eat("(")) {
    while (!peek().is(")")) {
      if (!peek().isIdent())
        return err("expected a parameter name");
      Macro.Params.push_back(next().Text);
      if (!eat(","))
        break;
    }
    if (!eat(")"))
      return err("expected ')' after parameters");
  }
  if (!eat("is"))
    return err("expected 'is' in val");
  Macro.Body = collectBody();
  if (Macro.Body.empty())
    return err("empty val body");
  for (const Token &T : Macro.Body)
    if (T.is(":="))
      Macro.IsStatement = true;
  Macros[Macro.Name] = std::move(Macro);
  return true;
}

Expected<bool> DescParser::bindSemantics(const std::string &PatternName,
                                         std::vector<Token> Body) {
  RtlParser Parser(std::move(Body), *Desc);
  Expected<Semantics> Sem = Parser.parseDelaySem();
  if (Sem.hasError())
    return Sem.error();
  for (InstPattern &P : Desc->Patterns) {
    if (P.Name != PatternName)
      continue;
    if (P.SemIndex >= 0)
      return Error("machine description: duplicate semantics for '" +
                   PatternName + "'");
    P.SemIndex = static_cast<int>(Desc->Sems.size());
    Desc->Sems.push_back(Sem.takeValue());
    return true;
  }
  return Error("machine description: semantics for unknown pattern '" +
               PatternName + "'");
}

Expected<bool> DescParser::parseSem() {
  Expected<std::vector<std::string>> Names = parseNameList();
  if (Names.hasError())
    return Names.error();
  if (!eat("is"))
    return err("expected 'is' in sem");
  std::vector<Token> Body = collectBody();
  if (Body.empty())
    return err("empty sem body");

  // Zip form: MACRO @ [ args... ].
  if (Body.size() >= 2 && Body[0].isIdent() && Body[1].is("@")) {
    auto MacroIt = Macros.find(Body[0].Text);
    if (MacroIt == Macros.end())
      return err("unknown semantic function '" + Body[0].Text + "'");
    const MacroDef &Macro = MacroIt->second;
    if (Body.size() < 3 || !Body[2].is("["))
      return err("expected '[' after '@'");
    // Parse argument tuples.
    std::vector<std::vector<std::vector<Token>>> ArgTuples;
    size_t I = 3;
    while (I < Body.size() && !Body[I].is("]")) {
      std::vector<std::vector<Token>> Tuple;
      if (Body[I].is("(")) {
        ++I;
        std::vector<Token> Current;
        while (I < Body.size() && !Body[I].is(")")) {
          Current.push_back(Body[I]);
          // Tuple elements are single tokens separated by whitespace.
          Tuple.push_back(Current);
          Current.clear();
          ++I;
        }
        if (I >= Body.size())
          return err("unterminated tuple in zip arguments");
        ++I; // ')'
      } else {
        Tuple.push_back({Body[I]});
        ++I;
      }
      ArgTuples.push_back(std::move(Tuple));
    }
    if (I >= Body.size())
      return err("unterminated zip argument list");
    if (ArgTuples.size() != Names.value().size())
      return err("zip argument count (" + std::to_string(ArgTuples.size()) +
                 ") does not match pattern count (" +
                 std::to_string(Names.value().size()) + ")");
    for (size_t K = 0; K < ArgTuples.size(); ++K) {
      if (ArgTuples[K].size() != Macro.Params.size())
        return err("zip tuple " + std::to_string(K) + " has " +
                   std::to_string(ArgTuples[K].size()) + " elements; '" +
                   Macro.Name + "' expects " +
                   std::to_string(Macro.Params.size()));
      std::map<std::string, std::vector<Token>> Subst;
      for (size_t P = 0; P < Macro.Params.size(); ++P)
        Subst[Macro.Params[P]] = ArgTuples[K][P];
      Expected<std::vector<Token>> Expanded =
          expandTokens(Macro.Body, Macros, Subst, 0);
      if (Expanded.hasError())
        return Expanded.error();
      Expected<bool> Bound =
          bindSemantics(Names.value()[K], Expanded.takeValue());
      if (Bound.hasError())
        return Bound;
    }
    return true;
  }

  // Direct form: the same statement list binds to every named pattern.
  Expected<std::vector<Token>> Expanded = expandTokens(Body, Macros, {}, 0);
  if (Expanded.hasError())
    return Expanded.error();
  for (const std::string &Name : Names.value()) {
    Expected<bool> Bound = bindSemantics(Name, Expanded.value());
    if (Bound.hasError())
      return Bound;
  }
  return true;
}

Expected<std::shared_ptr<MachineDesc>> DescParser::run() {
  while (peek().Kind != TokKind::End) {
    if (!atClauseStart())
      return err("expected a clause keyword, found '" + peek().Text + "'");
    std::string Keyword = next().Text;
    Expected<bool> Result = true;
    if (Keyword == "arch") {
      if (!peek().isIdent())
        return err("expected an architecture name");
      Desc->ArchName = next().Text;
    } else if (Keyword == "wordsize") {
      if (!peek().isNumber())
        return err("expected a word size");
      Desc->WordSize = static_cast<unsigned>(next().Value);
      if (Desc->WordSize != 32)
        return err("only 32-bit words are supported");
    } else if (Keyword == "fields") {
      Result = parseFields();
    } else if (Keyword == "register") {
      Result = parseRegister();
    } else if (Keyword == "zero") {
      if (!peek().isIdent())
        return err("expected a register name after 'zero'");
      std::string Name = next().Text;
      if (!eat("["))
        return err("expected '[' after zero register name");
      if (!peek().isNumber())
        return err("expected a register index");
      unsigned Index = static_cast<unsigned>(next().Value);
      if (!eat("]"))
        return err("expected ']' after zero register index");
      bool Found = false;
      for (const RegFileDef &RF : Desc->RegFiles) {
        if (RF.Name == Name && RF.Count > Index) {
          Desc->ZeroRegId = static_cast<int>(RF.BaseId + Index);
          Found = true;
        }
      }
      if (!Found)
        return err("unknown register '" + Name + "' in zero clause");
    } else if (Keyword == "pat") {
      Result = parsePat();
    } else if (Keyword == "val") {
      Result = parseVal();
    } else if (Keyword == "sem") {
      Result = parseSem();
    }
    if (Result.hasError())
      return Result.error();
  }
  Expected<bool> Final = Desc->finalize();
  if (Final.hasError())
    return Final.error();
  return Desc;
}

Expected<std::shared_ptr<MachineDesc>>
spawn::parseMachineDescription(const std::string &Source) {
  Expected<std::vector<Token>> Tokens = lexDescription(Source);
  if (Tokens.hasError())
    return Tokens.error();
  DescParser Parser(Tokens.takeValue());
  return Parser.run();
}
