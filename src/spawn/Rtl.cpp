//===- spawn/Rtl.cpp - Register-transfer-level IR --------------------------===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//

#include "spawn/Rtl.h"

#include <map>

using namespace eel;
using namespace eel::spawn;

ExprP Expr::makeConst(int64_t V) {
  auto E = std::make_shared<Expr>();
  E->K = Kind::Const;
  E->IntVal = V;
  return E;
}

ExprP Expr::makeField(std::string Name) {
  auto E = std::make_shared<Expr>();
  E->K = Kind::Field;
  E->Name = std::move(Name);
  return E;
}

ExprP Expr::makeReg(unsigned FileIndex, ExprP Index) {
  auto E = std::make_shared<Expr>();
  E->K = Kind::Reg;
  E->FileIndex = FileIndex;
  if (Index)
    E->Args.push_back(std::move(Index));
  return E;
}

ExprP Expr::makePc() {
  auto E = std::make_shared<Expr>();
  E->K = Kind::Pc;
  return E;
}

ExprP Expr::makeMem(ExprP AddrExpr, unsigned Width, bool SignExtend) {
  auto E = std::make_shared<Expr>();
  E->K = Kind::Mem;
  E->Args.push_back(std::move(AddrExpr));
  E->MemWidth = Width;
  E->MemSignExtend = SignExtend;
  return E;
}

ExprP Expr::makeBinary(RtlBinOp Op, ExprP L, ExprP R) {
  auto E = std::make_shared<Expr>();
  E->K = Kind::Binary;
  E->Op = Op;
  E->Args.push_back(std::move(L));
  E->Args.push_back(std::move(R));
  return E;
}

ExprP Expr::makeTernary(ExprP C, ExprP T, ExprP F) {
  auto E = std::make_shared<Expr>();
  E->K = Kind::Ternary;
  E->Args.push_back(std::move(C));
  E->Args.push_back(std::move(T));
  E->Args.push_back(std::move(F));
  return E;
}

ExprP Expr::makeApply(RtlFn Fn, std::vector<ExprP> Args) {
  auto E = std::make_shared<Expr>();
  E->K = Kind::Apply;
  E->Fn = Fn;
  E->Args = std::move(Args);
  return E;
}

ExprP Expr::makeLocal(std::string Name) {
  auto E = std::make_shared<Expr>();
  E->K = Kind::Local;
  E->Name = std::move(Name);
  return E;
}

bool spawn::lookupRtlFn(const std::string &Name, RtlFn &Out) {
  static const std::map<std::string, RtlFn> Table = {
      {"add", RtlFn::Add},         {"sub", RtlFn::Sub},
      {"and", RtlFn::And},         {"or", RtlFn::Or},
      {"xor", RtlFn::Xor},         {"sll", RtlFn::Sll},
      {"srl", RtlFn::Srl},         {"sra", RtlFn::Sra},
      {"mul", RtlFn::Mul},         {"div", RtlFn::Div},
      {"rem", RtlFn::Rem},         {"setless", RtlFn::SetLess},
      {"eq", RtlFn::Eq},           {"ne", RtlFn::Ne},
      {"les", RtlFn::Les},         {"gts", RtlFn::Gts},
      {"cc_add", RtlFn::CcAdd},    {"cc_sub", RtlFn::CcSub},
      {"cc_and", RtlFn::CcAnd},    {"cc_or", RtlFn::CcOr},
      {"cc_xor", RtlFn::CcXor},    {"cond_e", RtlFn::CondE},
      {"cond_le", RtlFn::CondLe},  {"cond_l", RtlFn::CondL},
      {"cond_leu", RtlFn::CondLeu},{"cond_cs", RtlFn::CondCs},
      {"cond_neg", RtlFn::CondNeg},{"cond_vs", RtlFn::CondVs},
      {"cond_ne", RtlFn::CondNe},  {"cond_g", RtlFn::CondG},
      {"cond_ge", RtlFn::CondGe},  {"cond_gu", RtlFn::CondGu},
      {"cond_cc", RtlFn::CondCc},  {"cond_pos", RtlFn::CondPos},
      {"cond_vc", RtlFn::CondVc},  {"sx", RtlFn::Sx}};
  auto It = Table.find(Name);
  if (It == Table.end())
    return false;
  Out = It->second;
  return true;
}

static const char *fnName(RtlFn Fn) {
  switch (Fn) {
  case RtlFn::Add: return "add";
  case RtlFn::Sub: return "sub";
  case RtlFn::And: return "and";
  case RtlFn::Or: return "or";
  case RtlFn::Xor: return "xor";
  case RtlFn::Sll: return "sll";
  case RtlFn::Srl: return "srl";
  case RtlFn::Sra: return "sra";
  case RtlFn::Mul: return "mul";
  case RtlFn::Div: return "div";
  case RtlFn::Rem: return "rem";
  case RtlFn::SetLess: return "setless";
  case RtlFn::Eq: return "eq";
  case RtlFn::Ne: return "ne";
  case RtlFn::Les: return "les";
  case RtlFn::Gts: return "gts";
  case RtlFn::CcAdd: return "cc_add";
  case RtlFn::CcSub: return "cc_sub";
  case RtlFn::CcAnd: return "cc_and";
  case RtlFn::CcOr: return "cc_or";
  case RtlFn::CcXor: return "cc_xor";
  case RtlFn::CondE: return "cond_e";
  case RtlFn::CondLe: return "cond_le";
  case RtlFn::CondL: return "cond_l";
  case RtlFn::CondLeu: return "cond_leu";
  case RtlFn::CondCs: return "cond_cs";
  case RtlFn::CondNeg: return "cond_neg";
  case RtlFn::CondVs: return "cond_vs";
  case RtlFn::CondNe: return "cond_ne";
  case RtlFn::CondG: return "cond_g";
  case RtlFn::CondGe: return "cond_ge";
  case RtlFn::CondGu: return "cond_gu";
  case RtlFn::CondCc: return "cond_cc";
  case RtlFn::CondPos: return "cond_pos";
  case RtlFn::CondVc: return "cond_vc";
  case RtlFn::Sx: return "sx";
  }
  return "?";
}

static const char *binOpName(RtlBinOp Op) {
  switch (Op) {
  case RtlBinOp::Add: return "+";
  case RtlBinOp::Sub: return "-";
  case RtlBinOp::Mul: return "*";
  case RtlBinOp::And: return "&";
  case RtlBinOp::Or: return "|";
  case RtlBinOp::Xor: return "^";
  case RtlBinOp::Shl: return "<<";
  case RtlBinOp::Eq: return "=";
  case RtlBinOp::Ne: return "!=";
  }
  return "?";
}

std::string spawn::printExpr(const Expr &E,
                             const std::vector<std::string> &RegFileNames) {
  switch (E.K) {
  case Expr::Kind::Const:
    return std::to_string(E.IntVal);
  case Expr::Kind::Field:
  case Expr::Kind::Local:
    return E.Name;
  case Expr::Kind::Pc:
    return "PC";
  case Expr::Kind::Reg: {
    std::string Name = E.FileIndex < RegFileNames.size()
                           ? RegFileNames[E.FileIndex]
                           : "REG";
    if (E.Args.empty())
      return Name;
    return Name + "[" + printExpr(*E.Args[0], RegFileNames) + "]";
  }
  case Expr::Kind::Mem:
    return "mem(" + printExpr(*E.Args[0], RegFileNames) + ", " +
           std::to_string(E.MemWidth) + (E.MemSignExtend ? ", 1)" : ")");
  case Expr::Kind::Binary:
    return "(" + printExpr(*E.Args[0], RegFileNames) + " " +
           binOpName(E.Op) + " " + printExpr(*E.Args[1], RegFileNames) + ")";
  case Expr::Kind::Ternary:
    return "(" + printExpr(*E.Args[0], RegFileNames) + " ? " +
           printExpr(*E.Args[1], RegFileNames) + " : " +
           printExpr(*E.Args[2], RegFileNames) + ")";
  case Expr::Kind::Apply: {
    std::string S = std::string(fnName(E.Fn)) + "(";
    for (size_t I = 0; I < E.Args.size(); ++I) {
      if (I)
        S += ", ";
      S += printExpr(*E.Args[I], RegFileNames);
    }
    return S + ")";
  }
  }
  return "?";
}

std::string spawn::printStmt(const Stmt &S,
                             const std::vector<std::string> &RegFileNames,
                             unsigned Indent) {
  std::string Pad(Indent * 2, ' ');
  switch (S.K) {
  case Stmt::Kind::Skip:
    return Pad + "skip";
  case Stmt::Kind::Annul:
    return Pad + "annul";
  case Stmt::Kind::Trap:
    return Pad + "trap " + printExpr(*S.Rhs, RegFileNames);
  case Stmt::Kind::AssignLocal:
    return Pad + S.Name + " := " + printExpr(*S.Rhs, RegFileNames);
  case Stmt::Kind::AssignPc:
    return Pad + "pc := " + printExpr(*S.Rhs, RegFileNames);
  case Stmt::Kind::AssignReg:
  case Stmt::Kind::AssignMem:
    return Pad + printExpr(*S.Lhs, RegFileNames) + " := " +
           printExpr(*S.Rhs, RegFileNames);
  case Stmt::Kind::Guard: {
    std::string Out = Pad + printExpr(*S.Cond, RegFileNames) + " ?\n";
    for (const StmtP &T : S.Then)
      Out += printStmt(*T, RegFileNames, Indent + 1) + "\n";
    if (!S.Else.empty()) {
      Out += Pad + ":\n";
      for (const StmtP &E : S.Else)
        Out += printStmt(*E, RegFileNames, Indent + 1) + "\n";
    }
    if (!Out.empty() && Out.back() == '\n')
      Out.pop_back();
    return Out;
  }
  }
  return Pad + "?";
}
