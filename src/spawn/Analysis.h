//===- spawn/Analysis.h - Per-word semantic analysis ------------*- C++ -*-===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Derives everything a TargetInfo must answer about one machine word from
/// the word's RTL semantics: classification, register reads/writes, delay
/// behaviour, direct/indirect transfer shapes, dataflow and memory shapes,
/// and the instruction fields that hold register numbers. This is the
/// machine-independent core of spawn — the paper's claim that classification,
/// register sets, literal values, and even "the computation in most
/// instructions" fall out of a concise description is reproduced here.
///
//===----------------------------------------------------------------------===//

#ifndef EEL_SPAWN_ANALYSIS_H
#define EEL_SPAWN_ANALYSIS_H

#include "isa/Target.h"
#include "spawn/MachineDesc.h"

#include <optional>
#include <string>
#include <vector>

namespace eel {
namespace spawn {

/// Normal form of a direct control-transfer target expression.
struct TargetShape {
  enum class Kind : uint8_t {
    PcRelative, ///< target = PC + Bias + (field << Shift)
    Region,     ///< target = (PC & RegionMask) | (Bias + (field << Shift))
  };
  Kind K = Kind::PcRelative;
  int64_t Bias = 0;
  uint32_t RegionMask = 0;
  bool HasField = false;
  std::string FieldName;
  unsigned Shift = 0;
  bool FieldSigned = false;

  /// Evaluates the concrete target for a word at \p PC.
  Addr evaluate(const MachineDesc &Desc, MachWord Word, Addr PC) const;
};

/// Everything derivable about one concrete instruction word.
struct InstSummary {
  int PatternIndex = -1; ///< -1 for invalid encodings.
  InstCategory Category = InstCategory::Invalid;
  RegSet Reads, Writes;
  bool HasDelaySlot = false;
  DelayBehavior Delay = DelayBehavior::None;
  bool Conditional = false;
  std::optional<TargetShape> Direct;
  std::optional<IndirectTargetInfo> Indirect;
  DataOp DOp;
  std::optional<MemOp> MOp;
  std::optional<unsigned> TrapNumber; ///< Only when a constant field.
  std::vector<std::string> RegIndexFields; ///< Fields holding register nos.
  std::vector<unsigned> ImplicitRegWrites; ///< Constant-register writes
                                           ///  (e.g. a call's link register).
};

/// Analyzes one word. Never fails: undecodable words yield an Invalid
/// summary; malformed semantics abort (they indicate a broken description,
/// which MachineDesc::finalize should have caught).
InstSummary analyzeWord(const MachineDesc &Desc, MachWord Word);

} // namespace spawn
} // namespace eel

#endif // EEL_SPAWN_ANALYSIS_H
