//===- spawn/Eval.h - Concrete RTL execution --------------------*- C++ -*-===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes machine instructions directly from their description semantics —
/// a second, independent interpreter for each target. The VM test suite runs
/// whole programs under both the handwritten interpreter and this one and
/// requires identical results, which validates the machine descriptions the
/// same way the paper validated spawn against the handwritten qpt layer.
///
//===----------------------------------------------------------------------===//

#ifndef EEL_SPAWN_EVAL_H
#define EEL_SPAWN_EVAL_H

#include "spawn/MachineDesc.h"
#include "vm/Machine.h"

namespace eel {
namespace spawn {

/// Executes one instruction word at \p PC against \p M's state using the
/// description's RTL semantics. Parallel statement groups observe the
/// pre-instruction state, as the description language requires.
StepOutcome executeWord(const MachineDesc &Desc, Machine &M, Addr PC,
                        MachWord Word);

/// Runs \p File to completion under description semantics.
RunResult runWithDescription(const MachineDesc &Desc, const SxfFile &File,
                             uint64_t MaxSteps = 200'000'000);

} // namespace spawn
} // namespace eel

#endif // EEL_SPAWN_EVAL_H
