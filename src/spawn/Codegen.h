//===- spawn/Codegen.h - Generated-source dump -------------------*- C++ -*-===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders a machine description as generated C++ source — the artifact the
/// paper's spawn emitted (6,178 lines for SPARC from a 145-line description).
/// The output contains the decode tables, field accessors, and a direct
/// translation of every instruction's RTL semantics into C++ statements.
/// bench_machdesc counts its lines against the description and the
/// handwritten backends to reproduce the §4 conciseness comparison.
///
//===----------------------------------------------------------------------===//

#ifndef EEL_SPAWN_CODEGEN_H
#define EEL_SPAWN_CODEGEN_H

#include "spawn/MachineDesc.h"

#include <string>

namespace eel {
namespace spawn {

/// Generates a self-contained C++ rendering of \p Desc.
std::string generateCppSource(const MachineDesc &Desc);

} // namespace spawn
} // namespace eel

#endif // EEL_SPAWN_CODEGEN_H
