//===- spawn/Lexer.cpp - Machine-description tokenizer ---------------------===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//

#include "spawn/Lexer.h"

#include <cctype>

using namespace eel;
using namespace eel::spawn;

Expected<std::vector<Token>> spawn::lexDescription(const std::string &Source) {
  std::vector<Token> Tokens;
  unsigned Line = 1;
  bool AtLineStart = true;
  size_t I = 0;
  const size_t N = Source.size();

  auto Push = [&](TokKind Kind, std::string Text, int64_t Value = 0) {
    Token T;
    T.Kind = Kind;
    T.Text = std::move(Text);
    T.Value = Value;
    T.Line = Line;
    T.StartOfLine = AtLineStart;
    AtLineStart = false;
    Tokens.push_back(std::move(T));
  };

  while (I < N) {
    char C = Source[I];
    if (C == '\n') {
      ++Line;
      AtLineStart = true;
      ++I;
      continue;
    }
    if (C == ' ' || C == '\t' || C == '\r') {
      ++I;
      continue;
    }
    if (C == '-' && I + 1 < N && Source[I + 1] == '-') {
      while (I < N && Source[I] != '\n')
        ++I;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      size_t Start = I;
      while (I < N && (std::isalnum(static_cast<unsigned char>(Source[I])) ||
                       Source[I] == '_'))
        ++I;
      Push(TokKind::Ident, Source.substr(Start, I - Start));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(C))) {
      size_t Start = I;
      int64_t Value = 0;
      if (C == '0' && I + 1 < N && (Source[I + 1] == 'x' || Source[I + 1] == 'X')) {
        I += 2;
        while (I < N &&
               std::isxdigit(static_cast<unsigned char>(Source[I]))) {
          char D = static_cast<char>(
              std::tolower(static_cast<unsigned char>(Source[I])));
          Value = Value * 16 + (D <= '9' ? D - '0' : D - 'a' + 10);
          ++I;
        }
      } else {
        while (I < N && std::isdigit(static_cast<unsigned char>(Source[I]))) {
          Value = Value * 10 + (Source[I] - '0');
          ++I;
        }
      }
      Push(TokKind::Number, Source.substr(Start, I - Start), Value);
      continue;
    }
    // Multi-character punctuation first.
    auto Starts = [&](const char *S) {
      size_t L = std::char_traits<char>::length(S);
      return Source.compare(I, L, S) == 0;
    };
    if (Starts(":=")) {
      Push(TokKind::Punct, ":=");
      I += 2;
      continue;
    }
    if (Starts("&&")) {
      Push(TokKind::Punct, "&&");
      I += 2;
      continue;
    }
    if (Starts("<<")) {
      Push(TokKind::Punct, "<<");
      I += 2;
      continue;
    }
    if (Starts("!=")) {
      Push(TokKind::Punct, "!=");
      I += 2;
      continue;
    }
    switch (C) {
    case ':':
    case '?':
    case ';':
    case ',':
    case '(':
    case ')':
    case '[':
    case ']':
    case '{':
    case '}':
    case '=':
    case '@':
    case '+':
    case '-':
    case '*':
    case '&':
    case '|':
    case '^':
    case '~':
      Push(TokKind::Punct, std::string(1, C));
      ++I;
      continue;
    default:
      return Error("machine description line " + std::to_string(Line) +
                   ": unexpected character '" + std::string(1, C) + "'");
    }
  }
  Push(TokKind::End, "");
  return Tokens;
}
