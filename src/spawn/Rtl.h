//===- spawn/Rtl.h - Register-transfer-level IR -----------------*- C++ -*-===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The register-transfer IR that spawn machine descriptions compile to,
/// corresponding to the semantic expressions of Figure 7 in the paper. One
/// Semantics object describes one instruction: statements before the `;`
/// execute at issue, statements after it describe the delayed control
/// transfer that overlaps the delay slot.
///
/// The IR is deliberately small: everything a RISC instruction does is a
/// parallel set of guarded assignments to registers, memory, or the PC,
/// plus `annul` (squash the delay slot) and `trap` (enter the OS).
///
//===----------------------------------------------------------------------===//

#ifndef EEL_SPAWN_RTL_H
#define EEL_SPAWN_RTL_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace eel {
namespace spawn {

struct Expr;
using ExprP = std::shared_ptr<const Expr>;
struct Stmt;
using StmtP = std::shared_ptr<const Stmt>;

/// Binary operators available in description expressions.
enum class RtlBinOp : uint8_t { Add, Sub, Mul, And, Or, Xor, Shl, Eq, Ne };

/// Builtin semantic functions. The paper's descriptions use named functions
/// for operations whose encodings differ per instruction (alu ops, condition
/// tests, condition-code computation); sx() sign-extends a field by its
/// declared width.
enum class RtlFn : uint8_t {
  Add,
  Sub,
  And,
  Or,
  Xor,
  Sll,
  Srl,
  Sra,
  Mul,
  Div,
  Rem,
  SetLess,
  Eq,  ///< eq(a,b): a == b (branch test)
  Ne,
  Les, ///< les(a,b): a <= b signed
  Gts, ///< gts(a,b): a > b signed
  CcAdd,
  CcSub,
  CcAnd,
  CcOr,
  CcXor,
  CondE,
  CondLe,
  CondL,
  CondLeu,
  CondCs,
  CondNeg,
  CondVs,
  CondNe,
  CondG,
  CondGe,
  CondGu,
  CondCc,
  CondPos,
  CondVc,
  Sx, ///< sx(field): sign-extend by the field's width
};

struct Expr {
  enum class Kind : uint8_t {
    Const,   ///< IntVal
    Field,   ///< Name = instruction field (value zero-extended)
    Reg,     ///< RegFile index in FileIndex; Args[0] = index expr (indexed
             ///  files) or empty (single registers)
    Pc,      ///< Current program counter
    Mem,     ///< Memory read: Args[0] = address, MemWidth bytes,
             ///  MemSignExtend
    Binary,  ///< Op over Args[0], Args[1]
    Ternary, ///< Args[0] ? Args[1] : Args[2]
    Apply,   ///< Builtin Fn over Args
    Local,   ///< Name = local temporary bound earlier in the semantics
  };

  Kind K = Kind::Const;
  int64_t IntVal = 0;
  std::string Name;
  unsigned FileIndex = 0;
  unsigned MemWidth = 0;
  bool MemSignExtend = false;
  RtlBinOp Op = RtlBinOp::Add;
  RtlFn Fn = RtlFn::Add;
  std::vector<ExprP> Args;

  static ExprP makeConst(int64_t V);
  static ExprP makeField(std::string Name);
  static ExprP makeReg(unsigned FileIndex, ExprP Index);
  static ExprP makePc();
  static ExprP makeMem(ExprP AddrExpr, unsigned Width, bool SignExtend);
  static ExprP makeBinary(RtlBinOp Op, ExprP L, ExprP R);
  static ExprP makeTernary(ExprP C, ExprP T, ExprP F);
  static ExprP makeApply(RtlFn Fn, std::vector<ExprP> Args);
  static ExprP makeLocal(std::string Name);
};

struct Stmt {
  enum class Kind : uint8_t {
    AssignReg,   ///< Lhs (Reg expr) := Rhs
    AssignPc,    ///< pc := Rhs (a control transfer; delayed when after ';')
    AssignMem,   ///< Lhs (Mem expr) := Rhs
    AssignLocal, ///< Name := Rhs (pure temporary)
    Guard,       ///< Cond ? Then : Else
    Annul,       ///< Squash the delay-slot instruction
    Trap,        ///< System call; Rhs = trap number expression
    Skip,        ///< No-op
  };

  Kind K = Kind::Skip;
  std::string Name; ///< AssignLocal temporary name.
  ExprP Lhs;
  ExprP Rhs;
  ExprP Cond;
  std::vector<StmtP> Then;
  std::vector<StmtP> Else;
};

/// One instruction's full semantics. HasDelayMark records whether the
/// description contained a `;` (i.e. the instruction occupies a delay slot
/// boundary); the categorizer combines this with reachability analysis.
struct Semantics {
  std::vector<StmtP> Before;
  std::vector<StmtP> After;
  bool HasDelayMark = false;
};

/// Pretty-prints RTL for diagnostics and for the spawn code generator.
std::string printExpr(const Expr &E,
                      const std::vector<std::string> &RegFileNames);
std::string printStmt(const Stmt &S,
                      const std::vector<std::string> &RegFileNames,
                      unsigned Indent = 0);

/// Maps a builtin name to its function, or nullptr-equivalent (false).
bool lookupRtlFn(const std::string &Name, RtlFn &Out);

} // namespace spawn
} // namespace eel

#endif // EEL_SPAWN_RTL_H
