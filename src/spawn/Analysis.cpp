//===- spawn/Analysis.cpp - Per-word semantic analysis ---------------------===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//

#include "spawn/Analysis.h"

#include "support/BitOps.h"
#include "support/Error.h"

#include <map>

using namespace eel;
using namespace eel::spawn;

namespace {

/// Linear form of an expression: PcCoef*PC + Bias + field terms + register
/// terms. Used for target shapes and memory-address shapes.
struct Affine {
  int PcCoef = 0;
  int64_t Bias = 0;
  struct FieldTerm {
    std::string Name;
    unsigned Shift = 0;
    bool Signed = false;
  };
  std::vector<FieldTerm> FieldTerms;
  struct RegTerm {
    unsigned FileIndex = 0;
    unsigned Index = 0; ///< Folded register index.
    std::string IndexField; ///< Field name when the index came from a field.
  };
  std::vector<RegTerm> RegTerms;
  uint32_t RegionMask = 0; ///< Non-zero for (PC & mask) | ... shapes.
  bool HasRegion = false;
};

/// Analysis pass over one instruction's semantics for one concrete word.
class WordAnalyzer {
public:
  WordAnalyzer(const MachineDesc &Desc, MachWord Word)
      : Desc(Desc), Word(Word) {}

  InstSummary run();

private:
  // --- Expression helpers ------------------------------------------------

  /// Substitutes locals and folds ternaries whose condition only involves
  /// fields/constants. Field nodes stay symbolic.
  ExprP resolve(const ExprP &E);

  /// Fully folds an expression of fields and constants; nullopt if it
  /// involves registers, memory, or PC.
  std::optional<int64_t> foldConst(const ExprP &E);

  /// Register id for a Reg expression (folds the index); asserts on an
  /// unfoldable index, which would mean a register indexed by a register.
  unsigned regId(const Expr &Reg);

  /// Raw register number (the field/const value, before BaseId bias).
  unsigned regNumber(const Expr &Reg);

  /// Records register/memory reads of \p E into the summary.
  void collectReads(const ExprP &E);

  /// Records fields used as register indices in \p E.
  void collectRegIndexFields(const ExprP &E);

  std::optional<Affine> linearize(const ExprP &E);

  bool containsPc(const ExprP &E) const;
  bool containsMemRead(const ExprP &E) const;

  // --- Statement walk ------------------------------------------------------

  void walkStmts(const std::vector<StmtP> &Stmts, bool UnderGuard);
  void walkStmt(const Stmt &S, bool UnderGuard);

  const MachineDesc &Desc;
  MachWord Word;
  InstSummary Summary;
  std::map<std::string, ExprP> Locals;

  // Facts accumulated by the walk.
  struct RegAssign {
    unsigned FileIndex;
    unsigned Number; ///< Raw register number (field value).
    ExprP Rhs;
    bool Conditional;
    bool IndexWasConst;
  };
  std::vector<RegAssign> RegAssigns;
  struct PcAssign {
    ExprP Rhs;
    bool Conditional;
  };
  std::optional<PcAssign> Pc;
  struct MemWrite {
    ExprP AddrExpr;
    unsigned Width;
    ExprP Rhs;
  };
  std::optional<MemWrite> MemW;
  struct MemRead {
    ExprP AddrExpr;
    unsigned Width;
    bool SignExtend;
  };
  std::vector<MemRead> MemReads;
  bool AnnulUntaken = false;
  bool AnnulAlways = false;
  bool HasTrap = false;
  ExprP TrapExpr;
};

} // namespace

ExprP WordAnalyzer::resolve(const ExprP &E) {
  if (!E)
    return E;
  switch (E->K) {
  case Expr::Kind::Local: {
    auto It = Locals.find(E->Name);
    if (It == Locals.end())
      reportFatalError("semantics read unbound temporary '" + E->Name + "'");
    return It->second;
  }
  case Expr::Kind::Ternary: {
    ExprP Cond = resolve(E->Args[0]);
    if (std::optional<int64_t> C = foldConst(Cond))
      return resolve(E->Args[*C != 0 ? 1 : 2]);
    auto Copy = std::make_shared<Expr>(*E);
    Copy->Args[0] = Cond;
    Copy->Args[1] = resolve(E->Args[1]);
    Copy->Args[2] = resolve(E->Args[2]);
    return Copy;
  }
  case Expr::Kind::Const:
  case Expr::Kind::Field:
  case Expr::Kind::Pc:
    return E;
  default: {
    auto Copy = std::make_shared<Expr>(*E);
    for (ExprP &Arg : Copy->Args)
      Arg = resolve(Arg);
    return Copy;
  }
  }
}

std::optional<int64_t> WordAnalyzer::foldConst(const ExprP &E) {
  if (!E)
    return std::nullopt;
  switch (E->K) {
  case Expr::Kind::Const:
    return E->IntVal;
  case Expr::Kind::Field: {
    const FieldDef *F = Desc.field(E->Name);
    assert(F && "unknown field survived parsing");
    return static_cast<int64_t>(Desc.fieldValue(*F, Word));
  }
  case Expr::Kind::Apply: {
    if (E->Fn == RtlFn::Sx) {
      const FieldDef *F = Desc.field(E->Args[0]->Name);
      assert(F && "sx of unknown field");
      return signExtend(Desc.fieldValue(*F, Word), F->width());
    }
    return std::nullopt; // other builtins need register values
  }
  case Expr::Kind::Binary: {
    std::optional<int64_t> L = foldConst(E->Args[0]);
    std::optional<int64_t> R = foldConst(E->Args[1]);
    if (!L || !R)
      return std::nullopt;
    switch (E->Op) {
    case RtlBinOp::Add:
      return *L + *R;
    case RtlBinOp::Sub:
      return *L - *R;
    case RtlBinOp::Mul:
      return *L * *R;
    case RtlBinOp::And:
      return *L & *R;
    case RtlBinOp::Or:
      return *L | *R;
    case RtlBinOp::Xor:
      return *L ^ *R;
    case RtlBinOp::Shl:
      return *L << (*R & 63);
    case RtlBinOp::Eq:
      return *L == *R ? 1 : 0;
    case RtlBinOp::Ne:
      return *L != *R ? 1 : 0;
    }
    return std::nullopt;
  }
  case Expr::Kind::Ternary: {
    std::optional<int64_t> C = foldConst(E->Args[0]);
    if (!C)
      return std::nullopt;
    return foldConst(E->Args[*C != 0 ? 1 : 2]);
  }
  case Expr::Kind::Local: {
    auto It = Locals.find(E->Name);
    if (It == Locals.end())
      return std::nullopt;
    return foldConst(It->second);
  }
  default:
    return std::nullopt;
  }
}

unsigned WordAnalyzer::regNumber(const Expr &Reg) {
  assert(Reg.K == Expr::Kind::Reg && "not a register expression");
  if (Reg.Args.empty())
    return 0;
  std::optional<int64_t> Index = foldConst(Reg.Args[0]);
  if (!Index)
    reportFatalError("register index does not fold to a constant");
  return static_cast<unsigned>(*Index);
}

unsigned WordAnalyzer::regId(const Expr &Reg) {
  const RegFileDef &RF = Desc.RegFiles[Reg.FileIndex];
  if (RF.Count == 0)
    return RF.BaseId;
  return RF.BaseId + regNumber(Reg);
}

void WordAnalyzer::collectReads(const ExprP &E) {
  if (!E)
    return;
  switch (E->K) {
  case Expr::Kind::Reg: {
    unsigned Id = regId(*E);
    if (static_cast<int>(Id) != Desc.ZeroRegId)
      Summary.Reads.insert(Id);
    return;
  }
  case Expr::Kind::Mem:
    MemReads.push_back({E->Args[0], E->MemWidth, E->MemSignExtend});
    collectReads(E->Args[0]);
    return;
  default:
    for (const ExprP &Arg : E->Args)
      collectReads(Arg);
    return;
  }
}

void WordAnalyzer::collectRegIndexFields(const ExprP &E) {
  if (!E)
    return;
  if (E->K == Expr::Kind::Reg) {
    if (!E->Args.empty() && E->Args[0]->K == Expr::Kind::Field)
      Summary.RegIndexFields.push_back(E->Args[0]->Name);
    return;
  }
  for (const ExprP &Arg : E->Args)
    collectRegIndexFields(Arg);
}

bool WordAnalyzer::containsPc(const ExprP &E) const {
  if (!E)
    return false;
  if (E->K == Expr::Kind::Pc)
    return true;
  for (const ExprP &Arg : E->Args)
    if (containsPc(Arg))
      return true;
  return false;
}

bool WordAnalyzer::containsMemRead(const ExprP &E) const {
  if (!E)
    return false;
  if (E->K == Expr::Kind::Mem)
    return true;
  for (const ExprP &Arg : E->Args)
    if (containsMemRead(Arg))
      return true;
  return false;
}

std::optional<Affine> WordAnalyzer::linearize(const ExprP &E) {
  if (!E)
    return std::nullopt;
  Affine A;
  switch (E->K) {
  case Expr::Kind::Const:
    A.Bias = E->IntVal;
    return A;
  case Expr::Kind::Field:
    A.FieldTerms.push_back({E->Name, 0, false});
    return A;
  case Expr::Kind::Pc:
    A.PcCoef = 1;
    return A;
  case Expr::Kind::Reg: {
    Affine::RegTerm Term;
    Term.FileIndex = E->FileIndex;
    Term.Index = regNumber(*E);
    if (!E->Args.empty() && E->Args[0]->K == Expr::Kind::Field)
      Term.IndexField = E->Args[0]->Name;
    A.RegTerms.push_back(Term);
    return A;
  }
  case Expr::Kind::Apply:
    if (E->Fn == RtlFn::Sx) {
      A.FieldTerms.push_back({E->Args[0]->Name, 0, true});
      return A;
    }
    return std::nullopt;
  case Expr::Kind::Ternary: {
    std::optional<int64_t> C = foldConst(E->Args[0]);
    if (!C)
      return std::nullopt;
    return linearize(E->Args[*C != 0 ? 1 : 2]);
  }
  case Expr::Kind::Binary: {
    switch (E->Op) {
    case RtlBinOp::Add:
    case RtlBinOp::Sub: {
      std::optional<Affine> L = linearize(E->Args[0]);
      std::optional<Affine> R = linearize(E->Args[1]);
      if (!L || !R || R->HasRegion)
        return std::nullopt;
      if (E->Op == RtlBinOp::Sub) {
        // Only constant subtrahends keep the form linear.
        if (R->PcCoef || !R->FieldTerms.empty() || !R->RegTerms.empty())
          return std::nullopt;
        L->Bias -= R->Bias;
        return L;
      }
      L->PcCoef += R->PcCoef;
      L->Bias += R->Bias;
      for (auto &T : R->FieldTerms)
        L->FieldTerms.push_back(T);
      for (auto &T : R->RegTerms)
        L->RegTerms.push_back(T);
      return L;
    }
    case RtlBinOp::Shl: {
      std::optional<int64_t> Shift = foldConst(E->Args[1]);
      if (!Shift)
        return std::nullopt;
      std::optional<Affine> L = linearize(E->Args[0]);
      if (!L || L->PcCoef || !L->RegTerms.empty() || L->HasRegion)
        return std::nullopt;
      L->Bias <<= *Shift;
      for (auto &T : L->FieldTerms)
        T.Shift += static_cast<unsigned>(*Shift);
      return L;
    }
    case RtlBinOp::Or: {
      // Region pattern: (PC & mask) | sub-expression.
      const ExprP &Lhs = E->Args[0];
      const ExprP &Rhs = E->Args[1];
      if (Lhs->K == Expr::Kind::Binary && Lhs->Op == RtlBinOp::And &&
          Lhs->Args[0]->K == Expr::Kind::Pc) {
        std::optional<int64_t> Mask = foldConst(Lhs->Args[1]);
        std::optional<Affine> Sub = linearize(Rhs);
        if (!Mask || !Sub || Sub->PcCoef || !Sub->RegTerms.empty() ||
            Sub->HasRegion)
          return std::nullopt;
        Sub->HasRegion = true;
        Sub->RegionMask = static_cast<uint32_t>(*Mask);
        return Sub;
      }
      return std::nullopt;
    }
    default:
      return std::nullopt;
    }
  }
  case Expr::Kind::Local: {
    auto It = Locals.find(E->Name);
    if (It == Locals.end())
      return std::nullopt;
    return linearize(It->second);
  }
  default:
    return std::nullopt;
  }
}

void WordAnalyzer::walkStmt(const Stmt &S, bool UnderGuard) {
  switch (S.K) {
  case Stmt::Kind::Skip:
    return;
  case Stmt::Kind::AssignLocal: {
    ExprP Rhs = resolve(S.Rhs);
    Locals[S.Name] = Rhs;
    collectReads(Rhs);
    collectRegIndexFields(Rhs);
    return;
  }
  case Stmt::Kind::AssignReg: {
    ExprP Rhs = resolve(S.Rhs);
    const Expr &Lhs = *S.Lhs;
    unsigned Id = regId(Lhs);
    unsigned Number =
        Desc.RegFiles[Lhs.FileIndex].Count == 0 ? 0 : regNumber(Lhs);
    bool IndexWasConst =
        Lhs.Args.empty() || Lhs.Args[0]->K != Expr::Kind::Field;
    if (static_cast<int>(Id) != Desc.ZeroRegId)
      Summary.Writes.insert(Id);
    collectReads(Rhs);
    collectRegIndexFields(Rhs);
    if (!IndexWasConst)
      Summary.RegIndexFields.push_back(Lhs.Args[0]->Name);
    else if (Desc.RegFiles[Lhs.FileIndex].Count != 0)
      Summary.ImplicitRegWrites.push_back(Number);
    RegAssigns.push_back({Lhs.FileIndex, Number, Rhs, UnderGuard,
                          IndexWasConst});
    return;
  }
  case Stmt::Kind::AssignPc: {
    ExprP Rhs = resolve(S.Rhs);
    collectReads(Rhs);
    collectRegIndexFields(Rhs);
    Pc = PcAssign{Rhs, UnderGuard};
    return;
  }
  case Stmt::Kind::AssignMem: {
    ExprP Rhs = resolve(S.Rhs);
    ExprP AddrExpr = resolve(S.Lhs->Args[0]);
    collectReads(AddrExpr);
    collectReads(Rhs);
    collectRegIndexFields(AddrExpr);
    collectRegIndexFields(Rhs);
    MemW = MemWrite{AddrExpr, S.Lhs->MemWidth, Rhs};
    return;
  }
  case Stmt::Kind::Annul:
    if (UnderGuard)
      AnnulUntaken = true;
    else
      AnnulAlways = true;
    return;
  case Stmt::Kind::Trap: {
    HasTrap = true;
    TrapExpr = resolve(S.Rhs);
    return;
  }
  case Stmt::Kind::Guard: {
    ExprP Cond = resolve(S.Cond);
    if (std::optional<int64_t> C = foldConst(Cond)) {
      walkStmts(*C != 0 ? S.Then : S.Else, UnderGuard);
      return;
    }
    collectReads(Cond);
    collectRegIndexFields(Cond);
    walkStmts(S.Then, /*UnderGuard=*/true);
    walkStmts(S.Else, /*UnderGuard=*/true);
    return;
  }
  }
}

void WordAnalyzer::walkStmts(const std::vector<StmtP> &Stmts,
                             bool UnderGuard) {
  for (const StmtP &S : Stmts)
    walkStmt(*S, UnderGuard);
}

Addr TargetShape::evaluate(const MachineDesc &Desc, MachWord Word,
                           Addr PC) const {
  int64_t FieldPart = 0;
  if (HasField) {
    const FieldDef *F = Desc.field(FieldName);
    assert(F && "target shape names unknown field");
    uint32_t Raw = Desc.fieldValue(*F, Word);
    int64_t Value = FieldSigned ? signExtend(Raw, F->width())
                                : static_cast<int64_t>(Raw);
    FieldPart = Value << Shift;
  }
  if (K == Kind::Region)
    return (PC & RegionMask) |
           static_cast<Addr>(static_cast<int64_t>(Bias) + FieldPart);
  return static_cast<Addr>(static_cast<int64_t>(PC) + Bias + FieldPart);
}

InstSummary WordAnalyzer::run() {
  Summary.PatternIndex = Desc.decode(Word);
  if (Summary.PatternIndex < 0)
    return Summary; // Invalid

  const InstPattern &Pattern = Desc.Patterns[Summary.PatternIndex];
  const Semantics &Sem = Desc.Sems[Pattern.SemIndex];
  walkStmts(Sem.Before, /*UnderGuard=*/false);
  walkStmts(Sem.After, /*UnderGuard=*/false);

  // --- Classification ------------------------------------------------------
  bool HasMemRead = !MemReads.empty();
  if (HasTrap) {
    Summary.Category = InstCategory::System;
    Summary.TrapNumber.reset();
    if (TrapExpr)
      if (std::optional<int64_t> N = foldConst(TrapExpr))
        Summary.TrapNumber = static_cast<unsigned>(*N);
  } else if (MemW && HasMemRead) {
    Summary.Category = InstCategory::LoadStore;
  } else if (MemW) {
    Summary.Category = InstCategory::Store;
  } else if (HasMemRead) {
    Summary.Category = InstCategory::Load;
  } else if (Pc) {
    std::optional<Affine> A = linearize(Pc->Rhs);
    bool IsDirect =
        A && A->RegTerms.empty() && (A->PcCoef == 1 || A->HasRegion);
    if (IsDirect) {
      // Direct transfer.
      TargetShape Shape;
      Shape.K = A->HasRegion ? TargetShape::Kind::Region
                             : TargetShape::Kind::PcRelative;
      Shape.RegionMask = A->RegionMask;
      Shape.Bias = A->Bias;
      if (!A->FieldTerms.empty()) {
        assert(A->FieldTerms.size() == 1 &&
               "direct target uses several fields");
        Shape.HasField = true;
        Shape.FieldName = A->FieldTerms[0].Name;
        Shape.Shift = A->FieldTerms[0].Shift;
        Shape.FieldSigned = A->FieldTerms[0].Signed;
      }
      Summary.Direct = Shape;
      Summary.Conditional = Pc->Conditional;
      if (Pc->Conditional) {
        Summary.Category = InstCategory::BranchDirect;
      } else {
        bool WritesLink = false;
        for (const RegAssign &RA : RegAssigns)
          if (Desc.RegFiles[RA.FileIndex].Count != 0 && containsPc(RA.Rhs))
            WritesLink = true;
        Summary.Category = WritesLink ? InstCategory::CallDirect
                                      : InstCategory::JumpDirect;
      }
    } else {
      // Indirect transfer through registers.
      Summary.Category = InstCategory::IndirectJump;
      IndirectTargetInfo Info;
      if (A && !A->RegTerms.empty()) {
        Info.BaseReg = A->RegTerms[0].Index;
        if (A->RegTerms.size() > 1) {
          Info.HasIndex = true;
          Info.IndexReg = A->RegTerms[1].Index;
        } else {
          int64_t Offset = A->Bias;
          for (const Affine::FieldTerm &T : A->FieldTerms) {
            const FieldDef *F = Desc.field(T.Name);
            uint32_t Raw = Desc.fieldValue(*F, Word);
            int64_t V = T.Signed ? signExtend(Raw, F->width())
                                 : static_cast<int64_t>(Raw);
            Offset += V << T.Shift;
          }
          Info.Offset = static_cast<int32_t>(Offset);
        }
      }
      for (const RegAssign &RA : RegAssigns)
        if (Desc.RegFiles[RA.FileIndex].Count != 0 && containsPc(RA.Rhs))
          Info.LinkReg = RA.Number;
      Summary.Indirect = Info;
      Summary.Conditional = Pc->Conditional;
    }
  } else if (AnnulAlways) {
    // Annul without a transfer skips the delay slot: a jump to PC+8.
    Summary.Category = InstCategory::JumpDirect;
    TargetShape Shape;
    Shape.K = TargetShape::Kind::PcRelative;
    Shape.Bias = 8;
    Summary.Direct = Shape;
  } else {
    Summary.Category = InstCategory::Computation;
  }

  // --- Delay behaviour ------------------------------------------------------
  // A transfer occupies a delay slot only when the description says so (the
  // `;` mark). The old code hardcoded HasDelaySlot = true for every transfer
  // category — a latent SPARC-ism that broke the first delay-slot-free
  // description (ARISC).
  switch (Summary.Category) {
  case InstCategory::BranchDirect:
  case InstCategory::JumpDirect:
  case InstCategory::CallDirect:
  case InstCategory::IndirectJump:
    Summary.HasDelaySlot = Sem.HasDelayMark;
    if (!Sem.HasDelayMark)
      Summary.Delay = DelayBehavior::None;
    else if (AnnulAlways)
      Summary.Delay = DelayBehavior::AnnulAlways;
    else if (AnnulUntaken)
      Summary.Delay = DelayBehavior::AnnulUntaken;
    else
      Summary.Delay = DelayBehavior::Always;
    break;
  default:
    Summary.HasDelaySlot = false;
    Summary.Delay = DelayBehavior::None;
    break;
  }

  // --- Dataflow shape (for the slicer) -------------------------------------
  if (Summary.Category == InstCategory::Computation) {
    const RegAssign *Main = nullptr;
    bool SetsCC = false;
    for (const RegAssign &RA : RegAssigns) {
      if (Desc.RegFiles[RA.FileIndex].Count != 0) {
        if (!Main)
          Main = &RA;
        else
          Main = nullptr; // multiple general-register writes: inexpressible
      } else {
        SetsCC = true;
      }
    }
    if (Main && !Main->Conditional) {
      DataOp &Op = Summary.DOp;
      Op.Rd = Main->Number;
      Op.SetsCC = SetsCC;
      const ExprP &Rhs = Main->Rhs;
      if (std::optional<int64_t> C = foldConst(Rhs)) {
        Op.Kind = DataOpKind::LoadImmHi;
        Op.HasImm = true;
        Op.Imm = static_cast<int32_t>(*C);
      } else if ((Rhs->K == Expr::Kind::Apply ||
                  Rhs->K == Expr::Kind::Binary) &&
                 Rhs->Args.size() == 2 &&
                 Rhs->Args[0]->K == Expr::Kind::Reg) {
        DataOpKind Kind = DataOpKind::None;
        if (Rhs->K == Expr::Kind::Apply) {
          switch (Rhs->Fn) {
          case RtlFn::Add: Kind = DataOpKind::Add; break;
          case RtlFn::Sub: Kind = DataOpKind::Sub; break;
          case RtlFn::And: Kind = DataOpKind::And; break;
          case RtlFn::Or: Kind = DataOpKind::Or; break;
          case RtlFn::Xor: Kind = DataOpKind::Xor; break;
          case RtlFn::Sll: Kind = DataOpKind::Sll; break;
          case RtlFn::Srl: Kind = DataOpKind::Srl; break;
          case RtlFn::Sra: Kind = DataOpKind::Sra; break;
          case RtlFn::Mul: Kind = DataOpKind::Mul; break;
          case RtlFn::Div: Kind = DataOpKind::Div; break;
          case RtlFn::Rem: Kind = DataOpKind::Rem; break;
          case RtlFn::SetLess: Kind = DataOpKind::SetLess; break;
          default: break;
          }
        } else {
          switch (Rhs->Op) {
          case RtlBinOp::Add: Kind = DataOpKind::Add; break;
          case RtlBinOp::Sub: Kind = DataOpKind::Sub; break;
          case RtlBinOp::And: Kind = DataOpKind::And; break;
          case RtlBinOp::Or: Kind = DataOpKind::Or; break;
          case RtlBinOp::Xor: Kind = DataOpKind::Xor; break;
          case RtlBinOp::Mul: Kind = DataOpKind::Mul; break;
          case RtlBinOp::Shl: Kind = DataOpKind::Sll; break;
          default: break;
          }
        }
        if (Kind != DataOpKind::None) {
          Op.Kind = Kind;
          Op.Rs1 = regNumber(*Rhs->Args[0]);
          const ExprP &B = Rhs->Args[1];
          if (std::optional<int64_t> C2 = foldConst(B)) {
            Op.HasImm = true;
            Op.Imm = static_cast<int32_t>(*C2);
          } else if (B->K == Expr::Kind::Reg) {
            Op.Rs2 = regNumber(*B);
          } else {
            Op.Kind = DataOpKind::None; // complex second operand
          }
        }
      }
      // If the shape is unrecognized, Kind stays None but Rd may be set;
      // normalize so callers can test Kind alone.
      if (Op.Kind == DataOpKind::None)
        Summary.DOp = DataOp();
    }
  }

  // --- Memory shape ----------------------------------------------------------
  auto FillAddr = [&](MemOp &M, const ExprP &AddrExpr) -> bool {
    std::optional<Affine> A = linearize(AddrExpr);
    if (!A || A->PcCoef || A->HasRegion)
      return false;
    if (A->RegTerms.empty() || A->RegTerms.size() > 2)
      return false;
    M.AddrBase = A->RegTerms[0].Index;
    if (A->RegTerms.size() == 2) {
      M.HasIndex = true;
      M.AddrIndex = A->RegTerms[1].Index;
    } else {
      int64_t Offset = A->Bias;
      for (const Affine::FieldTerm &T : A->FieldTerms) {
        const FieldDef *F = Desc.field(T.Name);
        uint32_t Raw = Desc.fieldValue(*F, Word);
        int64_t V = T.Signed ? signExtend(Raw, F->width())
                             : static_cast<int64_t>(Raw);
        Offset += V << T.Shift;
      }
      M.Offset = static_cast<int32_t>(Offset);
    }
    return true;
  };
  if (Summary.Category == InstCategory::Load && MemReads.size() == 1) {
    for (const RegAssign &RA : RegAssigns) {
      if (Desc.RegFiles[RA.FileIndex].Count == 0 ||
          RA.Rhs->K != Expr::Kind::Mem)
        continue;
      MemOp M;
      M.IsLoad = true;
      M.Width = MemReads[0].Width;
      M.SignExtendLoad = MemReads[0].SignExtend;
      M.DataReg = RA.Number;
      if (FillAddr(M, MemReads[0].AddrExpr))
        Summary.MOp = M;
    }
  } else if (Summary.Category == InstCategory::Store && MemW) {
    MemOp M;
    M.IsStore = true;
    M.Width = MemW->Width;
    if (MemW->Rhs->K == Expr::Kind::Reg)
      M.DataReg = regNumber(*MemW->Rhs);
    if (FillAddr(M, MemW->AddrExpr))
      Summary.MOp = M;
  }

  return Summary;
}

InstSummary spawn::analyzeWord(const MachineDesc &Desc, MachWord Word) {
  WordAnalyzer Analyzer(Desc, Word);
  return Analyzer.run();
}
