//===- spawn/SpawnTarget.cpp - Description-derived target ------------------===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//

#include "spawn/SpawnTarget.h"

#include "isa/Descriptions.h"
#include "support/BitOps.h"
#include "support/Error.h"

#include <algorithm>
#include <set>

using namespace eel;
using namespace eel::spawn;

SpawnTarget::SpawnTarget(std::shared_ptr<const MachineDesc> Desc,
                         const TargetInfo &CodegenDelegate)
    : Desc(std::move(Desc)), Delegate(CodegenDelegate) {
  DisplayName = this->Desc->ArchName + "-spawn";
}

const InstSummary &SpawnTarget::summary(MachWord Word) const {
  auto It = Cache.find(Word);
  if (It != Cache.end())
    return *It->second;
  auto Summary = std::make_unique<InstSummary>(analyzeWord(*Desc, Word));
  const InstSummary &Ref = *Summary;
  Cache.emplace(Word, std::move(Summary));
  return Ref;
}

TargetArch SpawnTarget::arch() const { return Delegate.arch(); }
const char *SpawnTarget::name() const { return DisplayName.c_str(); }
const TargetConventions &SpawnTarget::conventions() const {
  return Delegate.conventions();
}
unsigned SpawnTarget::numRegisters() const {
  for (const RegFileDef &RF : Desc->RegFiles)
    if (RF.Count)
      return RF.Count;
  return Delegate.numRegisters();
}
bool SpawnTarget::hasConditionCodes() const {
  for (const RegFileDef &RF : Desc->RegFiles)
    if (RF.Count == 0)
      return true;
  return false;
}
std::string SpawnTarget::regName(unsigned Reg) const {
  return Delegate.regName(Reg);
}

InstCategory SpawnTarget::classify(MachWord Word) const {
  return summary(Word).Category;
}

RegSet SpawnTarget::reads(MachWord Word) const {
  const InstSummary &S = summary(Word);
  // Trap conventions live outside the description (paper §4).
  if (S.Category == InstCategory::System)
    return conventions().SyscallReads;
  return S.Reads;
}

RegSet SpawnTarget::writes(MachWord Word) const {
  const InstSummary &S = summary(Word);
  if (S.Category == InstCategory::System)
    return conventions().SyscallWrites;
  return S.Writes;
}

bool SpawnTarget::hasDelaySlot(MachWord Word) const {
  return summary(Word).HasDelaySlot;
}

DelayBehavior SpawnTarget::delayBehavior(MachWord Word) const {
  return summary(Word).Delay;
}

bool SpawnTarget::isConditional(MachWord Word) const {
  const InstSummary &S = summary(Word);
  return S.Conditional && S.Category == InstCategory::BranchDirect;
}

bool SpawnTarget::branchDelaySlots() const {
  // Derived from the description, not the delegate: the architecture has
  // delay slots iff some semantic expression carries a `;` delay mark.
  return Desc->hasDelayMarks();
}

std::optional<Addr> SpawnTarget::directTarget(MachWord Word, Addr PC) const {
  const InstSummary &S = summary(Word);
  if (!S.Direct)
    return std::nullopt;
  return S.Direct->evaluate(*Desc, Word, PC);
}

std::optional<IndirectTargetInfo>
SpawnTarget::indirectTarget(MachWord Word) const {
  return summary(Word).Indirect;
}

DataOp SpawnTarget::dataOp(MachWord Word) const { return summary(Word).DOp; }

std::optional<MemOp> SpawnTarget::memOp(MachWord Word) const {
  return summary(Word).MOp;
}

std::optional<unsigned> SpawnTarget::syscallNumber(MachWord Word) const {
  return summary(Word).TrapNumber;
}

std::optional<MachWord> SpawnTarget::retargetDirect(MachWord Word, Addr NewPC,
                                                    Addr NewTarget) const {
  const InstSummary &S = summary(Word);
  if (!S.Direct || !S.Direct->HasField)
    return std::nullopt;
  const TargetShape &Shape = *S.Direct;
  const FieldDef *F = Desc->field(Shape.FieldName);
  assert(F && "target shape names unknown field");
  int64_t Needed;
  if (Shape.K == TargetShape::Kind::Region) {
    if ((NewPC & Shape.RegionMask) != (NewTarget & Shape.RegionMask))
      return std::nullopt;
    Needed = static_cast<int64_t>(NewTarget & ~Shape.RegionMask) - Shape.Bias;
  } else {
    Needed = static_cast<int64_t>(NewTarget) - static_cast<int64_t>(NewPC) -
             Shape.Bias;
  }
  assert((Needed & ((int64_t(1) << Shape.Shift) - 1)) == 0 &&
         "misaligned branch target");
  int64_t FieldVal = Needed >> Shape.Shift;
  if (Shape.FieldSigned ? !fitsSigned(FieldVal, F->width())
                        : !fitsUnsigned(static_cast<uint64_t>(FieldVal),
                                        F->width()))
    return std::nullopt;
  MachWord NewWord =
      insertBits(Word, F->Lo, F->Hi, static_cast<uint32_t>(FieldVal));
  assert(Desc->decode(NewWord) == S.PatternIndex &&
         "retargeting changed the instruction's identity");
  return NewWord;
}

std::optional<MachWord> SpawnTarget::rewriteRegisters(
    MachWord Word, const std::function<unsigned(unsigned)> &Map) const {
  const InstSummary &S = summary(Word);
  if (S.PatternIndex < 0)
    return Word; // invalid encodings are left alone
  for (unsigned ImplicitReg : S.ImplicitRegWrites)
    if (Map(ImplicitReg) != ImplicitReg)
      return std::nullopt;
  MachWord Out = Word;
  std::set<std::string> Seen;
  for (const std::string &FieldName : S.RegIndexFields) {
    if (!Seen.insert(FieldName).second)
      continue;
    const FieldDef *F = Desc->field(FieldName);
    assert(F && "register-index field unknown");
    unsigned NewReg = Map(Desc->fieldValue(*F, Word));
    assert(NewReg < 32 && "register map produced a bad id");
    Out = insertBits(Out, F->Lo, F->Hi, NewReg);
  }
  return Out;
}

MachWord SpawnTarget::nopWord() const { return Delegate.nopWord(); }
bool SpawnTarget::emitJump(Addr PC, Addr Target,
                           std::vector<MachWord> &Out) const {
  return Delegate.emitJump(PC, Target, Out);
}
bool SpawnTarget::emitCall(Addr PC, Addr Target,
                           std::vector<MachWord> &Out) const {
  return Delegate.emitCall(PC, Target, Out);
}
void SpawnTarget::emitLoadConst(unsigned Reg, uint32_t Value,
                                std::vector<MachWord> &Out) const {
  Delegate.emitLoadConst(Reg, Value, Out);
}
void SpawnTarget::emitLoadWord(unsigned DataReg, unsigned Base, int32_t Offset,
                               std::vector<MachWord> &Out) const {
  Delegate.emitLoadWord(DataReg, Base, Offset, Out);
}
void SpawnTarget::emitStoreWord(unsigned DataReg, unsigned Base,
                                int32_t Offset,
                                std::vector<MachWord> &Out) const {
  Delegate.emitStoreWord(DataReg, Base, Offset, Out);
}
void SpawnTarget::emitAddImm(unsigned Rd, unsigned Rs1, int32_t Imm,
                             std::vector<MachWord> &Out) const {
  Delegate.emitAddImm(Rd, Rs1, Imm, Out);
}
void SpawnTarget::emitAddReg(unsigned Rd, unsigned Rs1, unsigned Rs2,
                             std::vector<MachWord> &Out) const {
  Delegate.emitAddReg(Rd, Rs1, Rs2, Out);
}
void SpawnTarget::emitAluImm(DataOpKind Op, unsigned Rd, unsigned Rs1,
                             int32_t Imm, std::vector<MachWord> &Out) const {
  Delegate.emitAluImm(Op, Rd, Rs1, Imm, Out);
}
void SpawnTarget::emitIndirectJump(unsigned Reg, std::vector<MachWord> &Out,
                                   std::optional<MachWord> DelayWord) const {
  Delegate.emitIndirectJump(Reg, Out, DelayWord);
}
bool SpawnTarget::emitSkipIfEqual(unsigned Ra, unsigned Rb,
                                  unsigned SkipWords,
                                  std::vector<MachWord> &Out) const {
  return Delegate.emitSkipIfEqual(Ra, Rb, SkipWords, Out);
}
bool SpawnTarget::emitSkipIfNotEqual(unsigned Ra, unsigned Rb,
                                     unsigned SkipWords,
                                     std::vector<MachWord> &Out) const {
  return Delegate.emitSkipIfNotEqual(Ra, Rb, SkipWords, Out);
}
bool SpawnTarget::emitSkipIfLess(unsigned Ra, unsigned Rb, unsigned Scratch,
                                 unsigned SkipWords,
                                 std::vector<MachWord> &Out) const {
  return Delegate.emitSkipIfLess(Ra, Rb, Scratch, SkipWords, Out);
}

bool SpawnTarget::emitSaveCC(unsigned ScratchReg,
                             std::vector<MachWord> &Out) const {
  return Delegate.emitSaveCC(ScratchReg, Out);
}
bool SpawnTarget::emitRestoreCC(unsigned ScratchReg,
                                std::vector<MachWord> &Out) const {
  return Delegate.emitRestoreCC(ScratchReg, Out);
}

std::string SpawnTarget::disassemble(MachWord Word, Addr PC) const {
  const InstSummary &S = summary(Word);
  if (S.PatternIndex < 0)
    return "<invalid>";
  const InstPattern &P = Desc->Patterns[S.PatternIndex];
  std::string Out = P.Name;
  // Append unconstrained fields for context.
  std::set<std::string> Constrained;
  for (const PatternConstraint &C : P.Constraints)
    Constrained.insert(C.Field);
  bool First = true;
  for (const FieldDef &F : Desc->Fields) {
    if (Constrained.count(F.Name))
      continue;
    Out += First ? " " : ", ";
    First = false;
    Out += F.Name + "=" + std::to_string(Desc->fieldValue(F, Word));
  }
  (void)PC;
  return Out;
}

static const SpawnTarget &buildSpawnTarget(TargetArch Arch) {
  const char *Source = Arch == TargetArch::Srisc   ? sriscDescription()
                       : Arch == TargetArch::Mrisc ? mriscDescription()
                                                   : ariscDescription();
  Expected<std::shared_ptr<MachineDesc>> Desc =
      parseMachineDescription(Source);
  if (Desc.hasError())
    reportFatalError("embedded machine description is broken: " +
                     Desc.error().message());
  static std::vector<std::unique_ptr<SpawnTarget>> Targets;
  Targets.push_back(
      std::make_unique<SpawnTarget>(Desc.takeValue(), targetFor(Arch)));
  return *Targets.back();
}

const SpawnTarget &spawn::spawnSriscTarget() {
  static const SpawnTarget &Target = buildSpawnTarget(TargetArch::Srisc);
  return Target;
}

const SpawnTarget &spawn::spawnMriscTarget() {
  static const SpawnTarget &Target = buildSpawnTarget(TargetArch::Mrisc);
  return Target;
}

const SpawnTarget &spawn::spawnAriscTarget() {
  static const SpawnTarget &Target = buildSpawnTarget(TargetArch::Arisc);
  return Target;
}

const SpawnTarget &spawn::spawnTargetFor(TargetArch Arch) {
  switch (Arch) {
  case TargetArch::Srisc:
    return spawnSriscTarget();
  case TargetArch::Mrisc:
    return spawnMriscTarget();
  case TargetArch::Arisc:
    return spawnAriscTarget();
  }
  unreachable("unknown target architecture");
}
