//===- spawn/SpawnTarget.h - Description-derived target ---------*- C++ -*-===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A TargetInfo implementation derived entirely from a spawn machine
/// description — the reproduction of the paper's claim that the handwritten
/// machine-specific layer can be generated from a ~150-line description.
/// Calling conventions and snippet code generation are supplied externally
/// (the paper: "spawn is currently unaware of a system's subroutine and
/// system call conventions"); everything analytical is derived from RTL.
///
/// The test suite checks this implementation agrees with the handwritten
/// backends on every inquiry over large random word samples, and the
/// benchmark suite shows it decodes at comparable speed (via the per-word
/// summary cache, the moral equivalent of spawn emitting specialized code).
///
//===----------------------------------------------------------------------===//

#ifndef EEL_SPAWN_SPAWNTARGET_H
#define EEL_SPAWN_SPAWNTARGET_H

#include "isa/Target.h"
#include "spawn/Analysis.h"
#include "spawn/MachineDesc.h"

#include <memory>
#include <unordered_map>

namespace eel {
namespace spawn {

/// TargetInfo backed by a machine description. Codegen helpers (snippet
/// emission) and conventions delegate to \p CodegenDelegate, the handwritten
/// backend for the same architecture.
class SpawnTarget : public TargetInfo {
public:
  SpawnTarget(std::shared_ptr<const MachineDesc> Desc,
              const TargetInfo &CodegenDelegate);

  const MachineDesc &desc() const { return *Desc; }

  /// Per-word summary with flyweight caching (one analysis per distinct
  /// word, like EEL's one-instruction-object-per-word optimization).
  const InstSummary &summary(MachWord Word) const;

  // TargetInfo interface.
  TargetArch arch() const override;
  const char *name() const override;
  const TargetConventions &conventions() const override;
  unsigned numRegisters() const override;
  bool hasConditionCodes() const override;
  std::string regName(unsigned Reg) const override;

  InstCategory classify(MachWord Word) const override;
  RegSet reads(MachWord Word) const override;
  RegSet writes(MachWord Word) const override;
  bool hasDelaySlot(MachWord Word) const override;
  DelayBehavior delayBehavior(MachWord Word) const override;
  bool isConditional(MachWord Word) const override;
  bool branchDelaySlots() const override;
  std::optional<Addr> directTarget(MachWord Word, Addr PC) const override;
  std::optional<IndirectTargetInfo>
  indirectTarget(MachWord Word) const override;
  DataOp dataOp(MachWord Word) const override;
  std::optional<MemOp> memOp(MachWord Word) const override;
  std::optional<unsigned> syscallNumber(MachWord Word) const override;
  std::optional<MachWord> retargetDirect(MachWord Word, Addr NewPC,
                                         Addr NewTarget) const override;
  std::optional<MachWord>
  rewriteRegisters(MachWord Word,
                   const std::function<unsigned(unsigned)> &Map) const override;

  MachWord nopWord() const override;
  bool emitJump(Addr PC, Addr Target,
                std::vector<MachWord> &Out) const override;
  bool emitCall(Addr PC, Addr Target,
                std::vector<MachWord> &Out) const override;
  void emitLoadConst(unsigned Reg, uint32_t Value,
                     std::vector<MachWord> &Out) const override;
  void emitLoadWord(unsigned DataReg, unsigned Base, int32_t Offset,
                    std::vector<MachWord> &Out) const override;
  void emitStoreWord(unsigned DataReg, unsigned Base, int32_t Offset,
                     std::vector<MachWord> &Out) const override;
  void emitAddImm(unsigned Rd, unsigned Rs1, int32_t Imm,
                  std::vector<MachWord> &Out) const override;
  void emitAddReg(unsigned Rd, unsigned Rs1, unsigned Rs2,
                  std::vector<MachWord> &Out) const override;
  void emitAluImm(DataOpKind Op, unsigned Rd, unsigned Rs1, int32_t Imm,
                  std::vector<MachWord> &Out) const override;
  void emitIndirectJump(unsigned Reg, std::vector<MachWord> &Out,
                        std::optional<MachWord> DelayWord) const override;
  bool emitSkipIfEqual(unsigned Ra, unsigned Rb, unsigned SkipWords,
                       std::vector<MachWord> &Out) const override;
  bool emitSkipIfNotEqual(unsigned Ra, unsigned Rb, unsigned SkipWords,
                          std::vector<MachWord> &Out) const override;
  bool emitSkipIfLess(unsigned Ra, unsigned Rb, unsigned Scratch,
                      unsigned SkipWords,
                      std::vector<MachWord> &Out) const override;
  bool emitSaveCC(unsigned ScratchReg,
                  std::vector<MachWord> &Out) const override;
  bool emitRestoreCC(unsigned ScratchReg,
                     std::vector<MachWord> &Out) const override;
  std::string disassemble(MachWord Word, Addr PC) const override;

private:
  std::shared_ptr<const MachineDesc> Desc;
  const TargetInfo &Delegate;
  std::string DisplayName;
  mutable std::unordered_map<MachWord, std::unique_ptr<InstSummary>> Cache;
};

/// Spawn-derived targets for the embedded descriptions (parsed once).
const SpawnTarget &spawnSriscTarget();
const SpawnTarget &spawnMriscTarget();
const SpawnTarget &spawnAriscTarget();
const SpawnTarget &spawnTargetFor(TargetArch Arch);

} // namespace spawn
} // namespace eel

#endif // EEL_SPAWN_SPAWNTARGET_H
