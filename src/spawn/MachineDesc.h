//===- spawn/MachineDesc.h - Parsed machine description ---------*- C++ -*-===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The semantic model a spawn machine description compiles to: instruction
/// fields, register resources, encoding patterns (mask/match pairs derived
/// from the paper's instruction-name matrices), and per-instruction RTL
/// semantics. Everything the SpawnTarget, the RTL evaluator, and the code
/// generator need is derived from this object.
///
//===----------------------------------------------------------------------===//

#ifndef EEL_SPAWN_MACHINEDESC_H
#define EEL_SPAWN_MACHINEDESC_H

#include "isa/Target.h"
#include "spawn/Rtl.h"
#include "support/Error.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace eel {
namespace spawn {

struct FieldDef {
  std::string Name;
  unsigned Lo = 0;
  unsigned Hi = 0;
  unsigned width() const { return Hi - Lo + 1; }
};

struct RegFileDef {
  std::string Name;
  unsigned Width = 32;
  unsigned Count = 0; ///< 0 for a single register (e.g. CC).
  unsigned BaseId = 0;
};

struct PatternConstraint {
  std::string Field;
  uint32_t Value = 0;
};

struct InstPattern {
  std::string Name;
  uint32_t Mask = 0;
  uint32_t Match = 0;
  std::vector<PatternConstraint> Constraints;
  int SemIndex = -1;
};

/// A fully parsed machine description.
class MachineDesc {
public:
  std::string ArchName;
  unsigned WordSize = 32;
  std::vector<FieldDef> Fields;
  std::vector<RegFileDef> RegFiles;
  int ZeroRegId = -1; ///< Register id that is hard zero, or -1.
  std::vector<InstPattern> Patterns;
  std::vector<Semantics> Sems;

  const FieldDef *field(const std::string &Name) const;

  /// Whether any semantic expression carries a `;` delay mark — i.e. whether
  /// the described architecture has branch delay slots at all.
  bool hasDelayMarks() const {
    for (const Semantics &S : Sems)
      if (S.HasDelayMark)
        return true;
    return false;
  }

  /// Decodes \p Word to a pattern index, or -1 for invalid encodings.
  /// Walks the compiled decode table (falling back to the linear scan when
  /// no table was built, i.e. before finalize()).
  int decode(MachWord Word) const;

  /// The pre-table decoder: bucket on one common field, then scan the
  /// bucket's mask/match pairs linearly. Kept callable so the decode-table
  /// speedup is measurable (bench_machdesc) and cross-checkable (tests).
  int decodeLinear(MachWord Word) const;

  /// The compiled decode table, a flattened tree. Each node starts with a
  /// header word:
  ///
  ///   header >= 0: switch node. header = (fieldLo << 8) | fieldWidth,
  ///     followed by 2^width entries indexed by the extracted field value.
  ///   header < 0: scan node. -header pattern indices follow; each is
  ///     tried in order against its mask/match pair.
  ///
  /// An entry is -1 (invalid), >= 0 (pattern-index leaf, verified against
  /// the pattern's mask/match), or <= -2 (child node at offset -(e + 2)).
  /// Empty when the description has at most one pattern.
  const std::vector<int32_t> &decodeProgram() const { return DecodeProgram; }

  uint32_t fieldValue(const FieldDef &F, MachWord Word) const;

  /// Register-file display names (for the RTL printer).
  std::vector<std::string> regFileNames() const;

  /// Called once after parsing: validates pattern disjointness and builds
  /// the decode index. Returns an error message on inconsistency.
  Expected<bool> finalize();

private:
  void buildDecodeProgram();

  int BucketFieldIndex = -1;
  std::map<uint32_t, std::vector<int>> Buckets;
  std::vector<int32_t> DecodeProgram;
};

/// Parses a description; the returned object is immutable afterwards.
Expected<std::shared_ptr<MachineDesc>>
parseMachineDescription(const std::string &Source);

} // namespace spawn
} // namespace eel

#endif // EEL_SPAWN_MACHINEDESC_H
