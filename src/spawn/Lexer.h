//===- spawn/Lexer.h - Machine-description tokenizer ------------*- C++ -*-===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokenizer for the spawn machine-description language. Comments run from
/// `--` to end of line. Tokens record their source line and whether they are
/// the first token on their line, which the parser uses to find clause
/// boundaries (a top-level keyword at the start of a line begins a new
/// clause, so `val`/`sem` bodies may span lines without terminators).
///
//===----------------------------------------------------------------------===//

#ifndef EEL_SPAWN_LEXER_H
#define EEL_SPAWN_LEXER_H

#include "support/Error.h"

#include <cstdint>
#include <string>
#include <vector>

namespace eel {
namespace spawn {

enum class TokKind : uint8_t {
  Ident,
  Number,
  Punct, ///< One of: := : ? ; , ( ) [ ] { } = && @ + - * & | ^ << ~ !=
  End,
};

struct Token {
  TokKind Kind = TokKind::End;
  std::string Text;
  int64_t Value = 0; ///< Numeric value for Number tokens.
  unsigned Line = 0;
  bool StartOfLine = false;

  bool is(const char *S) const { return Text == S; }
  bool isIdent() const { return Kind == TokKind::Ident; }
  bool isNumber() const { return Kind == TokKind::Number; }
};

/// Tokenizes \p Source; fails on characters outside the language.
Expected<std::vector<Token>> lexDescription(const std::string &Source);

} // namespace spawn
} // namespace eel

#endif // EEL_SPAWN_LEXER_H
