//===- tools/AdhocQpt.h - The ad-hoc qpt baseline ----------------*- C++ -*-===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "old qpt" of Table 1: a block-counting instrumenter written the
/// pre-EEL way — directly against raw SRISC machine words with hard-coded
/// bit manipulation, flat arrays instead of object graphs, ad-hoc leader
/// discovery, a fixed spill-always counting preamble instead of register
/// scavenging, and a whole-data-segment pointer sweep instead of slicing.
/// It is deliberately fast and deliberately crude: exactly the kind of tool
/// whose "machine-specific binary instruction manipulations" bred the bugs
/// §4 describes, and the baseline qpt2's run time is measured against.
///
/// SRISC only, like the original qpt was SPARC-only.
///
//===----------------------------------------------------------------------===//

#ifndef EEL_TOOLS_ADHOCQPT_H
#define EEL_TOOLS_ADHOCQPT_H

#include "support/Error.h"
#include "sxf/Sxf.h"
#include "vm/Machine.h"

#include <vector>

namespace eel {

struct AdhocResult {
  SxfFile Edited;
  /// (original block start, counter address), in block order.
  std::vector<std::pair<Addr, Addr>> Counters;
  unsigned BlocksFound = 0;
};

/// Instruments \p Input (SRISC) with one counter per ad-hoc basic block.
Expected<AdhocResult> adhocInstrument(const SxfFile &Input);

/// Reads the counters back after a run.
std::vector<uint64_t> adhocReadCounts(const AdhocResult &Result,
                                      const VmMemory &Memory);

} // namespace eel

#endif // EEL_TOOLS_ADHOCQPT_H
