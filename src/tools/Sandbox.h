//===- tools/Sandbox.h - Software fault isolation ----------------*- C++ -*-===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Software fault isolation (Wahbe et al., cited as [27]): the paper's
/// first motivating application class. Every store is preceded by a check
/// that its effective address falls in an allowed region (the data/heap
/// region or the stack region, each 2^K-aligned); a store outside both
/// transfers control to a violation routine appended to the executable,
/// which exits with a distinctive status instead of corrupting protected
/// state.
///
//===----------------------------------------------------------------------===//

#ifndef EEL_TOOLS_SANDBOX_H
#define EEL_TOOLS_SANDBOX_H

#include "core/Executable.h"

namespace eel {

class Sandboxer {
public:
  /// Exit status of a sandbox violation.
  static constexpr int ViolationExitCode = 91;

  /// \p RegionBits is K: regions are 2^K bytes, aligned.
  Sandboxer(Executable &Exec, Addr DataRegionBase, Addr StackRegionBase,
            unsigned RegionBits = 20);

  /// Guards every editable store site.
  void instrument();

  unsigned sitesInstrumented() const { return Sites; }

private:
  SnippetPtr makeStoreGuard(const MemOp &M) const;

  Executable &Exec;
  Addr DataHi, StackHi;
  unsigned RegionBits;
  unsigned ViolationRoutine = 0; ///< Added-routine id.
  unsigned Sites = 0;
};

} // namespace eel

#endif // EEL_TOOLS_SANDBOX_H
