//===- tools/Tracer.cpp - Memory-reference tracing ------------------------------===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//

#include "tools/Tracer.h"

using namespace eel;

static std::vector<uint8_t> wordBytes(uint32_t V) {
  return {static_cast<uint8_t>(V), static_cast<uint8_t>(V >> 8),
          static_cast<uint8_t>(V >> 16), static_cast<uint8_t>(V >> 24)};
}

MemoryTracer::MemoryTracer(Executable &Exec, uint32_t CapacityEntries)
    : Exec(Exec), Capacity(CapacityEntries) {
  Buffer = Exec.appendData(Capacity * 4, 8, "trace_buf");
  PtrCell = Exec.appendData(4, 4, "trace_ptr", wordBytes(Buffer));
  EndCell = Exec.appendData(4, 4, "trace_end",
                            wordBytes(Buffer + Capacity * 4));
}

SnippetPtr MemoryTracer::makeTraceSnippet(const MemOp &M) const {
  const TargetInfo &T = Exec.target();
  RegSet Avoid{M.AddrBase};
  if (M.HasIndex)
    Avoid.insert(M.AddrIndex);
  std::vector<unsigned> P = choosePlaceholderRegs(T, 4, Avoid);
  const unsigned P1 = P[0], P2 = P[1], P3 = P[2], P4 = P[3];
  std::vector<MachWord> Body;

  T.emitLoadConst(P1, PtrCell, Body);
  T.emitLoadWord(P2, P1, 0, Body); // next free slot
  if (M.HasIndex)
    T.emitAddReg(P3, M.AddrBase, M.AddrIndex, Body);
  else
    T.emitAddImm(P3, M.AddrBase, M.Offset, Body);
  T.emitLoadConst(P4, Buffer + Capacity * 4, Body);

  std::vector<MachWord> Record;
  T.emitStoreWord(P3, P2, 0, Record);
  T.emitAddImm(P2, P2, 4, Record);
  T.emitStoreWord(P2, P1, 0, Record);

  // Saturate: when the buffer is full, skip recording.
  bool ClobbersCC = T.emitSkipIfEqual(
      P2, P4, static_cast<unsigned>(Record.size()), Body);
  Body.insert(Body.end(), Record.begin(), Record.end());

  auto Snip = std::make_shared<CodeSnippet>(std::move(Body),
                                            RegSet{P1, P2, P3, P4});
  Snip->setClobbersCC(ClobbersCC);
  return Snip;
}

void MemoryTracer::instrument(bool Loads, bool Stores) {
  Exec.readContents();
  for (const auto &R : Exec.routines()) {
    if (R->isData())
      continue;
    Cfg *G = R->controlFlowGraph();
    if (G->unsupported())
      continue;
    for (const auto &Block : G->blocks()) {
      if (!Block->editable())
        continue;
      for (unsigned I = 0; I < Block->size(); ++I) {
        const auto *Mem = dyn_cast<MemoryInst>(Block->insts()[I].Inst);
        if (!Mem)
          continue;
        if ((Mem->isLoad() && !Loads) || (Mem->isStore() && !Stores))
          continue;
        G->addCodeBefore(Block, I, makeTraceSnippet(Mem->memOp()));
        ++Sites;
      }
    }
  }
}

std::vector<Addr> MemoryTracer::readTrace(const VmMemory &Memory) const {
  std::vector<Addr> Trace;
  Addr Ptr = Memory.readWord(PtrCell);
  for (Addr A = Buffer; A < Ptr; A += 4)
    Trace.push_back(Memory.readWord(A));
  return Trace;
}
