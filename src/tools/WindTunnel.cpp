//===- tools/WindTunnel.cpp - Virtual cycle counting ----------------------------===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//

#include "tools/WindTunnel.h"

#include <cassert>

using namespace eel;

CycleCounter::CycleCounter(Executable &Exec, uint32_t Quantum)
    : Exec(Exec), Quantum(Quantum) {
  assert(Quantum <= 4095 && "quantum must fit an ALU immediate");
  // Three consecutive cells: [cycles, next-quantum, expirations]; the
  // first quantum expires at `Quantum` cycles.
  std::vector<uint8_t> Init(12, 0);
  Init[4] = static_cast<uint8_t>(Quantum);
  Init[5] = static_cast<uint8_t>(Quantum >> 8);
  CycleCell = Exec.appendData(12, 8, "wwt_cells", std::move(Init));
  NextQuantumCell = CycleCell + 4;
  ExpirationsCell = CycleCell + 8;
}

SnippetPtr CycleCounter::makeAddSnippet(uint32_t Weight,
                                        bool WithQuantumCheck) const {
  const TargetInfo &T = Exec.target();
  const unsigned P1 = 1, P2 = 2, P3 = 3, P4 = 4;
  std::vector<MachWord> Body;
  T.emitLoadConst(P1, CycleCell, Body);
  T.emitLoadWord(P2, P1, 0, Body);
  T.emitAddImm(P2, P2, static_cast<int32_t>(Weight), Body);
  T.emitStoreWord(P2, P1, 0, Body);
  bool ClobbersCC = false;
  if (WithQuantumCheck) {
    T.emitLoadWord(P3, P1, 4, Body); // next-quantum boundary
    std::vector<MachWord> Expire;
    T.emitLoadWord(P4, P1, 8, Expire);
    T.emitAddImm(P4, P4, 1, Expire);
    T.emitStoreWord(P4, P1, 8, Expire);
    T.emitAddImm(P3, P3, static_cast<int32_t>(Quantum), Expire);
    T.emitStoreWord(P3, P1, 4, Expire);
    ClobbersCC = T.emitSkipIfLess(
        P2, P3, P4, static_cast<unsigned>(Expire.size()), Body);
    Body.insert(Body.end(), Expire.begin(), Expire.end());
  }
  auto Snip = std::make_shared<CodeSnippet>(
      std::move(Body),
      WithQuantumCheck ? RegSet{P1, P2, P3, P4} : RegSet{P1, P2});
  Snip->setClobbersCC(ClobbersCC);
  return Snip;
}

void CycleCounter::instrument() {
  Exec.readContents();
  for (const auto &R : Exec.routines()) {
    if (R->isData())
      continue;
    Cfg *G = R->controlFlowGraph();
    if (G->unsupported())
      continue;
    for (const auto &Block : G->blocks()) {
      if (Block->kind() != BlockKind::Normal || !Block->editable())
        continue;
      uint32_t TailExtra = 0;
      const Instruction *Term = Block->terminator();
      if (Term) {
        switch (Term->delayBehavior()) {
        case DelayBehavior::Always:
          ++TailExtra; // the delay-slot instruction executes on every path
          break;
        case DelayBehavior::AnnulUntaken:
          // Executes only when taken: charge the taken edge instead.
          for (Edge *E : Block->succ()) {
            if (E->kind() != EdgeKind::Taken || !E->editable())
              continue;
            E->addCodeAlong(makeAddSnippet(1, /*WithQuantumCheck=*/false));
            ++EdgeIncrements;
          }
          break;
        default:
          break; // AnnulAlways / no delay slot: nothing extra
        }
      }
      // A system call may terminate the program mid-block (exit), so the
      // weight after each one is charged only once it returns — keeping
      // the virtual cycle count exact to the instruction.
      unsigned SegmentStart = 0;
      unsigned LastSyscall = 0;
      bool FirstSegment = true;
      auto Charge = [&](unsigned Begin, unsigned End, bool Tail) {
        uint32_t Weight = End - Begin + (Tail ? TailExtra : 0);
        if (!Weight)
          return;
        if (FirstSegment) {
          G->addCodeBefore(Block, 0,
                           makeAddSnippet(Weight, Quantum != 0));
          FirstSegment = false;
        } else {
          G->addCodeAfter(Block, LastSyscall,
                          makeAddSnippet(Weight, Quantum != 0));
        }
      };
      for (unsigned I = 0; I < Block->size(); ++I) {
        if (Block->insts()[I].Inst->kind() != InstKind::SystemCall)
          continue;
        Charge(SegmentStart, I + 1, /*Tail=*/false);
        SegmentStart = I + 1;
        LastSyscall = I;
      }
      Charge(SegmentStart, Block->size(), /*Tail=*/true);
      ++Blocks;
    }
  }
}

uint64_t CycleCounter::cycles(const VmMemory &Memory) const {
  return Memory.readWord(CycleCell);
}

uint64_t CycleCounter::quantumExpirations(const VmMemory &Memory) const {
  return Memory.readWord(ExpirationsCell);
}
