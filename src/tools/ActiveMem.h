//===- tools/ActiveMem.h - Active Memory cache simulation --------*- C++ -*-===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Active Memory (Lebeck & Wood, cited as [16] in the paper): efficient
/// memory-system simulation by inserting a quick state test *before* every
/// load and store instead of post-processing an address trace. This is the
/// tool the paper credits with cutting cache-simulation cost to a 2–7x
/// slowdown.
///
/// The inserted snippet simulates a direct-mapped cache inline: compute the
/// effective address, look up the line's tag in a table appended to the
/// executable, bump the access counter, and on a tag mismatch record the
/// miss and update the tag. On SRISC the inline compare clobbers the
/// condition codes, so EEL's liveness-driven CC save/restore engages
/// exactly where needed — the Blizzard-S optimization of §5; on MRISC the
/// compare-and-branch needs no CC handling at all.
///
//===----------------------------------------------------------------------===//

#ifndef EEL_TOOLS_ACTIVEMEM_H
#define EEL_TOOLS_ACTIVEMEM_H

#include "core/Executable.h"
#include "vm/Machine.h"

namespace eel {

struct CacheConfig {
  unsigned LineBytes = 16; ///< Power of two.
  unsigned Lines = 64;     ///< Power of two (direct-mapped).
};

class ActiveMemory {
public:
  ActiveMemory(Executable &Exec, CacheConfig Config = CacheConfig());

  /// Inserts the cache test before every editable load/store site.
  void instrument();

  unsigned sitesInstrumented() const { return Sites; }
  unsigned sitesSkipped() const { return Skipped; }

  /// Simulation results, read from a finished run's memory.
  uint64_t accesses(const VmMemory &Memory) const;
  uint64_t misses(const VmMemory &Memory) const;

private:
  SnippetPtr makeCacheTestSnippet(const MemOp &M) const;

  Executable &Exec;
  CacheConfig Config;
  Addr TagsBase = 0;
  Addr AccessCounter = 0;
  Addr MissCounter = 0;
  unsigned Sites = 0;
  unsigned Skipped = 0;
};

} // namespace eel

#endif // EEL_TOOLS_ACTIVEMEM_H
