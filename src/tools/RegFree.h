//===- tools/RegFree.h - Whole-program register liberation --------*- C++ -*-===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The §3.5 footnote's promised mechanism: "Later releases of EEL will
/// provide a mechanism to free a register" across the entire program, so a
/// tool can keep state (a shadow value, a buffer pointer, a cycle counter)
/// permanently in a register instead of scavenging per site.
///
/// Implementation: in every routine, rewrite each instruction that names
/// the register to use a substitute that the routine never touches,
/// using the instruction-modification editing primitive (replaceInst). A
/// routine with no free substitute, or one that uses the register in an
/// uneditable position (a call/return delay slot), makes liberation fail —
/// reported per routine so tools can pick a different register.
///
//===----------------------------------------------------------------------===//

#ifndef EEL_TOOLS_REGFREE_H
#define EEL_TOOLS_REGFREE_H

#include "core/Executable.h"

#include <string>
#include <vector>

namespace eel {

struct RegFreeResult {
  bool Success = false;
  unsigned RoutinesRewritten = 0;
  unsigned InstructionsRewritten = 0;
  std::vector<std::string> FailedRoutines;
};

/// Frees register \p Reg program-wide (accumulates replaceInst edits; the
/// caller still runs writeEditedExecutable). After editing, only code the
/// tool itself inserts may use \p Reg.
RegFreeResult freeRegisterEverywhere(Executable &Exec, unsigned Reg);

} // namespace eel

#endif // EEL_TOOLS_REGFREE_H
