//===- tools/SxfFuzz.h - Deterministic SXF fault injection -----*- C++ -*-===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic fault-injection harness for the SXF load path. Given a
/// corpus of valid images (typically workload-generated and edited
/// executables), it derives a seeded stream of mutants — random bit flips,
/// byte splats, truncations, extensions, and *targeted* corruptions of
/// individual header/record fields located by walking the format — and
/// checks the loader's contract on every one:
///
///   * an accepted mutant must re-serialize byte-identically (the reader is
///     strict, so deserialize/serialize are exact inverses), and must then
///     survive Executable::openImage()/readContents() without aborting;
///   * a rejected mutant must yield a structured Error carrying a non-
///     Unspecified ErrorCode and a byte offset — never an abort, oversized
///     allocation, or sanitizer finding.
///
/// Everything is driven by support/Rng.h from one seed, so a failing mutant
/// index reproduces exactly (also under ASan/UBSan via -DEEL_SANITIZE).
///
//===----------------------------------------------------------------------===//

#ifndef EEL_TOOLS_SXFFUZZ_H
#define EEL_TOOLS_SXFFUZZ_H

#include "sxf/Sxf.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace eel {

struct FuzzOptions {
  uint64_t Seed = 1;
  /// Mutants generated per corpus image.
  unsigned MutantsPerImage = 1000;
  /// Also push every accepted mutant through Executable::openImage() and
  /// readContents() to shake out aborts past the decoder.
  bool OpenAccepted = true;
  /// Run the structural verifier (analysis/Verifier.h) over every accepted,
  /// analyzable mutant: whatever code bytes a mutant contains, CfgBuild must
  /// either produce internally consistent IR or mark the routine verbatim —
  /// never an inconsistent graph. Requires OpenAccepted.
  bool VerifyAccepted = true;
};

/// One mutant whose outcome violated the loader contract.
struct FuzzFailure {
  size_t ImageIndex = 0;
  unsigned MutantIndex = 0;
  std::string What; ///< Human-readable description of the violation.
};

struct FuzzReport {
  unsigned Total = 0;        ///< Mutants executed.
  unsigned RoundTripped = 0; ///< Accepted and byte-identical.
  unsigned Rejected = 0;     ///< Clean structured error.
  unsigned Verified = 0;     ///< Accepted mutants that passed the verifier.
  /// Rejections by ErrorCode name — the taxonomy coverage histogram.
  std::map<std::string, unsigned> ErrorHistogram;
  /// Contract violations (accepted but not byte-identical, or an error
  /// missing its code/offset). Empty on a clean run.
  std::vector<FuzzFailure> Failures;

  bool clean() const { return Failures.empty(); }
};

/// Runs MutantsPerImage mutants against each image in \p Corpus. Every
/// image must itself load cleanly (checked first; a corpus image the
/// validator rejects is reported as a failure at MutantIndex 0).
FuzzReport runFaultInjection(const std::vector<std::vector<uint8_t>> &Corpus,
                             const FuzzOptions &Options);

} // namespace eel

#endif // EEL_TOOLS_SXFFUZZ_H
