//===- tools/Tracer.h - Memory-reference tracing -----------------*- C++ -*-===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The qpt-style tracing application (§1): record the effective address of
/// every load and store into a trace buffer appended to the executable.
/// The test suite validates the recorded trace word-for-word against the
/// simulator's memory hook on the original program — the strongest form of
/// "the edited program observes exactly what the original did".
///
//===----------------------------------------------------------------------===//

#ifndef EEL_TOOLS_TRACER_H
#define EEL_TOOLS_TRACER_H

#include "core/Executable.h"
#include "vm/Machine.h"

#include <vector>

namespace eel {

class MemoryTracer {
public:
  /// \p CapacityEntries bounds the trace; entries beyond it are dropped
  /// (the write pointer saturates).
  MemoryTracer(Executable &Exec, uint32_t CapacityEntries = 65536);

  /// Traces loads, stores, or both.
  void instrument(bool Loads = true, bool Stores = true);

  unsigned sitesInstrumented() const { return Sites; }

  /// Reads the recorded addresses from a finished run.
  std::vector<Addr> readTrace(const VmMemory &Memory) const;

private:
  SnippetPtr makeTraceSnippet(const MemOp &M) const;

  Executable &Exec;
  uint32_t Capacity;
  Addr PtrCell = 0; ///< Holds the next free slot address.
  Addr EndCell = 0; ///< Holds the buffer-end address (for saturation).
  Addr Buffer = 0;
  unsigned Sites = 0;
};

} // namespace eel

#endif // EEL_TOOLS_TRACER_H
