//===- tools/SxfFuzz.cpp - Deterministic SXF fault injection --------------===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//

#include "tools/SxfFuzz.h"

#include "analysis/Verifier.h"
#include "core/Executable.h"
#include "support/ByteBuffer.h"
#include "support/Rng.h"

using namespace eel;

namespace {

/// A scalar field located inside a serialized SXF image, for targeted
/// corruption. Width is 1, 2, or 4 bytes.
struct FieldSlot {
  size_t Offset = 0;
  unsigned Width = 4;
};

/// Walks a *valid* serialized image and records the offset of every scalar
/// field (magic, arch, reserved, entry, every count, every segment/symbol/
/// reloc field). Mirrors the reader's traversal; stops quietly if the walk
/// runs off the end (the corpus images are valid, so it never does).
std::vector<FieldSlot> mapFields(const std::vector<uint8_t> &Bytes) {
  std::vector<FieldSlot> Slots;
  ByteReader R(Bytes);
  auto Scalar = [&](unsigned Width) -> uint32_t {
    Slots.push_back({R.pos(), Width});
    if (Width == 1)
      return R.readU8();
    if (Width == 2)
      return R.readU16();
    return R.readU32();
  };
  Scalar(4);                       // magic
  Scalar(1);                       // arch
  Scalar(1);                       // reserved flags
  Scalar(2);                       // reserved
  Scalar(4);                       // entry
  uint32_t NumSegments = Scalar(4);
  for (uint32_t I = 0; I < NumSegments && !R.failed(); ++I) {
    Scalar(1);                     // kind
    Scalar(4);                     // vaddr
    Scalar(4);                     // memsize
    uint32_t NumBytes = Scalar(4); // nbytes
    std::vector<uint8_t> Skip(NumBytes);
    R.readBytes(Skip.data(), NumBytes);
  }
  uint32_t NumSymbols = Scalar(4);
  for (uint32_t I = 0; I < NumSymbols && !R.failed(); ++I) {
    Slots.push_back({R.pos(), 4}); // name length
    R.readString();
    Scalar(4);                     // value
    Scalar(4);                     // size
    Scalar(1);                     // kind
    Scalar(1);                     // binding
  }
  uint32_t NumRelocs = Scalar(4);
  for (uint32_t I = 0; I < NumRelocs && !R.failed(); ++I) {
    Scalar(4);                     // site
    Scalar(4);                     // target
    Scalar(1);                     // kind
  }
  return Slots;
}

void storeScalar(std::vector<uint8_t> &Bytes, const FieldSlot &Slot,
                 uint32_t Value) {
  for (unsigned I = 0; I < Slot.Width && Slot.Offset + I < Bytes.size(); ++I)
    Bytes[Slot.Offset + I] = static_cast<uint8_t>(Value >> (8 * I));
}

/// Produces one mutant of \p Original, chosen and parameterized by \p G.
std::vector<uint8_t> mutate(const std::vector<uint8_t> &Original,
                            const std::vector<FieldSlot> &Fields, Rng &G) {
  std::vector<uint8_t> M = Original;
  switch (G.below(7)) {
  case 0: { // random bit flips
    unsigned Flips = 1 + static_cast<unsigned>(G.below(8));
    for (unsigned I = 0; I < Flips && !M.empty(); ++I)
      M[G.below(M.size())] ^= static_cast<uint8_t>(1u << G.below(8));
    break;
  }
  case 1: { // byte splats
    unsigned Splats = 1 + static_cast<unsigned>(G.below(16));
    for (unsigned I = 0; I < Splats && !M.empty(); ++I)
      M[G.below(M.size())] = static_cast<uint8_t>(G.below(256));
    break;
  }
  case 2: // truncation at a random length
    M.resize(G.below(M.size() + 1));
    break;
  case 3: { // extension with random trailing bytes
    unsigned Extra = 1 + static_cast<unsigned>(G.below(64));
    for (unsigned I = 0; I < Extra; ++I)
      M.push_back(static_cast<uint8_t>(G.below(256)));
    break;
  }
  case 5: { // strip the symbol table entirely (drives heuristic inference)
    Expected<SxfFile> File = SxfFile::deserialize(Original);
    if (File.hasError())
      break; // corpus images are valid; identity mutant otherwise
    File.value().Symbols.clear();
    M = File.value().serialize();
    break;
  }
  case 6: { // lying symbols: keep the table, corrupt its claims
    Expected<SxfFile> File = SxfFile::deserialize(Original);
    if (File.hasError())
      break;
    SxfFile &F = File.value();
    if (F.Symbols.empty())
      break;
    unsigned Lies = 1 + static_cast<unsigned>(G.below(F.Symbols.size()));
    for (unsigned I = 0; I < Lies; ++I) {
      SxfSymbol &S = F.Symbols[G.below(F.Symbols.size())];
      switch (G.below(4)) {
      case 0: // point anywhere at all
        S.Value = static_cast<Addr>(G.next());
        break;
      case 1: // slide within a plausible range (mid-routine boundaries)
        S.Value += 4 * (1 + static_cast<Addr>(G.below(64)));
        break;
      case 2: // claim a bogus extent
        S.Size = static_cast<uint32_t>(G.below(0x100000));
        break;
      default: // swap routine/object classification
        S.Kind = S.Kind == SymKind::Routine ? SymKind::Object
                                            : SymKind::Routine;
        break;
      }
    }
    M = F.serialize();
    break;
  }
  default: { // targeted field corruption
    if (Fields.empty())
      break;
    const FieldSlot &Slot = Fields[G.below(Fields.size())];
    static const uint32_t Interesting[] = {
        0xFFFFFFFFu, 0xFFFFFFF0u, 0x80000000u, 0x7FFFFFFFu,
        0u,          1u,          0xFFu,       0x10000u,
    };
    uint32_t Value;
    switch (G.below(4)) {
    case 0:
      Value = Interesting[G.below(sizeof(Interesting) /
                                  sizeof(Interesting[0]))];
      break;
    case 1: { // off-by-one on the original value
      uint32_t Orig = 0;
      for (unsigned B = 0; B < Slot.Width; ++B)
        Orig |= static_cast<uint32_t>(M[Slot.Offset + B]) << (8 * B);
      Value = Orig + (G.chance(50) ? 1u : 0xFFFFFFFFu);
      break;
    }
    case 2: // sign/top-bit flip
      Value = 0x80000000u;
      break;
    default:
      Value = static_cast<uint32_t>(G.next());
      break;
    }
    storeScalar(M, Slot, Value);
    break;
  }
  }
  return M;
}

/// Checks the loader contract on one input. Returns an empty string when
/// the contract holds, else a description of the violation.
std::string checkOne(const std::vector<uint8_t> &Input,
                     const FuzzOptions &Options,
                     std::map<std::string, unsigned> &Histogram,
                     bool &WasAccepted, unsigned &Verified) {
  Expected<SxfFile> File = SxfFile::deserialize(Input);
  if (File.hasError()) {
    WasAccepted = false;
    const Error &E = File.error();
    if (E.code() == ErrorCode::Unspecified)
      return "rejection without an ErrorCode: " + E.describe();
    if (!E.hasOffset())
      return "rejection without a byte offset: " + E.describe();
    ++Histogram[errorCodeName(E.code())];
    return std::string();
  }
  WasAccepted = true;
  // Accepted: the strict reader guarantees serialize() inverts exactly.
  std::vector<uint8_t> Back = File.value().serialize();
  if (Back != Input)
    return "accepted input did not round-trip byte-identically (" +
           std::to_string(Input.size()) + " bytes in, " +
           std::to_string(Back.size()) + " out)";
  if (Options.OpenAccepted) {
    // Everything past the decoder must also degrade cleanly. Serial mode
    // keeps the run deterministic and cheap.
    Executable::Options Opts;
    Opts.Threads = 1;
    Expected<std::unique_ptr<Executable>> Exec =
        Executable::openImage(std::move(File.value()), Opts);
    if (Exec.hasValue()) {
      Expected<bool> Read = Exec.value()->readContents();
      if (Read.hasValue() && Options.VerifyAccepted) {
        // The verify gate: whatever bytes a mutant decodes to, the analysis
        // must yield IR the structural passes accept — CfgBuild either
        // builds a consistent graph or poisons the routine into verbatim
        // mode, and an inconsistent graph here is a bug worth a failure.
        VerifyOptions VOpts;
        VOpts.CheckScavenge = false;
        VOpts.CheckLayout = false;
        VOpts.CheckTranslation = false;
        VOpts.Threads = 1;
        DiagnosticReport Lint = verifyIR(*Exec.value(), VOpts);
        if (Lint.hasErrors())
          return "accepted mutant failed structural verification: " +
                 Lint.renderText();
        ++Verified;
      }
    }
  }
  return std::string();
}

} // namespace

FuzzReport eel::runFaultInjection(
    const std::vector<std::vector<uint8_t>> &Corpus,
    const FuzzOptions &Options) {
  FuzzReport Report;
  Rng G(Options.Seed);
  for (size_t ImageIndex = 0; ImageIndex < Corpus.size(); ++ImageIndex) {
    const std::vector<uint8_t> &Original = Corpus[ImageIndex];
    // The corpus itself must load cleanly — a validator strict enough to
    // reject real images would make the whole run vacuous.
    bool Accepted = false;
    std::string Violation = checkOne(Original, Options, Report.ErrorHistogram,
                                     Accepted, Report.Verified);
    if (!Violation.empty() || !Accepted) {
      Report.Failures.push_back(
          {ImageIndex, 0,
           "corpus image rejected or invalid: " +
               (Violation.empty() ? std::string("loader refused valid image")
                                  : Violation)});
      continue;
    }
    std::vector<FieldSlot> Fields = mapFields(Original);
    for (unsigned MutantIndex = 0; MutantIndex < Options.MutantsPerImage;
         ++MutantIndex) {
      std::vector<uint8_t> Mutant = mutate(Original, Fields, G);
      ++Report.Total;
      Violation = checkOne(Mutant, Options, Report.ErrorHistogram, Accepted,
                           Report.Verified);
      if (!Violation.empty()) {
        Report.Failures.push_back({ImageIndex, MutantIndex, Violation});
        continue;
      }
      if (Accepted)
        ++Report.RoundTripped;
      else
        ++Report.Rejected;
    }
  }
  return Report;
}
