//===- tools/Qpt.cpp - qpt2: EEL-based profiler --------------------------------===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//

#include "tools/Qpt.h"

using namespace eel;

SnippetPtr eel::makeCounterIncrementSnippet(const TargetInfo &Target,
                                            Addr CounterAddr) {
  std::vector<MachWord> Body;
  const unsigned RegA = 1, RegB = 2; // placeholders, rebound per site
  Target.emitLoadConst(RegA, CounterAddr, Body);
  Target.emitLoadWord(RegB, RegA, 0, Body);
  Target.emitAddImm(RegB, RegB, 1, Body);
  Target.emitStoreWord(RegB, RegA, 0, Body);
  return std::make_shared<CodeSnippet>(std::move(Body), RegSet{RegA, RegB});
}

Qpt2Profiler::Qpt2Profiler(Executable &Exec)
    : Qpt2Profiler(Exec, Options()) {}

Qpt2Profiler::Qpt2Profiler(Executable &Exec, Options Opts)
    : Exec(Exec), Opts(Opts) {}

void Qpt2Profiler::instrument() {
  Exec.readContents();
  const TargetInfo &Target = Exec.target();

  // The Figure 1 structure, including iterating routines discovered during
  // analysis (hidden routines are already in the routine list here).
  for (const auto &R : Exec.routines()) {
    if (R->isData()) {
      ++RoutinesSkipped;
      continue;
    }
    Cfg *G = R->controlFlowGraph();
    if (G->unsupported()) {
      ++RoutinesSkipped;
      continue;
    }
    ++RoutinesInstrumented;

    auto NewCounter = [&](CounterInfo Info) {
      Info.Routine = R->name();
      Info.CounterAddr = Exec.appendData(
          4, 4, "qpt_ctr" + std::to_string(Counters.size()));
      Counters.push_back(Info);
      return Counters.back().CounterAddr;
    };

    for (const auto &Block : G->blocks()) {
      if (Block->kind() == BlockKind::Normal && Opts.CountBlocks &&
          Block->editable()) {
        CounterInfo Info;
        Info.K = CounterInfo::Kind::Block;
        Info.BlockAnchor = Block->anchor();
        Addr Counter = NewCounter(Info);
        G->addCodeBefore(Block, 0,
                         makeCounterIncrementSnippet(Target, Counter));
      }
      if (!Opts.CountEdges)
        continue;
      // Edge profiling: blocks with more than one successor (Figure 1).
      if (Block->succ().size() <= 1)
        continue;
      for (Edge *E : Block->succ()) {
        if (!E->editable())
          continue;
        CounterInfo Info;
        Info.K = CounterInfo::Kind::Edge;
        Info.BlockAnchor = Block->anchor();
        if (!Block->insts().empty())
          Info.TermAddr = Block->insts().back().OrigAddr;
        Info.Edge = E->kind();
        Info.DestAnchor = E->dst()->anchor();
        Addr Counter = NewCounter(Info);
        E->addCodeAlong(makeCounterIncrementSnippet(Target, Counter));
      }
    }
  }
}

std::vector<uint64_t> Qpt2Profiler::readCounts(const VmMemory &Memory) const {
  std::vector<uint64_t> Counts;
  Counts.reserve(Counters.size());
  for (const CounterInfo &Info : Counters)
    Counts.push_back(Memory.readWord(Info.CounterAddr));
  return Counts;
}
