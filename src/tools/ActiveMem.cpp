//===- tools/ActiveMem.cpp - Active Memory cache simulation --------------------===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//

#include "tools/ActiveMem.h"

#include <cassert>

using namespace eel;

static unsigned log2Exact(unsigned V) {
  assert(V && (V & (V - 1)) == 0 && "must be a power of two");
  unsigned L = 0;
  while ((1u << L) != V)
    ++L;
  return L;
}

ActiveMemory::ActiveMemory(Executable &Exec, CacheConfig Config)
    : Exec(Exec), Config(Config) {
  // Tag table initialized to an impossible tag (all ones).
  std::vector<uint8_t> Init(Config.Lines * 4, 0xFF);
  TagsBase = Exec.appendData(Config.Lines * 4, 8, "am_tags", std::move(Init));
  AccessCounter = Exec.appendData(4, 4, "am_accesses");
  MissCounter = Exec.appendData(4, 4, "am_misses");
}

SnippetPtr ActiveMemory::makeCacheTestSnippet(const MemOp &M) const {
  const TargetInfo &T = Exec.target();
  // Placeholders: p1 = line/tag, p2 = index/scratch, p3 = table slot
  // address, p4 = loaded tag, p5 = counter scratch. Their numbers must not
  // collide with the registers the site's address computation names.
  RegSet Avoid{M.AddrBase};
  if (M.HasIndex)
    Avoid.insert(M.AddrIndex);
  std::vector<unsigned> P = choosePlaceholderRegs(T, 5, Avoid);
  const unsigned P1 = P[0], P2 = P[1], P3 = P[2], P4 = P[3], P5 = P[4];
  std::vector<MachWord> Body;

  // Effective address -> p1.
  if (M.HasIndex)
    T.emitAddReg(P1, M.AddrBase, M.AddrIndex, Body);
  else
    T.emitAddImm(P1, M.AddrBase, M.Offset, Body);
  // Line number (tag) and set index.
  T.emitAluImm(DataOpKind::Srl, P1, P1,
               static_cast<int32_t>(log2Exact(Config.LineBytes)), Body);
  T.emitAluImm(DataOpKind::And, P2, P1,
               static_cast<int32_t>(Config.Lines - 1), Body);
  T.emitAluImm(DataOpKind::Sll, P2, P2, 2, Body);
  // Slot address = tags + index*4.
  T.emitLoadConst(P3, TagsBase, Body);
  T.emitAddReg(P3, P3, P2, Body);
  T.emitLoadWord(P4, P3, 0, Body);
  // Access counter++ (P4 holds the cached tag and P3 the slot address for
  // the miss path, so counter arithmetic gets its own placeholder).
  T.emitLoadConst(P2, AccessCounter, Body);
  T.emitLoadWord(P5, P2, 0, Body);
  T.emitAddImm(P5, P5, 1, Body);
  T.emitStoreWord(P5, P2, 0, Body);

  // Miss path: executed unless tag matches.
  std::vector<MachWord> MissCode;
  T.emitStoreWord(P1, P3, 0, MissCode); // update the tag
  T.emitLoadConst(P2, MissCounter, MissCode);
  T.emitLoadWord(P5, P2, 0, MissCode);
  T.emitAddImm(P5, P5, 1, MissCode);
  T.emitStoreWord(P5, P2, 0, MissCode);

  bool ClobbersCC = T.emitSkipIfEqual(
      P4, P1, static_cast<unsigned>(MissCode.size()), Body);
  Body.insert(Body.end(), MissCode.begin(), MissCode.end());

  auto Snip = std::make_shared<CodeSnippet>(std::move(Body),
                                            RegSet{P1, P2, P3, P4, P5});
  Snip->setClobbersCC(ClobbersCC);
  return Snip;
}

void ActiveMemory::instrument() {
  Exec.readContents();
  for (const auto &R : Exec.routines()) {
    if (R->isData())
      continue;
    Cfg *G = R->controlFlowGraph();
    if (G->unsupported())
      continue;
    for (const auto &Block : G->blocks()) {
      if (!Block->editable())
        continue;
      for (unsigned I = 0; I < Block->size(); ++I) {
        const Instruction *Inst = Block->insts()[I].Inst;
        const auto *Mem = dyn_cast<MemoryInst>(Inst);
        if (!Mem) {
          continue;
        }
        // A memory reference whose base or index register is one the
        // snippet cannot read transparently does not exist on our targets;
        // instrument unconditionally.
        G->addCodeBefore(Block, I, makeCacheTestSnippet(Mem->memOp()));
        ++Sites;
      }
    }
  }
}

uint64_t ActiveMemory::accesses(const VmMemory &Memory) const {
  return Memory.readWord(AccessCounter);
}

uint64_t ActiveMemory::misses(const VmMemory &Memory) const {
  return Memory.readWord(MissCounter);
}
