//===- tools/RegFree.cpp - Whole-program register liberation -------------------===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//

#include "tools/RegFree.h"

using namespace eel;

RegFreeResult eel::freeRegisterEverywhere(Executable &Exec, unsigned Reg) {
  RegFreeResult Result;
  Exec.readContents();
  const TargetInfo &Target = Exec.target();
  const TargetConventions &Conv = Target.conventions();
  if (Reg == 0 || Conv.Reserved.contains(Reg) || Reg == Conv.LinkReg) {
    Result.FailedRoutines.push_back("<register is reserved or the link>");
    return Result;
  }

  for (const auto &R : Exec.routines()) {
    if (R->isData())
      continue;
    Cfg *G = R->controlFlowGraph();
    if (G->unsupported()) {
      // Verbatim routines cannot be rewritten; they must not use Reg.
      bool Uses = false;
      for (Addr A = R->startAddr(); A + 4 <= R->endAddr(); A += 4) {
        std::optional<MachWord> W = Exec.fetchWord(A);
        if (!W)
          break;
        const Instruction *I = Exec.pool().getAt(A, *W);
        if (I->reads().contains(Reg) || I->writes().contains(Reg))
          Uses = true;
      }
      if (Uses)
        Result.FailedRoutines.push_back(R->name());
      continue;
    }

    // Registers this routine touches anywhere (including uneditable
    // positions) — the substitute must be entirely untouched.
    RegSet Touched;
    bool UneditableUse = false;
    for (const auto &Block : G->blocks()) {
      for (const CfgInst &CI : Block->insts()) {
        Touched |= CI.Inst->reads();
        Touched |= CI.Inst->writes();
        if (!Block->editable() && (CI.Inst->reads().contains(Reg) ||
                                   CI.Inst->writes().contains(Reg)))
          UneditableUse = true;
      }
    }
    if (UneditableUse) {
      Result.FailedRoutines.push_back(R->name());
      continue;
    }
    if (!Touched.contains(Reg))
      continue; // nothing to do here

    // Pick a substitute of the same save class that the routine never
    // touches (so no liveness reasoning is needed).
    unsigned Substitute = 0;
    bool WantCallerSaved = Conv.CallerSaved.contains(Reg);
    for (unsigned Candidate = 1; Candidate < Target.numRegisters();
         ++Candidate) {
      if (Touched.contains(Candidate) || Conv.Reserved.contains(Candidate) ||
          Candidate == Conv.LinkReg)
        continue;
      if (Conv.CallerSaved.contains(Candidate) != WantCallerSaved)
        continue;
      Substitute = Candidate;
      break;
    }
    if (!Substitute) {
      Result.FailedRoutines.push_back(R->name());
      continue;
    }

    auto Map = [Reg, Substitute](unsigned R2) {
      return R2 == Reg ? Substitute : R2;
    };
    // Collect every replacement first; apply only if the whole routine can
    // be rewritten (edits cannot be rolled back once accumulated).
    struct Planned {
      BasicBlock *Block;
      unsigned Index;
      MachWord NewWord;
    };
    std::vector<Planned> Plan;
    bool Failed = false;
    for (const auto &Block : G->blocks()) {
      if (!Block->editable())
        continue;
      for (unsigned I = 0; I < Block->size(); ++I) {
        const Instruction *Inst = Block->insts()[I].Inst;
        if (!Inst->reads().contains(Reg) && !Inst->writes().contains(Reg))
          continue;
        switch (Inst->kind()) {
        case InstKind::Branch:
        case InstKind::Jump:
          break; // direct transfers: register fields rename cleanly
        case InstKind::IndirectJump:
        case InstKind::IndirectCall:
        case InstKind::Return:
        case InstKind::Call:
          // Transfers whose addressing or linkage involves Reg cannot be
          // renamed by replaceInst; the routine fails liberation.
          Failed = true;
          break;
        default:
          break;
        }
        if (Failed)
          break;
        std::optional<MachWord> New =
            Target.rewriteRegisters(Inst->word(), Map);
        if (!New) {
          Failed = true;
          break;
        }
        Plan.push_back({Block, I, *New});
      }
      if (Failed)
        break;
    }
    if (Failed) {
      Result.FailedRoutines.push_back(R->name());
      continue;
    }
    for (const Planned &P : Plan)
      G->replaceInst(P.Block, P.Index, P.NewWord);
    if (!Plan.empty()) {
      ++Result.RoutinesRewritten;
      Result.InstructionsRewritten += static_cast<unsigned>(Plan.size());
    }
  }
  Result.Success = Result.FailedRoutines.empty();
  return Result;
}
