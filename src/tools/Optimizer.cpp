//===- tools/Optimizer.cpp - Liveness-driven dead-code elimination -------------===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//

#include "tools/Optimizer.h"

#include "core/Liveness.h"

using namespace eel;

unsigned DeadCodeEliminator::run() {
  Exec.readContents();
  for (const auto &R : Exec.routines()) {
    if (R->isData())
      continue;
    Cfg *G = R->controlFlowGraph();
    if (G->unsupported())
      continue;
    Liveness Live(*G);
    for (const auto &Block : G->blocks()) {
      if (Block->kind() != BlockKind::Normal || !Block->editable())
        continue;
      // Backward scan with a running live set so that a chain of dead
      // computations dies in one pass.
      RegSet LiveNow = Live.liveOut(Block);
      // Recompute the block's own backward flow, marking deletions.
      for (size_t I = Block->size(); I-- > 0;) {
        const Instruction *Inst = Block->insts()[I].Inst;
        bool Deletable = Inst->kind() == InstKind::Computation &&
                         !Inst->writes().empty() &&
                         (Inst->writes() & LiveNow).empty();
        if (Deletable) {
          G->deleteInst(Block, static_cast<unsigned>(I));
          ++Removed;
          // A deleted instruction contributes neither uses nor defs.
          continue;
        }
        LiveNow.remove(Inst->writes());
        LiveNow |= Inst->reads();
      }
    }
  }
  return Removed;
}
