//===- tools/Optimizer.h - Liveness-driven dead-code elimination --*- C++ -*-===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The third use of executable editing the paper opens with: "executable
/// editing has also been used for global register allocation and program
/// optimization ... editing can manipulate an entire program, which permits
/// it to perform interprocedural analysis rather than stopping at procedure
/// boundaries."
///
/// This tool is a whole-program dead-computation eliminator built on EEL's
/// liveness analysis: a pure computation whose results (registers and, when
/// written, condition codes) are all dead afterwards is deleted. Because
/// liveness is interprocedurally conservative at routine boundaries
/// (caller-saved registers die at calls and returns), the transformation is
/// sound on whole programs — exactly the post-link-time setting the paper
/// contrasts with per-file compilers.
///
//===----------------------------------------------------------------------===//

#ifndef EEL_TOOLS_OPTIMIZER_H
#define EEL_TOOLS_OPTIMIZER_H

#include "core/Executable.h"

namespace eel {

class DeadCodeEliminator {
public:
  explicit DeadCodeEliminator(Executable &Exec) : Exec(Exec) {}

  /// Marks dead computations for deletion across every editable routine.
  /// Returns the number of instructions removed.
  unsigned run();

  unsigned removed() const { return Removed; }

private:
  Executable &Exec;
  unsigned Removed = 0;
};

} // namespace eel

#endif // EEL_TOOLS_OPTIMIZER_H
