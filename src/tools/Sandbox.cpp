//===- tools/Sandbox.cpp - Software fault isolation ----------------------------===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//

#include "tools/Sandbox.h"

#include "asmkit/TargetAsm.h"

using namespace eel;

Sandboxer::Sandboxer(Executable &Exec, Addr DataRegionBase,
                     Addr StackRegionBase, unsigned RegionBits)
    : Exec(Exec), DataHi(DataRegionBase >> RegionBits),
      StackHi(StackRegionBase >> RegionBits), RegionBits(RegionBits) {
  const char *Asm = nullptr;
  switch (Exec.target().arch()) {
  case TargetArch::Srisc:
    Asm = ".text\n__sfi_violation:\n  mov 91, %o0\n  sys 0\n";
    break;
  case TargetArch::Mrisc:
    Asm = ".text\n__sfi_violation:\n  li $a0, 91\n  li $v0, 0\n  syscall\n";
    break;
  case TargetArch::Arisc:
    Asm = ".text\n__sfi_violation:\n  li $a0, 91\n  sys 0\n";
    break;
  }
  ViolationRoutine = Exec.addRoutineAsm("__sfi_violation", Asm);
}

SnippetPtr Sandboxer::makeStoreGuard(const MemOp &M) const {
  const TargetInfo &T = Exec.target();
  RegSet Avoid{M.AddrBase};
  if (M.HasIndex)
    Avoid.insert(M.AddrIndex);
  std::vector<unsigned> P = choosePlaceholderRegs(T, 3, Avoid);
  const unsigned P1 = P[0], P2 = P[1], P3 = P[2];
  std::vector<MachWord> Body;

  // Region number of the effective address -> p1.
  if (M.HasIndex)
    T.emitAddReg(P1, M.AddrBase, M.AddrIndex, Body);
  else
    T.emitAddImm(P1, M.AddrBase, M.Offset, Body);
  T.emitAluImm(DataOpKind::Srl, P1, P1, static_cast<int32_t>(RegionBits),
               Body);

  // Violation tail: load the violation routine's address (a fixed-length
  // two-word materialization patched by the callback) and jump.
  std::vector<MachWord> Violation;
  T.emitLoadConst(P3, 0x7FFFF123u, Violation); // forces the long form
  assert(Violation.size() == 2 && "expected a hi/lo pair");
  T.emitIndirectJump(P3, Violation);

  // Stack-region check: equal -> skip the violation.
  std::vector<MachWord> StackCheck;
  T.emitLoadConst(P2, StackHi, StackCheck);
  bool Clobbers2 = T.emitSkipIfEqual(
      P1, P2, static_cast<unsigned>(Violation.size()), StackCheck);

  // Data-region check: equal -> skip stack check and violation.
  std::vector<MachWord> DataCheck;
  T.emitLoadConst(P2, DataHi, DataCheck);
  bool Clobbers1 = T.emitSkipIfEqual(
      P1, P2,
      static_cast<unsigned>(StackCheck.size() + Violation.size()),
      DataCheck);

  unsigned ViolationStart =
      static_cast<unsigned>(Body.size() + DataCheck.size() +
                            StackCheck.size());
  Body.insert(Body.end(), DataCheck.begin(), DataCheck.end());
  Body.insert(Body.end(), StackCheck.begin(), StackCheck.end());
  Body.insert(Body.end(), Violation.begin(), Violation.end());

  auto Snip = std::make_shared<CodeSnippet>(std::move(Body),
                                            RegSet{P1, P2, P3});
  Snip->setClobbersCC(Clobbers1 || Clobbers2);

  // Patch the violation routine's real address once everything is placed.
  Executable *ExecPtr = &Exec;
  unsigned RoutineId = ViolationRoutine;
  Snip->setCallback([ExecPtr, RoutineId, ViolationStart](
                        SnippetInstance &Inst) {
    Addr Target = ExecPtr->editedAddrOfAdded(RoutineId);
    const asmkit::InstParser &Parser =
        asmkit::instParserFor(ExecPtr->target().arch());
    unsigned HiIndex = Inst.BodyBegin + ViolationStart;
    Inst.Words[HiIndex] = Parser.applyImmHi(Inst.Words[HiIndex], Target);
    Inst.Words[HiIndex + 1] =
        Parser.applyImmLo(Inst.Words[HiIndex + 1], Target);
  });
  return Snip;
}

void Sandboxer::instrument() {
  Exec.readContents();
  for (const auto &R : Exec.routines()) {
    if (R->isData())
      continue;
    Cfg *G = R->controlFlowGraph();
    if (G->unsupported())
      continue;
    for (const auto &Block : G->blocks()) {
      if (!Block->editable())
        continue;
      for (unsigned I = 0; I < Block->size(); ++I) {
        const auto *Mem = dyn_cast<MemoryInst>(Block->insts()[I].Inst);
        if (!Mem || !Mem->isStore())
          continue;
        G->addCodeBefore(Block, I, makeStoreGuard(Mem->memOp()));
        ++Sites;
      }
    }
  }
}
