//===- tools/WindTunnel.h - Virtual cycle counting ---------------*- C++ -*-===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Wisconsin Wind Tunnel use case from §1: the underlying hardware
/// "does not provide a cycle counter or an efficient mechanism for
/// interleaving computation and simulation. The Wind Tunnel system edits
/// programs so that they update a cycle timer and return control at timer
/// expirations."
///
/// This tool maintains an exact virtual instruction-cycle counter in edited
/// code: every basic block adds its weight (instruction count, with the
/// delay-slot instruction attributed to the path on which it actually
/// executes — +1 on both paths of a non-annulled branch, +1 on only the
/// taken edge of an annulled one), and every block boundary checks whether
/// the current quantum expired, recording the expiration ("returning
/// control to the simulator" in WWT terms).
///
/// Exactness is testable: the final virtual cycle count must equal the
/// simulator's retired-instruction count for the original program, and the
/// number of quantum expirations must equal floor(cycles / quantum).
///
//===----------------------------------------------------------------------===//

#ifndef EEL_TOOLS_WINDTUNNEL_H
#define EEL_TOOLS_WINDTUNNEL_H

#include "core/Executable.h"
#include "vm/Machine.h"

namespace eel {

class CycleCounter {
public:
  /// \p Quantum = 0 disables expiration checks (pure cycle counting).
  CycleCounter(Executable &Exec, uint32_t Quantum = 0);

  void instrument();

  uint64_t cycles(const VmMemory &Memory) const;
  uint64_t quantumExpirations(const VmMemory &Memory) const;
  unsigned blocksInstrumented() const { return Blocks; }
  unsigned edgeIncrements() const { return EdgeIncrements; }

private:
  SnippetPtr makeAddSnippet(uint32_t Weight, bool WithQuantumCheck) const;

  Executable &Exec;
  uint32_t Quantum;
  Addr CycleCell = 0;
  Addr NextQuantumCell = 0;
  Addr ExpirationsCell = 0;
  unsigned Blocks = 0;
  unsigned EdgeIncrements = 0;
};

} // namespace eel

#endif // EEL_TOOLS_WINDTUNNEL_H
