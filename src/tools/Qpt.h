//===- tools/Qpt.h - qpt2: EEL-based profiler --------------------*- C++ -*-===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// qpt2 — the EEL-based block and edge profiler from §5 of the paper,
/// structured exactly like Figure 1: walk every routine's CFG, add a
/// counter-increment snippet along each outgoing edge of blocks with more
/// than one successor (edge profiling), optionally one per basic block
/// (block profiling), produce the edited routine, and write the edited
/// executable. Counters live in data space appended to the program; after
/// a run they are read straight out of the simulator's memory.
///
/// The analysis-heavy work a tool triggers — CFG construction, liveness,
/// slicing — fans out across routines per Executable::Options::Threads:
/// readContents() pre-computes it in parallel, so the serial instrument()
/// walk here finds every graph cached. Tools need no changes to benefit.
///
//===----------------------------------------------------------------------===//

#ifndef EEL_TOOLS_QPT_H
#define EEL_TOOLS_QPT_H

#include "core/Executable.h"
#include "vm/Machine.h"

#include <string>
#include <vector>

namespace eel {

/// Builds the Figure 5 snippet: increment a 32-bit counter at
/// \p CounterAddr, using two scavenged registers.
SnippetPtr makeCounterIncrementSnippet(const TargetInfo &Target,
                                       Addr CounterAddr);

class Qpt2Profiler {
public:
  struct Options {
    bool CountBlocks = true;
    bool CountEdges = true;
  };

  /// What one counter measures.
  struct CounterInfo {
    enum class Kind : uint8_t { Block, Edge };
    Kind K = Kind::Block;
    std::string Routine;
    Addr BlockAnchor = 0; ///< Source block's first-instruction address.
    Addr TermAddr = 0;    ///< Source block's terminator address (edges).
    EdgeKind Edge = EdgeKind::Fallthrough;
    Addr DestAnchor = 0;  ///< Edge destination block anchor (edges only).
    Addr CounterAddr = 0;
  };

  explicit Qpt2Profiler(Executable &Exec);
  Qpt2Profiler(Executable &Exec, Options Opts);

  /// Adds instrumentation to every editable routine. Call once, before
  /// Executable::writeEditedExecutable().
  void instrument();

  const std::vector<CounterInfo> &counters() const { return Counters; }

  /// Reads every counter out of a finished run's memory.
  std::vector<uint64_t> readCounts(const VmMemory &Memory) const;

  unsigned routinesInstrumented() const { return RoutinesInstrumented; }
  unsigned routinesSkipped() const { return RoutinesSkipped; }

private:
  Executable &Exec;
  Options Opts;
  std::vector<CounterInfo> Counters;
  unsigned RoutinesInstrumented = 0;
  unsigned RoutinesSkipped = 0;
};

} // namespace eel

#endif // EEL_TOOLS_QPT_H
