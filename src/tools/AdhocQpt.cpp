//===- tools/AdhocQpt.cpp - The ad-hoc qpt baseline ---------------------------===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
//
// Everything here intentionally bypasses the EEL libraries: raw field
// extraction, flat vectors, one linear pass each for discovery, placement,
// and patching. Registers %g1/%g2 are spilled to the stack red zone around
// every counting preamble instead of being scavenged.
//
//===----------------------------------------------------------------------===//

#include "tools/AdhocQpt.h"

#include "isa/SriscEncoding.h"

#include <algorithm>
#include <map>

using namespace eel;

namespace {

// Hand-rolled SRISC field macros (the pre-EEL style).
inline uint32_t op(MachWord W) { return W >> 30; }
inline uint32_t op2(MachWord W) { return (W >> 22) & 7; }
inline uint32_t op3(MachWord W) { return (W >> 19) & 63; }
inline int32_t disp22(MachWord W) {
  return (static_cast<int32_t>(W << 10)) >> 10;
}
inline int32_t disp30(MachWord W) {
  return (static_cast<int32_t>(W << 2)) >> 2;
}
inline bool isBranch(MachWord W) { return op(W) == 0 && op2(W) == 2; }
inline bool isCall(MachWord W) { return op(W) == 1; }
inline bool isJmpl(MachWord W) { return op(W) == 2 && op3(W) == 0x38; }

// Fixed counting preamble: 8 words, spilling g1/g2 to the red zone —
// spill-always instead of scavenging, the old-qpt way.
//   st %g1,[%sp-64]; st %g2,[%sp-68]
//   sethi %hi(ctr),%g1; ld [%g1+%lo(ctr)],%g2; add %g2,1,%g2;
//   st %g2,[%g1+%lo(ctr)]
//   ld [%sp-64],%g1; ld [%sp-68],%g2
constexpr unsigned PreambleWords = 8;

void emitPreamble(std::vector<MachWord> &Out, Addr Counter) {
  using namespace srisc;
  int32_t Lo = static_cast<int32_t>(Counter & 0x3FF);
  Out.push_back(encodeMemImm(Op3St, 1, RegSP, -64));
  Out.push_back(encodeMemImm(Op3St, 2, RegSP, -68));
  Out.push_back(encodeSethi(1, Counter >> 10));
  Out.push_back(encodeMemImm(Op3Ld, 2, 1, Lo));
  Out.push_back(encodeArithImm(Op3Add, 2, 2, 1));
  Out.push_back(encodeMemImm(Op3St, 2, 1, Lo));
  Out.push_back(encodeMemImm(Op3Ld, 1, RegSP, -64));
  Out.push_back(encodeMemImm(Op3Ld, 2, RegSP, -68));
}

} // namespace

Expected<AdhocResult> eel::adhocInstrument(const SxfFile &Input) {
  if (Input.Arch != TargetArch::Srisc)
    return Error("adhoc qpt only supports SRISC (as qpt was SPARC-only)");
  const SxfSegment *Text = Input.segment(SegKind::Text);
  if (!Text)
    return Error("no text segment");
  const Addr TB = Text->VAddr;
  const unsigned NumWords = static_cast<unsigned>(Text->Bytes.size() / 4);
  const Addr TE = TB + NumWords * 4;

  auto WordAt = [&](unsigned Index) { return *Input.readWord(TB + Index * 4); };

  // --- Pass 1: leaders -------------------------------------------------------
  std::vector<char> Leader(NumWords, 0);
  auto MarkLeader = [&](Addr A) {
    if (A >= TB && A < TE && (A & 3) == 0)
      Leader[(A - TB) / 4] = 1;
  };
  MarkLeader(TB);
  MarkLeader(Input.Entry);
  for (const SxfSymbol &Sym : Input.Symbols)
    if (Sym.Kind == SymKind::Routine)
      MarkLeader(Sym.Value);
  for (unsigned I = 0; I < NumWords; ++I) {
    MachWord W = WordAt(I);
    Addr A = TB + I * 4;
    if (isBranch(W)) {
      MarkLeader(A + static_cast<Addr>(disp22(W) * 4));
      MarkLeader(A + 8);
    } else if (isCall(W)) {
      MarkLeader(A + static_cast<Addr>(disp30(W) * 4));
      MarkLeader(A + 8);
    } else if (isJmpl(W)) {
      MarkLeader(A + 8);
    }
  }
  // Data words that look like text addresses are treated as potential
  // indirect targets (dispatch tables, function pointers) — the crude
  // whole-segment sweep old qpt used.
  for (const SxfSegment &Seg : Input.Segments) {
    if (Seg.Kind != SegKind::Data)
      continue;
    for (size_t Off = 0; Off + 4 <= Seg.Bytes.size(); Off += 4)
      MarkLeader(*Input.readWord(Seg.VAddr + static_cast<Addr>(Off)));
  }

  // --- Pass 2: block table and placement -------------------------------------
  AdhocResult Result;
  std::vector<unsigned> BlockStart; // word indices
  for (unsigned I = 0; I < NumWords; ++I)
    if (Leader[I])
      BlockStart.push_back(I);
  Result.BlocksFound = static_cast<unsigned>(BlockStart.size());

  // New word index of each original block (each block grows by the
  // preamble).
  std::vector<unsigned> NewStart(BlockStart.size());
  unsigned Cursor = 0;
  for (size_t B = 0; B < BlockStart.size(); ++B) {
    NewStart[B] = Cursor;
    unsigned End = B + 1 < BlockStart.size()
                       ? BlockStart[B + 1]
                       : NumWords;
    Cursor += PreambleWords + (End - BlockStart[B]);
  }
  // Map any original word index to its new index. A block's start maps to
  // its counting preamble so that every entry into the block — jump, call,
  // or fallthrough — is counted.
  auto NewIndexOf = [&](unsigned OrigIndex) -> unsigned {
    size_t B = std::upper_bound(BlockStart.begin(), BlockStart.end(),
                                OrigIndex) -
               BlockStart.begin() - 1;
    if (OrigIndex == BlockStart[B])
      return NewStart[B];
    return NewStart[B] + PreambleWords + (OrigIndex - BlockStart[B]);
  };
  auto NewAddrOf = [&](Addr A) -> Addr {
    return TB + 4 * NewIndexOf((A - TB) / 4);
  };

  // Counters go after the highest existing segment.
  Addr High = 0;
  for (const SxfSegment &Seg : Input.Segments)
    High = std::max(High, Seg.VAddr + Seg.MemSize);
  Addr CounterBase = (High + 15) & ~15u;

  // --- Pass 3: emit -------------------------------------------------------------
  std::vector<MachWord> Out;
  Out.reserve(Cursor);
  for (size_t B = 0; B < BlockStart.size(); ++B) {
    Addr Counter = CounterBase + static_cast<Addr>(B * 4);
    Result.Counters.push_back({TB + BlockStart[B] * 4, Counter});
    emitPreamble(Out, Counter);
    unsigned End = B + 1 < BlockStart.size()
                       ? BlockStart[B + 1]
                       : NumWords;
    for (unsigned I = BlockStart[B]; I < End; ++I) {
      MachWord W = WordAt(I);
      Addr OldPC = TB + I * 4;
      Addr NewPC = TB + 4 * static_cast<Addr>(Out.size());
      if (isBranch(W)) {
        Addr Target = OldPC + static_cast<Addr>(disp22(W) * 4);
        int32_t NewDisp =
            (static_cast<int32_t>(NewAddrOf(Target)) -
             static_cast<int32_t>(NewPC)) / 4;
        W = (W & 0xFFC00000u) | (static_cast<uint32_t>(NewDisp) & 0x3FFFFFu);
      } else if (isCall(W)) {
        Addr Target = OldPC + static_cast<Addr>(disp30(W) * 4);
        int32_t NewDisp =
            (static_cast<int32_t>(NewAddrOf(Target)) -
             static_cast<int32_t>(NewPC)) / 4;
        W = (W & 0xC0000000u) | (static_cast<uint32_t>(NewDisp) & 0x3FFFFFFFu);
      }
      Out.push_back(W);
    }
  }

  // --- Output image ----------------------------------------------------------------
  SxfFile Edited;
  Edited.Arch = Input.Arch;
  SxfSegment NewText;
  NewText.Kind = SegKind::Text;
  NewText.VAddr = TB;
  for (MachWord W : Out) {
    NewText.Bytes.push_back(static_cast<uint8_t>(W));
    NewText.Bytes.push_back(static_cast<uint8_t>(W >> 8));
    NewText.Bytes.push_back(static_cast<uint8_t>(W >> 16));
    NewText.Bytes.push_back(static_cast<uint8_t>(W >> 24));
  }
  NewText.MemSize = static_cast<uint32_t>(NewText.Bytes.size());
  Edited.Segments.push_back(std::move(NewText));
  for (const SxfSegment &Seg : Input.Segments)
    if (Seg.Kind != SegKind::Text)
      Edited.Segments.push_back(Seg);
  // Counter area (bss-like, zero).
  SxfSegment Ctrs;
  Ctrs.Kind = SegKind::Bss;
  Ctrs.VAddr = CounterBase;
  Ctrs.MemSize = static_cast<uint32_t>(Result.Counters.size() * 4);
  Edited.Segments.push_back(std::move(Ctrs));

  // Sweep data for code pointers.
  for (SxfSegment &Seg : Edited.Segments) {
    if (Seg.Kind != SegKind::Data)
      continue;
    for (size_t Off = 0; Off + 4 <= Seg.Bytes.size(); Off += 4) {
      Addr A = Seg.VAddr + static_cast<Addr>(Off);
      uint32_t W = *Edited.readWord(A);
      if (W >= TB && W < TE && (W & 3) == 0)
        Edited.writeWord(A, NewAddrOf(W));
    }
  }
  Edited.Entry = NewAddrOf(Input.Entry);
  Edited.Symbols = Input.Symbols;
  for (SxfSymbol &Sym : Edited.Symbols)
    if (Sym.Value >= TB && Sym.Value < TE && (Sym.Value & 3) == 0)
      Sym.Value = NewAddrOf(Sym.Value);

  Result.Edited = std::move(Edited);
  return Result;
}

std::vector<uint64_t> eel::adhocReadCounts(const AdhocResult &Result,
                                           const VmMemory &Memory) {
  std::vector<uint64_t> Counts;
  Counts.reserve(Result.Counters.size());
  for (const auto &[Block, Counter] : Result.Counters)
    Counts.push_back(Memory.readWord(Counter));
  return Counts;
}
