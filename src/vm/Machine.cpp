//===- vm/Machine.cpp - Simulator for SRISC/MRISC executables -------------===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//

#include "vm/Machine.h"

#include "isa/AriscEncoding.h"
#include "isa/MriscEncoding.h"
#include "isa/SriscEncoding.h"
#include "support/Error.h"

#include <cstring>

using namespace eel;

// --- VmMemory ---------------------------------------------------------------

const uint8_t *VmMemory::pageFor(Addr A) const {
  uint32_t Page = A >> PageBits;
  auto It = Pages.find(Page);
  if (It != Pages.end())
    return It->second.get();
  // Reads of untouched memory observe zeros without allocating.
  static const uint8_t Zeros[PageSize] = {0};
  return Zeros;
}

uint8_t *VmMemory::mutablePageFor(Addr A) {
  uint32_t Page = A >> PageBits;
  std::unique_ptr<uint8_t[]> &Slot = Pages[Page];
  if (!Slot) {
    Slot.reset(new uint8_t[PageSize]);
    std::memset(Slot.get(), 0, PageSize);
  }
  return Slot.get();
}

uint8_t VmMemory::readByte(Addr A) const {
  return pageFor(A)[A & (PageSize - 1)];
}

void VmMemory::writeByte(Addr A, uint8_t B) {
  mutablePageFor(A)[A & (PageSize - 1)] = B;
}

uint32_t VmMemory::readWord(Addr A) const {
  assert((A & 3) == 0 && "misaligned word read");
  const uint8_t *Page = pageFor(A);
  uint32_t Off = A & (PageSize - 1);
  return static_cast<uint32_t>(Page[Off]) |
         (static_cast<uint32_t>(Page[Off + 1]) << 8) |
         (static_cast<uint32_t>(Page[Off + 2]) << 16) |
         (static_cast<uint32_t>(Page[Off + 3]) << 24);
}

void VmMemory::writeWord(Addr A, uint32_t W) {
  assert((A & 3) == 0 && "misaligned word write");
  uint8_t *Page = mutablePageFor(A);
  uint32_t Off = A & (PageSize - 1);
  Page[Off] = static_cast<uint8_t>(W);
  Page[Off + 1] = static_cast<uint8_t>(W >> 8);
  Page[Off + 2] = static_cast<uint8_t>(W >> 16);
  Page[Off + 3] = static_cast<uint8_t>(W >> 24);
}

uint16_t VmMemory::readHalf(Addr A) const {
  assert((A & 1) == 0 && "misaligned half read");
  const uint8_t *Page = pageFor(A);
  uint32_t Off = A & (PageSize - 1);
  return static_cast<uint16_t>(Page[Off] |
                               (static_cast<uint16_t>(Page[Off + 1]) << 8));
}

void VmMemory::writeHalf(Addr A, uint16_t H) {
  assert((A & 1) == 0 && "misaligned half write");
  uint8_t *Page = mutablePageFor(A);
  uint32_t Off = A & (PageSize - 1);
  Page[Off] = static_cast<uint8_t>(H);
  Page[Off + 1] = static_cast<uint8_t>(H >> 8);
}

void VmMemory::writeBytes(Addr A, const uint8_t *Data, size_t N) {
  for (size_t I = 0; I < N; ++I)
    writeByte(A + static_cast<Addr>(I), Data[I]);
}

// --- Machine ----------------------------------------------------------------

Machine::Machine(const SxfFile &File) : Arch(File.Arch) {
  Addr HighWater = 0;
  for (const SxfSegment &Seg : File.Segments) {
    if (!Seg.Bytes.empty())
      Mem.writeBytes(Seg.VAddr, Seg.Bytes.data(), Seg.Bytes.size());
    HighWater = std::max(HighWater, Seg.VAddr + Seg.MemSize);
  }
  Break = (HighWater + 15) & ~15u;
  Cpu.PC = File.Entry;
  Cpu.NPC = File.Entry + 4;
  const TargetConventions &Conv = targetFor(Arch).conventions();
  Cpu.Regs[Conv.StackPointer] = 0x7FF00000u;
  // Returning from the entry routine ends the program. The link register is
  // primed so that the conventional return sequence lands on ExitMagic:
  // SRISC returns to link+8, MRISC to link+0.
  Cpu.Regs[Conv.LinkReg] = ExitMagic - static_cast<Addr>(Conv.ReturnOffset);
}

uint32_t Machine::doSyscall(unsigned Number, uint32_t Args[3], bool &Exited,
                            int &Code) {
  switch (Number) {
  case SysExit:
    Exited = true;
    Code = static_cast<int>(Args[0]);
    return 0;
  case SysWrite: {
    if (Args[0] == 1)
      for (uint32_t I = 0; I < Args[2]; ++I)
        Output.push_back(static_cast<char>(Mem.readByte(Args[1] + I)));
    return Args[2];
  }
  case SysSbrk: {
    uint32_t Old = Break;
    Break += Args[0];
    return Old;
  }
  case SysRead:
    return 0;
  case SysInstRet:
    return static_cast<uint32_t>(Retired);
  default:
    return static_cast<uint32_t>(-1);
  }
}

RunResult Machine::run(uint64_t MaxSteps) {
  switch (Arch) {
  case TargetArch::Srisc:
    return runSrisc(MaxSteps);
  case TargetArch::Mrisc:
    return runMrisc(MaxSteps);
  case TargetArch::Arisc:
    return runArisc(MaxSteps);
  }
  unreachable("unknown target architecture");
}

RunResult eel::runToCompletion(const SxfFile &File, uint64_t MaxSteps) {
  Machine M(File);
  return M.run(MaxSteps);
}

RunResult Machine::runGeneric(const StepFn &Step, uint64_t MaxSteps) {
  RunResult Result;
  const TargetInfo &Target = targetFor(Arch);
  const TargetConventions &Conv = Target.conventions();
  unsigned RetReg = Conv.RetRegs.first();
  // On a delay-slot architecture a taken transfer replaces NPC, so the slot
  // instruction issues first; without delay slots the transfer takes effect
  // immediately and the (PC, NPC) pair degenerates to sequential fetch.
  bool DelaySlots = Target.branchDelaySlots();

  for (uint64_t StepNo = 0; StepNo < MaxSteps; ++StepNo) {
    if (Cpu.PC == ExitMagic) {
      Result.Reason = StopReason::Exited;
      Result.ExitCode = static_cast<int>(Cpu.Regs[RetReg]);
      break;
    }
    if (Cpu.PC & 3) {
      Result.Reason = StopReason::BadAlignment;
      Result.FaultPC = Cpu.PC;
      break;
    }
    MachWord W = Mem.readWord(Cpu.PC);
    if (OnInst)
      OnInst(Cpu.PC, W);
    StepOutcome Out = Step(*this, Cpu.PC, W);
    if (Out.Invalid) {
      Result.Reason = StopReason::BadInstruction;
      Result.FaultPC = Cpu.PC;
      break;
    }
    if (Out.BadAlign) {
      Result.Reason = StopReason::BadAlignment;
      Result.FaultPC = Cpu.PC;
      break;
    }
    ++Retired;
    if (Out.Exited) {
      Result.Reason = StopReason::Exited;
      Result.ExitCode = Out.ExitCode;
      break;
    }
    if (DelaySlots) {
      Addr NewPC = Cpu.NPC;
      Addr NewNPC = Out.Branch ? Out.Target : Cpu.NPC + 4;
      if (Out.Annul) {
        NewPC = NewNPC;
        NewNPC = NewPC + 4;
      }
      Cpu.PC = NewPC;
      Cpu.NPC = NewNPC;
    } else {
      Cpu.PC = Out.Branch ? Out.Target : Cpu.PC + 4;
      Cpu.NPC = Cpu.PC + 4;
    }
    if (StepNo + 1 == MaxSteps) {
      Result.Reason = StopReason::StepLimit;
      Result.FaultPC = Cpu.PC;
    }
  }
  Result.Instructions = Retired;
  Result.Output = Output;
  return Result;
}

// --- SRISC interpreter --------------------------------------------------------

namespace {

/// Outcome of executing one instruction.
struct StepControl {
  bool Branch = false;
  Addr Target = 0;
  bool Annul = false;
  bool Exited = false;
  int ExitCode = 0;
  bool Invalid = false;
};

} // namespace

RunResult Machine::runSrisc(uint64_t MaxSteps) {
  using namespace srisc;
  RunResult Result;
  uint32_t *R = Cpu.Regs;

  for (uint64_t Step = 0; Step < MaxSteps; ++Step) {
    if (Cpu.PC == ExitMagic) {
      Result.Reason = StopReason::Exited;
      Result.ExitCode = static_cast<int>(R[8]);
      break;
    }
    if (Cpu.PC & 3) {
      Result.Reason = StopReason::BadAlignment;
      Result.FaultPC = Cpu.PC;
      break;
    }
    MachWord W = Mem.readWord(Cpu.PC);
    StepControl Ctl;
    uint32_t Op = fieldOp(W);

    if (OnInst)
      OnInst(Cpu.PC, W);

    switch (Op) {
    case OpFormat2: {
      if (fieldOp2(W) == Op2Sethi) {
        unsigned Rd = fieldRd(W);
        if (Rd)
          R[Rd] = fieldImm22(W) << 10;
      } else if (fieldOp2(W) == Op2Bicc) {
        Cond C = static_cast<Cond>(fieldCond(W));
        bool Taken = evalCond(C, R[RegIdCC]);
        Addr Target = Cpu.PC + static_cast<Addr>(fieldDisp22(W) * 4);
        if (Taken && C != CondA && C != CondN) {
          Ctl.Branch = true;
          Ctl.Target = Target;
        } else if (C == CondA) {
          Ctl.Branch = true;
          Ctl.Target = Target;
        }
        if (fieldAnnul(W)) {
          if (C == CondA || C == CondN)
            Ctl.Annul = true; // ba,a and bn,a always squash the slot
          else if (!Taken)
            Ctl.Annul = true; // conditional: squash when untaken
        }
        if (OnTransfer && C != CondN)
          OnTransfer(Cpu.PC, Target, Ctl.Branch);
      } else {
        Ctl.Invalid = true;
      }
      break;
    }
    case OpCall: {
      Addr Target = Cpu.PC + static_cast<Addr>(fieldDisp30(W) * 4);
      R[RegLink] = Cpu.PC;
      Ctl.Branch = true;
      Ctl.Target = Target;
      if (OnTransfer)
        OnTransfer(Cpu.PC, Target, true);
      break;
    }
    case OpArith: {
      uint32_t Op3 = fieldOp3(W);
      unsigned Rd = fieldRd(W);
      uint32_t A = R[fieldRs1(W)];
      uint32_t B = fieldI(W) ? static_cast<uint32_t>(fieldSimm13(W))
                             : R[fieldRs2(W)];
      uint32_t Value = 0;
      bool WriteRd = true, SetCC = false;
      uint32_t NewCC = 0;
      switch (Op3) {
      case Op3Add:
        Value = A + B;
        break;
      case Op3And:
        Value = A & B;
        break;
      case Op3Or:
        Value = A | B;
        break;
      case Op3Xor:
        Value = A ^ B;
        break;
      case Op3Sub:
        Value = A - B;
        break;
      case Op3Sll:
        Value = A << (B & 31);
        break;
      case Op3Srl:
        Value = A >> (B & 31);
        break;
      case Op3Sra:
        Value = static_cast<uint32_t>(static_cast<int32_t>(A) >>
                                      static_cast<int32_t>(B & 31));
        break;
      case Op3Smul:
        // Wrapping semantics; computed unsigned because the low 32 bits of
        // signed and unsigned products agree and signed overflow is UB.
        Value = A * B;
        break;
      case Op3Sdiv: {
        int32_t SA = static_cast<int32_t>(A), SB = static_cast<int32_t>(B);
        if (SB == 0)
          Value = 0;
        else if (SA == INT32_MIN && SB == -1)
          Value = static_cast<uint32_t>(INT32_MIN);
        else
          Value = static_cast<uint32_t>(SA / SB);
        break;
      }
      case Op3Srem: {
        int32_t SA = static_cast<int32_t>(A), SB = static_cast<int32_t>(B);
        if (SB == 0)
          Value = A;
        else if (SA == INT32_MIN && SB == -1)
          Value = 0;
        else
          Value = static_cast<uint32_t>(SA % SB);
        break;
      }
      case Op3AddCC:
        Value = A + B;
        SetCC = true;
        NewCC = ccForAdd(A, B);
        break;
      case Op3AndCC:
        Value = A & B;
        SetCC = true;
        NewCC = ccForLogic(Value);
        break;
      case Op3OrCC:
        Value = A | B;
        SetCC = true;
        NewCC = ccForLogic(Value);
        break;
      case Op3XorCC:
        Value = A ^ B;
        SetCC = true;
        NewCC = ccForLogic(Value);
        break;
      case Op3SubCC:
        Value = A - B;
        SetCC = true;
        NewCC = ccForSub(A, B);
        break;
      case Op3RdCC:
        Value = R[RegIdCC];
        break;
      case Op3WrCC:
        R[RegIdCC] = A & 0xF;
        WriteRd = false;
        break;
      case Op3Jmpl: {
        Addr Target = A + B;
        if (Rd)
          R[Rd] = Cpu.PC;
        Ctl.Branch = true;
        Ctl.Target = Target;
        WriteRd = false;
        if (OnTransfer)
          OnTransfer(Cpu.PC, Target, true);
        break;
      }
      case Op3Sys: {
        if (!fieldI(W)) {
          Ctl.Invalid = true;
          WriteRd = false;
          break;
        }
        uint32_t Args[3] = {R[8], R[9], R[10]};
        bool Exited = false;
        int Code = 0;
        uint32_t Ret =
            doSyscall(extractBits(W, 0, 12), Args, Exited, Code);
        if (Exited) {
          Ctl.Exited = true;
          Ctl.ExitCode = Code;
        } else {
          R[8] = Ret;
        }
        WriteRd = false;
        break;
      }
      default:
        Ctl.Invalid = true;
        WriteRd = false;
        break;
      }
      if (WriteRd && Op3 != Op3Jmpl && Rd)
        R[Rd] = Value;
      if (SetCC)
        R[RegIdCC] = NewCC;
      break;
    }
    case OpMem: {
      uint32_t Op3 = fieldOp3(W);
      unsigned Rd = fieldRd(W);
      Addr EffAddr = R[fieldRs1(W)] +
                     (fieldI(W) ? static_cast<uint32_t>(fieldSimm13(W))
                                : R[fieldRs2(W)]);
      bool IsStore = Op3 >= Op3St;
      unsigned Width = (Op3 == Op3Ld || Op3 == Op3St)     ? 4
                       : (Op3 == Op3Lduh || Op3 == Op3Ldsh ||
                          Op3 == Op3Sth)
                           ? 2
                           : 1;
      if (OnMemory)
        OnMemory(Cpu.PC, EffAddr, Width, IsStore);
      if (EffAddr & (Width - 1)) {
        Result.Reason = StopReason::BadAlignment;
        Result.FaultPC = Cpu.PC;
        Result.Instructions = Retired;
        Result.Output = Output;
        return Result;
      }
      switch (Op3) {
      case Op3Ld:
        if (Rd)
          R[Rd] = Mem.readWord(EffAddr);
        break;
      case Op3Ldub:
        if (Rd)
          R[Rd] = Mem.readByte(EffAddr);
        break;
      case Op3Lduh:
        if (Rd)
          R[Rd] = Mem.readHalf(EffAddr);
        break;
      case Op3Ldsb:
        if (Rd)
          R[Rd] = static_cast<uint32_t>(
              static_cast<int32_t>(static_cast<int8_t>(Mem.readByte(EffAddr))));
        break;
      case Op3Ldsh:
        if (Rd)
          R[Rd] = static_cast<uint32_t>(static_cast<int32_t>(
              static_cast<int16_t>(Mem.readHalf(EffAddr))));
        break;
      case Op3St:
        Mem.writeWord(EffAddr, R[Rd]);
        break;
      case Op3Stb:
        Mem.writeByte(EffAddr, static_cast<uint8_t>(R[Rd]));
        break;
      case Op3Sth:
        Mem.writeHalf(EffAddr, static_cast<uint16_t>(R[Rd]));
        break;
      default:
        Ctl.Invalid = true;
        break;
      }
      break;
    }
    }

    if (Ctl.Invalid) {
      Result.Reason = StopReason::BadInstruction;
      Result.FaultPC = Cpu.PC;
      break;
    }
    ++Retired;
    if (Ctl.Exited) {
      Result.Reason = StopReason::Exited;
      Result.ExitCode = Ctl.ExitCode;
      break;
    }

    Addr NewPC = Cpu.NPC;
    Addr NewNPC = Ctl.Branch ? Ctl.Target : Cpu.NPC + 4;
    if (Ctl.Annul) {
      NewPC = NewNPC;
      NewNPC = NewPC + 4;
    }
    Cpu.PC = NewPC;
    Cpu.NPC = NewNPC;

    if (Step + 1 == MaxSteps) {
      Result.Reason = StopReason::StepLimit;
      Result.FaultPC = Cpu.PC;
    }
  }

  Result.Instructions = Retired;
  Result.Output = Output;
  return Result;
}

// --- MRISC interpreter --------------------------------------------------------

RunResult Machine::runMrisc(uint64_t MaxSteps) {
  using namespace mrisc;
  RunResult Result;
  uint32_t *R = Cpu.Regs;

  for (uint64_t Step = 0; Step < MaxSteps; ++Step) {
    if (Cpu.PC == ExitMagic) {
      Result.Reason = StopReason::Exited;
      Result.ExitCode = static_cast<int>(R[RegV0]);
      break;
    }
    if (Cpu.PC & 3) {
      Result.Reason = StopReason::BadAlignment;
      Result.FaultPC = Cpu.PC;
      break;
    }
    MachWord W = Mem.readWord(Cpu.PC);
    StepControl Ctl;
    uint32_t Op = fieldOp(W);
    unsigned Rs = fieldRs(W), Rt = fieldRt(W), Rd = fieldRd(W);

    if (OnInst)
      OnInst(Cpu.PC, W);

    auto SetReg = [&R](unsigned Reg, uint32_t Value) {
      if (Reg)
        R[Reg] = Value;
    };

    switch (Op) {
    case OpRType: {
      uint32_t Funct = fieldFunct(W);
      switch (Funct) {
      case FnSll:
        if (fieldRs(W) != 0) {
          Ctl.Invalid = true;
          break;
        }
        SetReg(Rd, R[Rt] << fieldShamt(W));
        break;
      case FnSrl:
        if (fieldRs(W) != 0) {
          Ctl.Invalid = true;
          break;
        }
        SetReg(Rd, R[Rt] >> fieldShamt(W));
        break;
      case FnSra:
        if (fieldRs(W) != 0) {
          Ctl.Invalid = true;
          break;
        }
        SetReg(Rd, static_cast<uint32_t>(static_cast<int32_t>(R[Rt]) >>
                                         fieldShamt(W)));
        break;
      case FnSllv:
        SetReg(Rd, R[Rt] << (R[Rs] & 31));
        break;
      case FnSrlv:
        SetReg(Rd, R[Rt] >> (R[Rs] & 31));
        break;
      case FnSrav:
        SetReg(Rd, static_cast<uint32_t>(static_cast<int32_t>(R[Rt]) >>
                                         (R[Rs] & 31)));
        break;
      case FnJr: {
        if (fieldRt(W) || fieldRd(W) || fieldShamt(W)) {
          Ctl.Invalid = true;
          break;
        }
        Ctl.Branch = true;
        Ctl.Target = R[Rs];
        if (OnTransfer)
          OnTransfer(Cpu.PC, Ctl.Target, true);
        break;
      }
      case FnJalr: {
        if (fieldRt(W) || fieldShamt(W)) {
          Ctl.Invalid = true;
          break;
        }
        Ctl.Branch = true;
        Ctl.Target = R[Rs];
        SetReg(Rd, Cpu.PC + 8);
        if (OnTransfer)
          OnTransfer(Cpu.PC, Ctl.Target, true);
        break;
      }
      case FnSyscall: {
        uint32_t Args[3] = {R[4], R[5], R[6]};
        bool Exited = false;
        int Code = 0;
        uint32_t Ret = doSyscall(R[RegV0], Args, Exited, Code);
        if (Exited) {
          Ctl.Exited = true;
          Ctl.ExitCode = Code;
        } else {
          R[RegV0] = Ret;
        }
        break;
      }
      case FnMul:
        // Wrapping semantics; computed unsigned because the low 32 bits of
        // signed and unsigned products agree and signed overflow is UB.
        SetReg(Rd, R[Rs] * R[Rt]);
        break;
      case FnDiv: {
        int32_t SA = static_cast<int32_t>(R[Rs]);
        int32_t SB = static_cast<int32_t>(R[Rt]);
        uint32_t Value;
        if (SB == 0)
          Value = 0;
        else if (SA == INT32_MIN && SB == -1)
          Value = static_cast<uint32_t>(INT32_MIN);
        else
          Value = static_cast<uint32_t>(SA / SB);
        SetReg(Rd, Value);
        break;
      }
      case FnRem: {
        int32_t SA = static_cast<int32_t>(R[Rs]);
        int32_t SB = static_cast<int32_t>(R[Rt]);
        uint32_t Value;
        if (SB == 0)
          Value = R[Rs];
        else if (SA == INT32_MIN && SB == -1)
          Value = 0;
        else
          Value = static_cast<uint32_t>(SA % SB);
        SetReg(Rd, Value);
        break;
      }
      case FnAdd:
        SetReg(Rd, R[Rs] + R[Rt]);
        break;
      case FnSub:
        SetReg(Rd, R[Rs] - R[Rt]);
        break;
      case FnAnd:
        SetReg(Rd, R[Rs] & R[Rt]);
        break;
      case FnOr:
        SetReg(Rd, R[Rs] | R[Rt]);
        break;
      case FnXor:
        SetReg(Rd, R[Rs] ^ R[Rt]);
        break;
      case FnSlt:
        SetReg(Rd, static_cast<int32_t>(R[Rs]) < static_cast<int32_t>(R[Rt])
                       ? 1
                       : 0);
        break;
      default:
        Ctl.Invalid = true;
        break;
      }
      break;
    }
    case OpJ:
    case OpJal: {
      Addr Target = (Cpu.PC & 0xF0000000u) | (fieldIndex26(W) << 2);
      if (Op == OpJal)
        R[RegRA] = Cpu.PC + 8;
      Ctl.Branch = true;
      Ctl.Target = Target;
      if (OnTransfer)
        OnTransfer(Cpu.PC, Target, true);
      break;
    }
    case OpBeq:
    case OpBne:
    case OpBlez:
    case OpBgtz: {
      if ((Op == OpBlez || Op == OpBgtz) && Rt != 0) {
        Ctl.Invalid = true;
        break;
      }
      bool Taken = false;
      switch (Op) {
      case OpBeq:
        Taken = R[Rs] == R[Rt];
        break;
      case OpBne:
        Taken = R[Rs] != R[Rt];
        break;
      case OpBlez:
        Taken = static_cast<int32_t>(R[Rs]) <= 0;
        break;
      case OpBgtz:
        Taken = static_cast<int32_t>(R[Rs]) > 0;
        break;
      }
      Addr Target = Cpu.PC + 4 + static_cast<Addr>(fieldSimm16(W) * 4);
      if (Taken) {
        Ctl.Branch = true;
        Ctl.Target = Target;
      }
      if (OnTransfer)
        OnTransfer(Cpu.PC, Target, Taken);
      break;
    }
    case OpAddi:
      SetReg(Rt, R[Rs] + static_cast<uint32_t>(fieldSimm16(W)));
      break;
    case OpSlti:
      SetReg(Rt,
             static_cast<int32_t>(R[Rs]) < fieldSimm16(W) ? 1 : 0);
      break;
    case OpAndi:
      SetReg(Rt, R[Rs] & fieldUimm16(W));
      break;
    case OpOri:
      SetReg(Rt, R[Rs] | fieldUimm16(W));
      break;
    case OpXori:
      SetReg(Rt, R[Rs] ^ fieldUimm16(W));
      break;
    case OpLui:
      if (fieldRs(W) != 0) {
        Ctl.Invalid = true;
        break;
      }
      SetReg(Rt, fieldUimm16(W) << 16);
      break;
    case OpLb:
    case OpLh:
    case OpLw:
    case OpLbu:
    case OpLhu:
    case OpSb:
    case OpSh:
    case OpSw: {
      Addr EffAddr = R[Rs] + static_cast<uint32_t>(fieldSimm16(W));
      bool IsStore = Op == OpSb || Op == OpSh || Op == OpSw;
      unsigned Width = (Op == OpLw || Op == OpSw)   ? 4
                       : (Op == OpLh || Op == OpLhu || Op == OpSh) ? 2
                                                                   : 1;
      if (OnMemory)
        OnMemory(Cpu.PC, EffAddr, Width, IsStore);
      if (EffAddr & (Width - 1)) {
        Result.Reason = StopReason::BadAlignment;
        Result.FaultPC = Cpu.PC;
        Result.Instructions = Retired;
        Result.Output = Output;
        return Result;
      }
      switch (Op) {
      case OpLb:
        SetReg(Rt, static_cast<uint32_t>(static_cast<int32_t>(
                       static_cast<int8_t>(Mem.readByte(EffAddr)))));
        break;
      case OpLh:
        SetReg(Rt, static_cast<uint32_t>(static_cast<int32_t>(
                       static_cast<int16_t>(Mem.readHalf(EffAddr)))));
        break;
      case OpLw:
        SetReg(Rt, Mem.readWord(EffAddr));
        break;
      case OpLbu:
        SetReg(Rt, Mem.readByte(EffAddr));
        break;
      case OpLhu:
        SetReg(Rt, Mem.readHalf(EffAddr));
        break;
      case OpSb:
        Mem.writeByte(EffAddr, static_cast<uint8_t>(R[Rt]));
        break;
      case OpSh:
        Mem.writeHalf(EffAddr, static_cast<uint16_t>(R[Rt]));
        break;
      case OpSw:
        Mem.writeWord(EffAddr, R[Rt]);
        break;
      }
      break;
    }
    default:
      Ctl.Invalid = true;
      break;
    }

    if (Ctl.Invalid) {
      Result.Reason = StopReason::BadInstruction;
      Result.FaultPC = Cpu.PC;
      break;
    }
    ++Retired;
    if (Ctl.Exited) {
      Result.Reason = StopReason::Exited;
      Result.ExitCode = Ctl.ExitCode;
      break;
    }

    Cpu.PC = Cpu.NPC;
    Cpu.NPC = Ctl.Branch ? Ctl.Target : Cpu.NPC + 4;
    // MRISC has no annulment.

    if (Step + 1 == MaxSteps) {
      Result.Reason = StopReason::StepLimit;
      Result.FaultPC = Cpu.PC;
    }
  }

  Result.Instructions = Retired;
  Result.Output = Output;
  return Result;
}

// --- ARISC interpreter --------------------------------------------------------

RunResult Machine::runArisc(uint64_t MaxSteps) {
  using namespace arisc;
  RunResult Result;
  uint32_t *R = Cpu.Regs;

  for (uint64_t Step = 0; Step < MaxSteps; ++Step) {
    if (Cpu.PC == ExitMagic) {
      Result.Reason = StopReason::Exited;
      Result.ExitCode = static_cast<int>(R[RegV0]);
      break;
    }
    if (Cpu.PC & 3) {
      Result.Reason = StopReason::BadAlignment;
      Result.FaultPC = Cpu.PC;
      break;
    }
    MachWord W = Mem.readWord(Cpu.PC);
    StepControl Ctl;
    uint32_t Op = fieldOp(W);
    unsigned Ra = fieldRa(W), Rb = fieldRb(W), Rc = fieldRc(W);

    if (OnInst)
      OnInst(Cpu.PC, W);

    auto SetReg = [&R](unsigned Reg, uint32_t Value) {
      if (Reg)
        R[Reg] = Value;
    };

    switch (Op) {
    case OpOperate: {
      uint32_t A = R[Ra], B = R[Rb];
      switch (fieldFunc(W)) {
      case FnAdd:
        SetReg(Rc, A + B);
        break;
      case FnSub:
        SetReg(Rc, A - B);
        break;
      case FnAnd:
        SetReg(Rc, A & B);
        break;
      case FnOr:
        SetReg(Rc, A | B);
        break;
      case FnXor:
        SetReg(Rc, A ^ B);
        break;
      case FnSll:
        SetReg(Rc, A << (B & 31));
        break;
      case FnSrl:
        SetReg(Rc, A >> (B & 31));
        break;
      case FnSra:
        SetReg(Rc,
               static_cast<uint32_t>(static_cast<int32_t>(A) >> (B & 31)));
        break;
      case FnMul:
        // Wrapping semantics; computed unsigned because the low 32 bits of
        // signed and unsigned products agree and signed overflow is UB.
        SetReg(Rc, A * B);
        break;
      case FnDiv: {
        int32_t SA = static_cast<int32_t>(A), SB = static_cast<int32_t>(B);
        uint32_t Value;
        if (SB == 0)
          Value = 0;
        else if (SA == INT32_MIN && SB == -1)
          Value = static_cast<uint32_t>(INT32_MIN);
        else
          Value = static_cast<uint32_t>(SA / SB);
        SetReg(Rc, Value);
        break;
      }
      case FnRem: {
        int32_t SA = static_cast<int32_t>(A), SB = static_cast<int32_t>(B);
        uint32_t Value;
        if (SB == 0)
          Value = A;
        else if (SA == INT32_MIN && SB == -1)
          Value = 0;
        else
          Value = static_cast<uint32_t>(SA % SB);
        SetReg(Rc, Value);
        break;
      }
      case FnCmplt:
        SetReg(Rc, static_cast<int32_t>(A) < static_cast<int32_t>(B) ? 1 : 0);
        break;
      default:
        Ctl.Invalid = true;
        break;
      }
      break;
    }
    case OpAddi:
      SetReg(Rb, R[Ra] + static_cast<uint32_t>(fieldSimm16(W)));
      break;
    case OpCmplti:
      SetReg(Rb, static_cast<int32_t>(R[Ra]) < fieldSimm16(W) ? 1 : 0);
      break;
    case OpAndi:
      SetReg(Rb, R[Ra] & fieldUimm16(W));
      break;
    case OpOri:
      SetReg(Rb, R[Ra] | fieldUimm16(W));
      break;
    case OpXori:
      SetReg(Rb, R[Ra] ^ fieldUimm16(W));
      break;
    case OpSlli:
      SetReg(Rb, R[Ra] << (fieldUimm16(W) & 31));
      break;
    case OpSrli:
      SetReg(Rb, R[Ra] >> (fieldUimm16(W) & 31));
      break;
    case OpSrai:
      SetReg(Rb, static_cast<uint32_t>(static_cast<int32_t>(R[Ra]) >>
                                       (fieldUimm16(W) & 31)));
      break;
    case OpLdih:
      if (Ra != 0) {
        Ctl.Invalid = true;
        break;
      }
      SetReg(Rb, fieldUimm16(W) << 16);
      break;
    case OpLdw:
    case OpLdb:
    case OpLdbu:
    case OpLdh:
    case OpLdhu:
    case OpStw:
    case OpStb:
    case OpSth: {
      Addr EffAddr = R[Rb] + static_cast<uint32_t>(fieldSimm16(W));
      bool IsStore = Op == OpStw || Op == OpStb || Op == OpSth;
      unsigned Width = (Op == OpLdw || Op == OpStw)                   ? 4
                       : (Op == OpLdh || Op == OpLdhu || Op == OpSth) ? 2
                                                                      : 1;
      if (OnMemory)
        OnMemory(Cpu.PC, EffAddr, Width, IsStore);
      if (EffAddr & (Width - 1)) {
        Result.Reason = StopReason::BadAlignment;
        Result.FaultPC = Cpu.PC;
        Result.Instructions = Retired;
        Result.Output = Output;
        return Result;
      }
      switch (Op) {
      case OpLdw:
        SetReg(Ra, Mem.readWord(EffAddr));
        break;
      case OpLdb:
        SetReg(Ra, static_cast<uint32_t>(static_cast<int32_t>(
                       static_cast<int8_t>(Mem.readByte(EffAddr)))));
        break;
      case OpLdbu:
        SetReg(Ra, Mem.readByte(EffAddr));
        break;
      case OpLdh:
        SetReg(Ra, static_cast<uint32_t>(static_cast<int32_t>(
                       static_cast<int16_t>(Mem.readHalf(EffAddr)))));
        break;
      case OpLdhu:
        SetReg(Ra, Mem.readHalf(EffAddr));
        break;
      case OpStw:
        Mem.writeWord(EffAddr, R[Ra]);
        break;
      case OpStb:
        Mem.writeByte(EffAddr, static_cast<uint8_t>(R[Ra]));
        break;
      case OpSth:
        Mem.writeHalf(EffAddr, static_cast<uint16_t>(R[Ra]));
        break;
      }
      break;
    }
    case OpBeq:
    case OpBne:
    case OpBlt:
    case OpBle: {
      bool Taken = false;
      switch (Op) {
      case OpBeq:
        Taken = R[Ra] == R[Rb];
        break;
      case OpBne:
        Taken = R[Ra] != R[Rb];
        break;
      case OpBlt:
        Taken = static_cast<int32_t>(R[Ra]) < static_cast<int32_t>(R[Rb]);
        break;
      case OpBle:
        Taken = static_cast<int32_t>(R[Ra]) <= static_cast<int32_t>(R[Rb]);
        break;
      }
      Addr Target = Cpu.PC + 4 + static_cast<Addr>(fieldSimm16(W) * 4);
      if (Taken) {
        Ctl.Branch = true;
        Ctl.Target = Target;
      }
      if (OnTransfer)
        OnTransfer(Cpu.PC, Target, Taken);
      break;
    }
    case OpBr:
    case OpBsr: {
      Addr Target = Cpu.PC + 4 + static_cast<Addr>(fieldSdisp26(W) * 4);
      if (Op == OpBsr)
        R[RegRA] = Cpu.PC + 4;
      Ctl.Branch = true;
      Ctl.Target = Target;
      if (OnTransfer)
        OnTransfer(Cpu.PC, Target, true);
      break;
    }
    case OpJmp: {
      if (fieldUimm16(W) != 0) {
        Ctl.Invalid = true;
        break;
      }
      Ctl.Branch = true;
      Ctl.Target = R[Rb];
      SetReg(Ra, Cpu.PC + 4);
      if (OnTransfer)
        OnTransfer(Cpu.PC, Ctl.Target, true);
      break;
    }
    case OpSys: {
      if (Ra != 0 || Rb != 0) {
        Ctl.Invalid = true;
        break;
      }
      uint32_t Args[3] = {R[16], R[17], R[18]};
      bool Exited = false;
      int Code = 0;
      uint32_t Ret = doSyscall(fieldUimm16(W), Args, Exited, Code);
      if (Exited) {
        Ctl.Exited = true;
        Ctl.ExitCode = Code;
      } else {
        R[RegV0] = Ret;
      }
      break;
    }
    default:
      Ctl.Invalid = true;
      break;
    }

    if (Ctl.Invalid) {
      Result.Reason = StopReason::BadInstruction;
      Result.FaultPC = Cpu.PC;
      break;
    }
    ++Retired;
    if (Ctl.Exited) {
      Result.Reason = StopReason::Exited;
      Result.ExitCode = Ctl.ExitCode;
      break;
    }

    // No delay slots: a taken transfer redirects the very next fetch.
    Cpu.PC = Ctl.Branch ? Ctl.Target : Cpu.PC + 4;
    Cpu.NPC = Cpu.PC + 4;

    if (Step + 1 == MaxSteps) {
      Result.Reason = StopReason::StepLimit;
      Result.FaultPC = Cpu.PC;
    }
  }

  Result.Instructions = Retired;
  Result.Output = Output;
  return Result;
}
