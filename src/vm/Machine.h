//===- vm/Machine.h - Simulator for SRISC/MRISC executables ----*- C++ -*-===//
//
// Part of the EEL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A simulator for SXF executables, standing in for the SPARCstation the
/// paper ran on. Its roles:
///
///  * ground truth — tests run the original and the edited executable and
///    require identical observable behaviour (output, exit code) and correct
///    instrumentation results;
///  * measurement — instruction counts give the slowdown ratios for the
///    Active Memory and profiling-overhead experiments;
///  * hooks — per-instruction, control-transfer, and memory hooks produce
///    the reference profiles and traces the tools are validated against.
///
/// The pipeline model is the SPARC/MIPS (PC, NPC) pair: a taken transfer
/// replaces NPC after the delay-slot instruction issues; an annulled slot is
/// squashed by skipping it. Delayed transfers inside delay slots therefore
/// have a well-defined (if exotic) meaning, just as on real hardware.
///
//===----------------------------------------------------------------------===//

#ifndef EEL_VM_MACHINE_H
#define EEL_VM_MACHINE_H

#include "sxf/Sxf.h"

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace eel {

/// System-call numbers shared by both targets (numbers via the SRISC `sys`
/// immediate or MRISC $v0).
enum : unsigned {
  SysExit = 0,  ///< exit(status)
  SysWrite = 1, ///< write(fd, buf, len) -> len
  SysSbrk = 2,  ///< sbrk(incr) -> old break
  SysRead = 3,  ///< read(fd, buf, len) -> 0 (no stdin in this world)
  SysInstRet = 4, ///< retired-instruction count (a cycle counter)
};

/// Sparse paged memory over the 32-bit simulated address space.
class VmMemory {
public:
  static constexpr uint32_t PageBits = 12;
  static constexpr uint32_t PageSize = 1u << PageBits;

  uint8_t readByte(Addr A) const;
  void writeByte(Addr A, uint8_t B);

  uint32_t readWord(Addr A) const;    ///< Little-endian, must be 4-aligned.
  void writeWord(Addr A, uint32_t W); ///< Little-endian, must be 4-aligned.
  uint16_t readHalf(Addr A) const;
  void writeHalf(Addr A, uint16_t H);

  void writeBytes(Addr A, const uint8_t *Data, size_t N);

private:
  const uint8_t *pageFor(Addr A) const;
  uint8_t *mutablePageFor(Addr A);

  mutable std::unordered_map<uint32_t, std::unique_ptr<uint8_t[]>> Pages;
};

/// Architectural state. Register 32 is the condition-code register on
/// targets that have one.
struct CpuState {
  uint32_t Regs[33] = {0};
  Addr PC = 0;
  Addr NPC = 0;
};

/// Why execution stopped.
enum class StopReason : uint8_t {
  Exited,          ///< SysExit or return from the entry routine.
  StepLimit,       ///< Ran out of the step budget (probably looping).
  BadInstruction,  ///< Fetched an invalid encoding.
  BadAlignment,    ///< Misaligned PC or memory access.
};

struct RunResult {
  StopReason Reason = StopReason::Exited;
  int ExitCode = 0;
  uint64_t Instructions = 0; ///< Instructions retired (annulled slots and
                             ///  squashed delay slots do not count).
  std::string Output;        ///< Bytes written to fd 1.
  Addr FaultPC = 0;          ///< PC at a BadInstruction/BadAlignment stop.
};

/// Result of executing one instruction, for the generic run loop.
struct StepOutcome {
  bool Branch = false;
  Addr Target = 0;
  bool Annul = false;
  bool Exited = false;
  int ExitCode = 0;
  bool Invalid = false;
  bool BadAlign = false;
};

/// Loads and runs one executable image.
class Machine {
public:
  explicit Machine(const SxfFile &File);

  /// Runs until exit or \p MaxSteps instructions.
  RunResult run(uint64_t MaxSteps = 200'000'000);

  /// Runs with a caller-provided single-instruction stepper (used by the
  /// spawn-semantics interpreter). The loop handles fetch, the (PC, NPC)
  /// delayed-branch model, annulment, hooks, and termination.
  using StepFn = std::function<StepOutcome(Machine &M, Addr PC, MachWord W)>;
  RunResult runGeneric(const StepFn &Step, uint64_t MaxSteps = 200'000'000);

  VmMemory &memory() { return Mem; }
  const VmMemory &memory() const { return Mem; }
  CpuState &cpu() { return Cpu; }

  /// The magic return address installed in the link register at startup;
  /// jumping here ends the program with the conventional return value.
  static constexpr Addr ExitMagic = 0xFFFFFFF0u;

  /// Observation hooks (null by default; they slow simulation down).
  /// onInst fires before each retired instruction.
  std::function<void(Addr PC, MachWord Word)> OnInst;
  /// onTransfer fires for every control-transfer instruction with its
  /// (possibly not-taken) outcome; Target is meaningful only when Taken.
  std::function<void(Addr PC, Addr Target, bool Taken)> OnTransfer;
  /// onMemory fires for every load/store with the effective address.
  std::function<void(Addr PC, Addr EffAddr, unsigned Width, bool IsStore)>
      OnMemory;

  // Used by the interpreters:
  uint32_t doSyscall(unsigned Number, uint32_t Args[3], bool &Exited,
                     int &Code);
  uint64_t retired() const { return Retired; }

private:
  RunResult runSrisc(uint64_t MaxSteps);
  RunResult runMrisc(uint64_t MaxSteps);
  RunResult runArisc(uint64_t MaxSteps);

  TargetArch Arch;
  VmMemory Mem;
  CpuState Cpu;
  Addr Break = 0; ///< sbrk break pointer.
  uint64_t Retired = 0;
  std::string Output;
};

/// Convenience: run \p File and return the result, asserting clean exit.
RunResult runToCompletion(const SxfFile &File,
                          uint64_t MaxSteps = 200'000'000);

} // namespace eel

#endif // EEL_VM_MACHINE_H
